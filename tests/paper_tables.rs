//! Numeric verification of every table in the paper, through the
//! public façade API.
//!
//! The `repro_tables` binary prints these tables; this test pins the
//! numbers so a regression anywhere in the stack (evidence →
//! relation → algebra → workload) fails loudly. Two layers of pins:
//!
//! * the spot-check tests below assert hand-derived values inline;
//! * [`every_expected_value_in_evirel_bench_passes`] drives the same
//!   shared expectation tables (`evirel_bench::TABLE*_CELLS`) the
//!   `repro_tables` binary uses, at `evirel_bench::TOL` = 1e-9;
//! * [`printed_roundings_match_published_tables`] checks that
//!   rounding our computed masses to the paper's 3-decimal print
//!   format reproduces the published tables — switching to exact
//!   `Ratio` arithmetic for the cells where Table 1 itself prints
//!   roundings (0.33 for 1/3, 0.17 for 1/6).

use evirel::prelude::*;
use evirel::workload::restaurant::{rating_domain, speciality_domain};
use evirel::workload::{restaurant_db_a, restaurant_db_b};

fn mass(rel: &ExtendedRelation, key: &str, attr: &str, labels: &[&str]) -> f64 {
    let t = rel.get_by_key(&[Value::str(key)]).expect("tuple exists");
    let pos = rel.schema().position(attr).expect("attr exists");
    let m = t.value(pos).as_evidential().expect("evidential");
    let domain = rel.schema().attr(pos).ty().domain().expect("domain");
    if labels == ["Ω"] {
        return m.mass_of(&domain.frame().omega());
    }
    let values: Vec<Value> = labels.iter().map(|l| Value::str(*l)).collect();
    m.mass_of(&domain.subset_of_values(values.iter()).expect("labels"))
}

fn membership(rel: &ExtendedRelation, key: &str) -> (f64, f64) {
    let t = rel.get_by_key(&[Value::str(key)]).expect("tuple exists");
    (t.membership().sn(), t.membership().sp())
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn table1_source_relations_match_the_paper() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    assert_eq!(ra.len(), 6);
    assert_eq!(rb.len(), 5);
    // Spot-check every uncertain column once per relation.
    assert!(close(mass(&ra, "garden", "speciality", &["si"]), 0.5));
    assert!(close(
        mass(&ra, "garden", "best-dish", &["d35", "d36"]),
        0.5
    ));
    assert!(close(mass(&ra, "wok", "rating", &["avg"]), 0.75));
    assert!(close(mass(&ra, "country", "best-dish", &["Ω"]), 0.17));
    assert!(close(mass(&ra, "ashiana", "speciality", &["Ω"]), 0.1));
    assert_eq!(membership(&ra, "mehl"), (0.5, 0.5));
    assert!(close(mass(&rb, "wok", "speciality", &["ca"]), 0.2));
    assert!(close(mass(&rb, "mehl", "best-dish", &["d31"]), 0.9));
    let (sn, sp) = membership(&rb, "mehl");
    assert!(close(sn, 0.8) && close(sp, 1.0));
}

#[test]
fn table2_selection_sichuan() {
    let out = select(
        &restaurant_db_a().restaurants,
        &Predicate::is("speciality", ["si"]),
        &Threshold::POSITIVE,
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    let (sn, sp) = membership(&out, "garden");
    assert!(close(sn, 0.5) && close(sp, 0.75));
    let (sn, sp) = membership(&out, "wok");
    assert!(close(sn, 1.0) && close(sp, 1.0));
    // Attribute values retained (footnote 4).
    assert!(close(mass(&out, "garden", "speciality", &["hu"]), 0.25));
}

#[test]
fn table3_compound_selection() {
    let out = select(
        &restaurant_db_a().restaurants,
        &Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"])),
        &Threshold::POSITIVE,
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    let (sn, sp) = membership(&out, "mehl");
    assert!(close(sn, 0.32) && close(sp, 0.32));
    let (sn, sp) = membership(&out, "ashiana");
    assert!(close(sn, 0.9) && close(sp, 1.0));
}

#[test]
fn table4_extended_union() {
    let out = union_extended(
        &restaurant_db_a().restaurants,
        &restaurant_db_b().restaurants,
    )
    .unwrap()
    .relation;
    assert_eq!(out.len(), 6);

    // garden speciality [si^0.655, hu^0.276, Ω^0.069] (exact forms).
    assert!(close(
        mass(&out, "garden", "speciality", &["si"]),
        0.475 / 0.725
    ));
    assert!(close(
        mass(&out, "garden", "speciality", &["hu"]),
        0.2 / 0.725
    ));
    assert!(close(
        mass(&out, "garden", "speciality", &["Ω"]),
        0.05 / 0.725
    ));
    // garden best-dish [d31^0.7, d35^0.3].
    assert!(close(mass(&out, "garden", "best-dish", &["d31"]), 0.7));
    assert!(close(mass(&out, "garden", "best-dish", &["d35"]), 0.3));
    // garden rating [ex^0.143, gd^0.857] (paper's rounding of
    // 0.066/0.466 and 0.4/0.466).
    assert!(close(
        mass(&out, "garden", "rating", &["ex"]),
        0.066 / 0.466
    ));
    assert!(close(mass(&out, "garden", "rating", &["gd"]), 0.4 / 0.466));
    // wok [si^1], [gd^1].
    assert!(close(mass(&out, "wok", "speciality", &["si"]), 1.0));
    assert!(close(mass(&out, "wok", "rating", &["gd"]), 1.0));
    // country best-dish [d1^0.25, d2^0.75] (rounded in the paper).
    assert!(close(
        mass(&out, "country", "best-dish", &["d1"]),
        0.134 / 0.534
    ));
    assert!(close(
        mass(&out, "country", "best-dish", &["d2"]),
        0.4 / 0.534
    ));
    // olive rating [gd^0.8, avg^0.2].
    assert!(close(mass(&out, "olive", "rating", &["gd"]), 0.8));
    // mehl [mu^1], [d24^0.069, d31^0.931], [ex^1], (0.83, 0.83).
    assert!(close(mass(&out, "mehl", "speciality", &["mu"]), 1.0));
    assert!(close(
        mass(&out, "mehl", "best-dish", &["d24"]),
        0.04 / 0.58
    ));
    assert!(close(
        mass(&out, "mehl", "best-dish", &["d31"]),
        0.54 / 0.58
    ));
    let (sn, sp) = membership(&out, "mehl");
    assert!(close(sn, 5.0 / 6.0) && close(sp, 5.0 / 6.0));
    // ashiana passes through unchanged.
    assert!(close(mass(&out, "ashiana", "speciality", &["mu"]), 0.9));
    let (sn, sp) = membership(&out, "ashiana");
    assert!(close(sn, 1.0) && close(sp, 1.0));
}

#[test]
fn table4_union_is_commutative_on_paper_data() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let ab = union_extended(&ra, &rb).unwrap().relation;
    let ba = union_extended(&rb, &ra).unwrap().relation;
    assert!(ab.approx_eq(&ba));
}

#[test]
fn table5_projection() {
    let out = project(
        &restaurant_db_a().restaurants,
        &["rname", "phone", "speciality", "rating"],
    )
    .unwrap();
    assert_eq!(out.len(), 6);
    assert_eq!(out.schema().arity(), 4);
    // Memberships carry over unchanged.
    assert_eq!(membership(&out, "mehl"), (0.5, 0.5));
    let (sn, sp) = membership(&out, "garden");
    assert!(close(sn, 1.0) && close(sp, 1.0));
    // Values carry over unchanged.
    assert!(close(mass(&out, "ashiana", "speciality", &["mu"]), 0.9));
}

#[test]
fn section_21_22_worked_example_exact() {
    use evirel::evidence::{combine, Frame, MassFunction, Ratio};
    use std::sync::Arc;
    let frame = Arc::new(Frame::new(
        "speciality",
        [
            "american",
            "hunan",
            "sichuan",
            "cantonese",
            "mughalai",
            "italian",
        ],
    ));
    let r = |n, d| Ratio::new(n, d).unwrap();
    let m1 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese"], r(1, 2))
        .unwrap()
        .add(["hunan", "sichuan"], r(1, 3))
        .unwrap()
        .add_omega(r(1, 6))
        .build()
        .unwrap();
    let m2 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese", "hunan"], r(1, 2))
        .unwrap()
        .add(["hunan"], r(1, 4))
        .unwrap()
        .add_omega(r(1, 4))
        .build()
        .unwrap();
    let c = combine::dempster(&m1, &m2).unwrap();
    assert_eq!(c.conflict, r(1, 8));
    let f = |labels: &[&str]| frame.subset(labels.iter().copied()).unwrap();
    assert_eq!(c.mass.mass_of(&f(&["cantonese"])), r(3, 7));
    assert_eq!(c.mass.mass_of(&f(&["hunan"])), r(1, 3));
    assert_eq!(c.mass.mass_of(&f(&["cantonese", "hunan"])), r(2, 21));
    assert_eq!(c.mass.mass_of(&f(&["hunan", "sichuan"])), r(2, 21));
    assert_eq!(c.mass.mass_of(&frame.omega()), r(1, 21));
}

/// Every expectation `evirel-bench` records for Tables 2–5 holds
/// through the façade, within `evirel_bench::TOL` (1e-9).
#[test]
fn every_expected_value_in_evirel_bench_passes() {
    use evirel_bench as bench;
    let tables: [(u32, evirel::relation::ExtendedRelation, _, _); 4] = [
        (
            2,
            bench::compute_table2(),
            bench::TABLE2_CELLS,
            bench::TABLE2_MEMBERSHIP,
        ),
        (
            3,
            bench::compute_table3(),
            bench::TABLE3_CELLS,
            bench::TABLE3_MEMBERSHIP,
        ),
        (
            4,
            bench::compute_table4(),
            bench::TABLE4_CELLS,
            bench::TABLE4_MEMBERSHIP,
        ),
        (
            5,
            bench::compute_table5(),
            bench::TABLE5_CELLS,
            bench::TABLE5_MEMBERSHIP,
        ),
    ];
    for (n, computed, cells, memberships) in tables {
        for check in bench::check_table(&computed, cells, memberships) {
            assert!(
                check.passes(),
                "Table {n} {}: expected {:.12}, measured {:.12} (TOL {})",
                check.label,
                check.expected,
                check.measured,
                bench::TOL,
            );
        }
    }
}

/// Round to the paper's 3-decimal print format.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Rounding our computed masses to 3 decimals reproduces the tables
/// as published.
///
/// Two regimes:
///
/// * cells whose Table 1 inputs are exact decimals (0.5, 0.25, …) go
///   through the f64 pipeline and must round to the published print;
/// * cells whose Table 1 inputs are themselves printed roundings of
///   exact thirds and sixths (0.33 ≈ 1/3, 0.17 ≈ 1/6) are recomputed
///   with exact `Ratio` arithmetic — the paper's published 0.143 for
///   garden's `ex` rating is round3(1/7), which no rounding of the
///   0.33-based f64 value (0.1416…) can reach.
#[test]
fn printed_roundings_match_published_tables() {
    use evirel_bench as bench;

    // --- exact-decimal cells, f64 pipeline --------------------------
    let t4 = bench::compute_table4();
    let published_t4: &[(&str, &str, &[&str], f64)] = &[
        ("garden", "speciality", &["si"], 0.655),
        ("garden", "speciality", &["hu"], 0.276),
        ("garden", "speciality", &["Ω"], 0.069),
        ("garden", "best-dish", &["d31"], 0.7),
        ("garden", "best-dish", &["d35"], 0.3),
        ("wok", "speciality", &["si"], 1.0),
        ("wok", "rating", &["gd"], 1.0),
        ("country", "speciality", &["am"], 1.0),
        ("olive", "speciality", &["it"], 1.0),
        ("olive", "best-dish", &["d1"], 1.0),
        ("olive", "rating", &["gd"], 0.8),
        ("olive", "rating", &["avg"], 0.2),
        ("mehl", "speciality", &["mu"], 1.0),
        ("mehl", "best-dish", &["d24"], 0.069),
        ("mehl", "best-dish", &["d31"], 0.931),
        ("mehl", "rating", &["ex"], 1.0),
        ("ashiana", "speciality", &["mu"], 0.9),
        ("ashiana", "speciality", &["Ω"], 0.1),
        ("ashiana", "rating", &["ex"], 1.0),
    ];
    for (key, attr, labels, published) in published_t4 {
        let measured = bench::mass_in(&t4, key, attr, labels);
        assert!(
            (round3(measured) - published).abs() < 1e-12,
            "Table 4 {key}.{attr}{labels:?}: round3({measured}) = {} != published {published}",
            round3(measured),
        );
    }

    // Tables 2, 3, and 5 carry Table 1 values through unchanged. The
    // published prints are transcribed here *independently* of the
    // `evirel_bench::TABLE*_CELLS` constants, so a transcription error
    // in those constants cannot self-certify.
    let published_t235: &[(u32, &str, &str, &[&str], f64)] = &[
        // Table 2: σ̃_{sn>0, speciality is {si}}(R_A)
        (2, "garden", "speciality", &["si"], 0.5),
        (2, "garden", "speciality", &["hu"], 0.25),
        (2, "garden", "speciality", &["Ω"], 0.25),
        (2, "garden", "best-dish", &["d31"], 0.5),
        (2, "garden", "best-dish", &["d35", "d36"], 0.5),
        (2, "wok", "speciality", &["si"], 1.0),
        (2, "wok", "rating", &["gd"], 0.25),
        (2, "wok", "rating", &["avg"], 0.75),
        // Table 3: σ̃_{sn>0, (speciality is {mu}) ∧ (rating is {ex})}(R_A)
        (3, "mehl", "speciality", &["mu"], 0.8),
        (3, "mehl", "speciality", &["ta"], 0.2),
        (3, "ashiana", "speciality", &["mu"], 0.9),
        (3, "ashiana", "speciality", &["Ω"], 0.1),
        (3, "ashiana", "rating", &["ex"], 1.0),
        // Table 5: π̃_{rname, phone, speciality, rating, (sn,sp)}(R_A)
        (5, "garden", "speciality", &["si"], 0.5),
        (5, "garden", "rating", &["gd"], 0.5),
        (5, "wok", "speciality", &["si"], 1.0),
        (5, "wok", "rating", &["avg"], 0.75),
        (5, "country", "speciality", &["am"], 1.0),
        (5, "olive", "rating", &["gd"], 0.5),
        (5, "mehl", "speciality", &["mu"], 0.8),
        (5, "ashiana", "speciality", &["mu"], 0.9),
    ];
    let t2 = bench::compute_table2();
    let t3 = bench::compute_table3();
    let t5 = bench::compute_table5();
    for (table, key, attr, labels, published) in published_t235 {
        let computed = match table {
            2 => &t2,
            3 => &t3,
            _ => &t5,
        };
        let measured = bench::mass_in(computed, key, attr, labels);
        assert!(
            (round3(measured) - published).abs() < 1e-12,
            "Table {table} {key}.{attr}{labels:?}: round3({measured}) = {} != published {published}",
            round3(measured),
        );
    }

    // --- thirds/sixths cells, exact Ratio arithmetic ----------------
    use evirel::evidence::{combine, Frame, MassFunction, Ratio};
    use std::sync::Arc;
    let r = |n, d| Ratio::new(n, d).unwrap();
    let exact = |frame: &Arc<Frame>, entries: &[(&[&str], Ratio)]| {
        let mut b = MassFunction::<Ratio>::builder(Arc::clone(frame));
        for (labels, w) in entries {
            b = if *labels == ["Ω"] {
                b.add_omega(*w)
            } else {
                b.add(labels.iter().copied(), *w).unwrap()
            };
        }
        b.build().unwrap()
    };

    // garden rating: Table 1 prints [ex^0.33, gd^0.5, Ω^0.17] ⊕
    // [gd^0.8, ex^0.2] for exact [ex^1/3, gd^1/2, avg^1/6] ⊕
    // [gd^4/5, ex^1/5]; the combination is [ex^1/7, gd^6/7], printed
    // 0.143 / 0.857.
    let rating = Arc::new(Frame::new("rating", ["avg", "gd", "ex"]));
    let a = exact(
        &rating,
        &[(&["ex"], r(1, 3)), (&["gd"], r(1, 2)), (&["avg"], r(1, 6))],
    );
    let b = exact(&rating, &[(&["gd"], r(4, 5)), (&["ex"], r(1, 5))]);
    let c = combine::dempster(&a, &b).unwrap();
    let of = |c: &combine::Combination<Ratio>, frame: &Arc<Frame>, labels: &[&str]| {
        c.mass
            .mass_of(&frame.subset(labels.iter().copied()).unwrap())
            .to_f64()
    };
    assert_eq!(round3(of(&c, &rating, &["ex"])), 0.143);
    assert_eq!(round3(of(&c, &rating, &["gd"])), 0.857);
    // The f64 pipeline (0.33-rounded inputs) lands within print noise.
    assert!((bench::mass_in(&t4, "garden", "rating", &["ex"]) - 1.0 / 7.0).abs() < 5e-3);
    assert!((bench::mass_in(&t4, "garden", "rating", &["gd"]) - 6.0 / 7.0).abs() < 5e-3);

    // wok best-dish: [d6^1/3, d7^1/3, d25^1/3] ⊕ [d6^0.5, d7^0.25,
    // d25^0.25] = [d6^0.5, d7^0.25, d25^0.25] exactly.
    let dish = Arc::new(Frame::new("best-dish", ["d6", "d7", "d25"]));
    let a = exact(
        &dish,
        &[(&["d6"], r(1, 3)), (&["d7"], r(1, 3)), (&["d25"], r(1, 3))],
    );
    let b = exact(
        &dish,
        &[(&["d6"], r(1, 2)), (&["d7"], r(1, 4)), (&["d25"], r(1, 4))],
    );
    let c = combine::dempster(&a, &b).unwrap();
    assert_eq!(round3(of(&c, &dish, &["d6"])), 0.5);
    assert_eq!(round3(of(&c, &dish, &["d7"])), 0.25);
    assert_eq!(round3(of(&c, &dish, &["d25"])), 0.25);
    for (labels, exact_mass) in [
        (&["d6"][..], 0.5),
        (&["d7"][..], 0.25),
        (&["d25"][..], 0.25),
    ] {
        assert!((bench::mass_in(&t4, "wok", "best-dish", labels) - exact_mass).abs() < 6e-3);
    }

    // country best-dish: [d1^1/2, d2^1/3, Ω^1/6] ⊕ [d2^0.8, d1^0.2] =
    // [d1^1/4, d2^3/4], printed 0.25 / 0.75.
    let dish = Arc::new(Frame::new("best-dish", ["d1", "d2"]));
    let a = exact(
        &dish,
        &[(&["d1"], r(1, 2)), (&["d2"], r(1, 3)), (&["Ω"], r(1, 6))],
    );
    let b = exact(&dish, &[(&["d2"], r(4, 5)), (&["d1"], r(1, 5))]);
    let c = combine::dempster(&a, &b).unwrap();
    assert_eq!(round3(of(&c, &dish, &["d1"])), 0.25);
    assert_eq!(round3(of(&c, &dish, &["d2"])), 0.75);
    assert!((bench::mass_in(&t4, "country", "best-dish", &["d1"]) - 0.25).abs() < 2e-3);
    assert!((bench::mass_in(&t4, "country", "best-dish", &["d2"]) - 0.75).abs() < 2e-3);

    // Membership prints are 2-decimal: mehl's (sn, sp) is exactly 5/6,
    // published (0.83, 0.83).
    let (sn, sp) = bench::membership_of(&t4, "mehl");
    assert_eq!((sn * 100.0).round() / 100.0, 0.83);
    assert_eq!((sp * 100.0).round() / 100.0, 0.83);
}

#[test]
fn paper_domains_are_ordered_for_theta() {
    // avg < gd < ex, so `rating >= 'gd'` is meaningful.
    let d = rating_domain();
    assert!(d.index_of(&Value::str("avg")).unwrap() < d.index_of(&Value::str("gd")).unwrap());
    assert!(d.index_of(&Value::str("gd")).unwrap() < d.index_of(&Value::str("ex")).unwrap());
    assert_eq!(speciality_domain().len(), 7);
}
