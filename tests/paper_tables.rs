//! Numeric verification of every table in the paper, through the
//! public façade API.
//!
//! The `repro_tables` binary prints these tables; this test pins the
//! numbers so a regression anywhere in the stack (evidence →
//! relation → algebra → workload) fails loudly.

use evirel::prelude::*;
use evirel::workload::restaurant::{rating_domain, speciality_domain};
use evirel::workload::{restaurant_db_a, restaurant_db_b};

fn mass(rel: &ExtendedRelation, key: &str, attr: &str, labels: &[&str]) -> f64 {
    let t = rel.get_by_key(&[Value::str(key)]).expect("tuple exists");
    let pos = rel.schema().position(attr).expect("attr exists");
    let m = t.value(pos).as_evidential().expect("evidential");
    let domain = rel.schema().attr(pos).ty().domain().expect("domain");
    if labels == ["Ω"] {
        return m.mass_of(&domain.frame().omega());
    }
    let values: Vec<Value> = labels.iter().map(|l| Value::str(*l)).collect();
    m.mass_of(&domain.subset_of_values(values.iter()).expect("labels"))
}

fn membership(rel: &ExtendedRelation, key: &str) -> (f64, f64) {
    let t = rel.get_by_key(&[Value::str(key)]).expect("tuple exists");
    (t.membership().sn(), t.membership().sp())
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn table1_source_relations_match_the_paper() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    assert_eq!(ra.len(), 6);
    assert_eq!(rb.len(), 5);
    // Spot-check every uncertain column once per relation.
    assert!(close(mass(&ra, "garden", "speciality", &["si"]), 0.5));
    assert!(close(mass(&ra, "garden", "best-dish", &["d35", "d36"]), 0.5));
    assert!(close(mass(&ra, "wok", "rating", &["avg"]), 0.75));
    assert!(close(mass(&ra, "country", "best-dish", &["Ω"]), 0.17));
    assert!(close(mass(&ra, "ashiana", "speciality", &["Ω"]), 0.1));
    assert_eq!(membership(&ra, "mehl"), (0.5, 0.5));
    assert!(close(mass(&rb, "wok", "speciality", &["ca"]), 0.2));
    assert!(close(mass(&rb, "mehl", "best-dish", &["d31"]), 0.9));
    let (sn, sp) = membership(&rb, "mehl");
    assert!(close(sn, 0.8) && close(sp, 1.0));
}

#[test]
fn table2_selection_sichuan() {
    let out = select(
        &restaurant_db_a().restaurants,
        &Predicate::is("speciality", ["si"]),
        &Threshold::POSITIVE,
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    let (sn, sp) = membership(&out, "garden");
    assert!(close(sn, 0.5) && close(sp, 0.75));
    let (sn, sp) = membership(&out, "wok");
    assert!(close(sn, 1.0) && close(sp, 1.0));
    // Attribute values retained (footnote 4).
    assert!(close(mass(&out, "garden", "speciality", &["hu"]), 0.25));
}

#[test]
fn table3_compound_selection() {
    let out = select(
        &restaurant_db_a().restaurants,
        &Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"])),
        &Threshold::POSITIVE,
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    let (sn, sp) = membership(&out, "mehl");
    assert!(close(sn, 0.32) && close(sp, 0.32));
    let (sn, sp) = membership(&out, "ashiana");
    assert!(close(sn, 0.9) && close(sp, 1.0));
}

#[test]
fn table4_extended_union() {
    let out = union_extended(&restaurant_db_a().restaurants, &restaurant_db_b().restaurants)
        .unwrap()
        .relation;
    assert_eq!(out.len(), 6);

    // garden speciality [si^0.655, hu^0.276, Ω^0.069] (exact forms).
    assert!(close(mass(&out, "garden", "speciality", &["si"]), 0.475 / 0.725));
    assert!(close(mass(&out, "garden", "speciality", &["hu"]), 0.2 / 0.725));
    assert!(close(mass(&out, "garden", "speciality", &["Ω"]), 0.05 / 0.725));
    // garden best-dish [d31^0.7, d35^0.3].
    assert!(close(mass(&out, "garden", "best-dish", &["d31"]), 0.7));
    assert!(close(mass(&out, "garden", "best-dish", &["d35"]), 0.3));
    // garden rating [ex^0.143, gd^0.857] (paper's rounding of
    // 0.066/0.466 and 0.4/0.466).
    assert!(close(mass(&out, "garden", "rating", &["ex"]), 0.066 / 0.466));
    assert!(close(mass(&out, "garden", "rating", &["gd"]), 0.4 / 0.466));
    // wok [si^1], [gd^1].
    assert!(close(mass(&out, "wok", "speciality", &["si"]), 1.0));
    assert!(close(mass(&out, "wok", "rating", &["gd"]), 1.0));
    // country best-dish [d1^0.25, d2^0.75] (rounded in the paper).
    assert!(close(mass(&out, "country", "best-dish", &["d1"]), 0.134 / 0.534));
    assert!(close(mass(&out, "country", "best-dish", &["d2"]), 0.4 / 0.534));
    // olive rating [gd^0.8, avg^0.2].
    assert!(close(mass(&out, "olive", "rating", &["gd"]), 0.8));
    // mehl [mu^1], [d24^0.069, d31^0.931], [ex^1], (0.83, 0.83).
    assert!(close(mass(&out, "mehl", "speciality", &["mu"]), 1.0));
    assert!(close(mass(&out, "mehl", "best-dish", &["d24"]), 0.04 / 0.58));
    assert!(close(mass(&out, "mehl", "best-dish", &["d31"]), 0.54 / 0.58));
    let (sn, sp) = membership(&out, "mehl");
    assert!(close(sn, 5.0 / 6.0) && close(sp, 5.0 / 6.0));
    // ashiana passes through unchanged.
    assert!(close(mass(&out, "ashiana", "speciality", &["mu"]), 0.9));
    let (sn, sp) = membership(&out, "ashiana");
    assert!(close(sn, 1.0) && close(sp, 1.0));
}

#[test]
fn table4_union_is_commutative_on_paper_data() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let ab = union_extended(&ra, &rb).unwrap().relation;
    let ba = union_extended(&rb, &ra).unwrap().relation;
    assert!(ab.approx_eq(&ba));
}

#[test]
fn table5_projection() {
    let out = project(
        &restaurant_db_a().restaurants,
        &["rname", "phone", "speciality", "rating"],
    )
    .unwrap();
    assert_eq!(out.len(), 6);
    assert_eq!(out.schema().arity(), 4);
    // Memberships carry over unchanged.
    assert_eq!(membership(&out, "mehl"), (0.5, 0.5));
    let (sn, sp) = membership(&out, "garden");
    assert!(close(sn, 1.0) && close(sp, 1.0));
    // Values carry over unchanged.
    assert!(close(mass(&out, "ashiana", "speciality", &["mu"]), 0.9));
}

#[test]
fn section_21_22_worked_example_exact() {
    use evirel::evidence::{combine, Frame, MassFunction, Ratio};
    use std::sync::Arc;
    let frame = Arc::new(Frame::new(
        "speciality",
        ["american", "hunan", "sichuan", "cantonese", "mughalai", "italian"],
    ));
    let r = |n, d| Ratio::new(n, d).unwrap();
    let m1 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese"], r(1, 2))
        .unwrap()
        .add(["hunan", "sichuan"], r(1, 3))
        .unwrap()
        .add_omega(r(1, 6))
        .build()
        .unwrap();
    let m2 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese", "hunan"], r(1, 2))
        .unwrap()
        .add(["hunan"], r(1, 4))
        .unwrap()
        .add_omega(r(1, 4))
        .build()
        .unwrap();
    let c = combine::dempster(&m1, &m2).unwrap();
    assert_eq!(c.conflict, r(1, 8));
    let f = |labels: &[&str]| frame.subset(labels.iter().copied()).unwrap();
    assert_eq!(c.mass.mass_of(&f(&["cantonese"])), r(3, 7));
    assert_eq!(c.mass.mass_of(&f(&["hunan"])), r(1, 3));
    assert_eq!(c.mass.mass_of(&f(&["cantonese", "hunan"])), r(2, 21));
    assert_eq!(c.mass.mass_of(&f(&["hunan", "sichuan"])), r(2, 21));
    assert_eq!(c.mass.mass_of(&frame.omega()), r(1, 21));
}

#[test]
fn paper_domains_are_ordered_for_theta() {
    // avg < gd < ex, so `rating >= 'gd'` is meaningful.
    let d = rating_domain();
    assert!(d.index_of(&Value::str("avg")).unwrap() < d.index_of(&Value::str("gd")).unwrap());
    assert!(d.index_of(&Value::str("gd")).unwrap() < d.index_of(&Value::str("ex")).unwrap());
    assert_eq!(speciality_domain().len(), 7);
}
