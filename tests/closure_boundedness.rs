//! Theorem 1 (§3.6) exercised through the workload generator: closure
//! and boundedness of all five extended operations on randomized
//! relations with realistic shapes (multi-attribute schemas, uncertain
//! memberships, conflicting evidence).

use evirel::algebra::properties::{
    check_boundedness_binary, check_boundedness_unary, satisfies_closure,
};
use evirel::prelude::*;
use evirel::workload::generator::{generate, generate_pair, GeneratorConfig, PairConfig};

fn config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        tuples: 60,
        domain_size: 12,
        evidential_attrs: 2,
        max_focal: 3,
        max_focal_size: 3,
        omega_mass: 0.1,
        uncertain_membership: 0.5,
        seed,
    }
}

#[test]
fn closure_across_seeds() {
    for seed in 0..5u64 {
        let rel = generate("C", &config(seed)).unwrap();
        let pred = Predicate::is("e0", ["v0", "v1"]);
        let selected = select(&rel, &pred, &Threshold::POSITIVE).unwrap();
        assert!(satisfies_closure(&selected), "select closure, seed {seed}");
        let projected = project(&rel, &["k", "e1"]).unwrap();
        assert!(
            satisfies_closure(&projected),
            "project closure, seed {seed}"
        );
    }
}

#[test]
fn union_closure_and_boundedness_across_seeds() {
    for seed in 0..5u64 {
        let (a, b) = generate_pair(&PairConfig {
            base: config(seed),
            key_overlap: 0.6,
            conflict_bias: 0.3,
        })
        .unwrap();
        match union_extended(&a, &b) {
            Ok(out) => {
                assert!(
                    satisfies_closure(&out.relation),
                    "union closure, seed {seed}"
                );
                assert!(out.relation.validate().is_ok());
            }
            Err(evirel::algebra::AlgebraError::TotalConflict { .. }) => continue,
            Err(e) => panic!("unexpected union failure: {e}"),
        }
        let ok = check_boundedness_binary(|l, r| Ok(union_extended(l, r)?.relation), &a, &b);
        match ok {
            Ok(ok) => assert!(ok, "union boundedness, seed {seed}"),
            Err(evirel::algebra::AlgebraError::TotalConflict { .. }) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}

#[test]
fn select_boundedness_with_theta_predicates() {
    for seed in 0..5u64 {
        let rel = generate("B", &config(seed)).unwrap();
        for pred in [
            Predicate::is("e0", ["v0"]),
            Predicate::theta(Operand::attr("e0"), ThetaOp::Ge, Operand::value("v6")),
            Predicate::is("e0", ["v1"]).and(Predicate::is("e1", ["v2", "v3"])),
            Predicate::is("e0", ["v0"]).negate(),
        ] {
            let ok =
                check_boundedness_unary(|r| select(r, &pred, &Threshold::POSITIVE), &rel).unwrap();
            assert!(ok, "seed {seed}, predicate {pred}");
        }
    }
}

#[test]
fn project_boundedness() {
    for seed in 0..5u64 {
        let rel = generate("P", &config(seed)).unwrap();
        let ok = check_boundedness_unary(|r| project(r, &["k", "e0", "e1"]), &rel).unwrap();
        assert!(ok, "seed {seed}");
    }
}

#[test]
fn product_and_join_boundedness() {
    let a = generate(
        "PA",
        &GeneratorConfig {
            tuples: 15,
            ..config(7)
        },
    )
    .unwrap();
    let b = generate(
        "PB",
        &GeneratorConfig {
            tuples: 15,
            ..config(8)
        },
    )
    .unwrap();
    let b = evirel::algebra::rename_relation(&b, "PB2");
    let b = evirel::algebra::rename_attribute(&b, "k", "k2").unwrap();
    let b = evirel::algebra::rename_attribute(&b, "e0", "f0").unwrap();
    let b = evirel::algebra::rename_attribute(&b, "e1", "f1").unwrap();
    assert!(check_boundedness_binary(product, &a, &b).unwrap());
    let pred = Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::attr("k2"));
    assert!(
        check_boundedness_binary(|l, r| join(l, r, &pred, &Threshold::POSITIVE), &a, &b).unwrap()
    );
}

#[test]
fn setops_preserve_closure() {
    let (a, b) = generate_pair(&PairConfig {
        base: config(11),
        key_overlap: 0.5,
        conflict_bias: 0.0,
    })
    .unwrap();
    let (inter, _) = evirel::algebra::setops::intersect_extended(
        &a,
        &b,
        &evirel::algebra::union::UnionOptions::default(),
    )
    .unwrap();
    assert!(satisfies_closure(&inter));
    let diff = evirel::algebra::setops::difference_extended(&a, &b).unwrap();
    assert!(satisfies_closure(&diff));
    // Difference and intersection partition a's keys.
    assert_eq!(inter.len() + diff.len(), a.len());
}
