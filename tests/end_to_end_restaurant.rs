//! End-to-end integration of the paper's two restaurant databases:
//! Figure 1 pipeline → integrated relation → query processing →
//! storage, all through the façade crate.

use evirel::prelude::*;
use evirel::workload::{restaurant_db_a, restaurant_db_b};
use std::sync::Arc;

#[test]
fn figure1_pipeline_trace() {
    let db_a = restaurant_db_a();
    let db_b = restaurant_db_b();
    let integrator = Integrator::new(Arc::clone(db_a.restaurants.schema()));
    let out = integrator
        .run(&db_a.restaurants, &db_b.restaurants)
        .unwrap();
    assert_eq!(out.trace.left_in, 6);
    assert_eq!(out.trace.right_in, 5);
    assert_eq!(out.trace.matched, 5);
    assert_eq!(out.trace.left_only, 1); // ashiana
    assert_eq!(out.trace.right_only, 0);
    assert_eq!(out.trace.integrated, 6);
    assert!(out.trace.conflicts > 0);
    assert!(out.trace.max_kappa > 0.5); // garden rating κ = 0.534
                                        // The trace prints the Figure 1 stages.
    let text = out.trace.to_string();
    for stage in [
        "attribute preprocessing",
        "entity identification",
        "tuple merging",
    ] {
        assert!(text.contains(stage), "{text}");
    }
}

#[test]
fn pipeline_result_equals_extended_union() {
    // With identity preprocessing and key matching, the Figure 1
    // pipeline must coincide with the algebra's ∪̃ (Table 4).
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let via_pipeline = Integrator::new(Arc::clone(ra.schema()))
        .run(&ra, &rb)
        .unwrap()
        .relation;
    let via_union = union_extended(&ra, &rb).unwrap().relation;
    assert!(via_pipeline.approx_eq(&via_union));
}

#[test]
fn conflict_report_names_garden_rating() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let out = union_extended(&ra, &rb).unwrap();
    let garden_rating = out
        .report
        .conflicts()
        .iter()
        .find(|c| c.key == vec![Value::str("garden")] && c.attr == "rating")
        .expect("garden/rating conflict reported");
    assert!((garden_rating.kappa - 0.534).abs() < 1e-9);
    assert!(!garden_rating.total);
    // No total conflicts anywhere in the paper's data.
    assert_eq!(out.report.total_conflicts().count(), 0);
}

#[test]
fn queries_over_integrated_relation() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let merged = union_extended(&ra, &rb).unwrap().relation;
    let mut catalog = Catalog::new();
    catalog.register(
        "merged",
        evirel::algebra::rename_relation(&merged, "merged"),
    );

    // After integration, mehl is excellent with sn = 0.83.
    let out = execute(
        &catalog,
        "SELECT rname, rating FROM merged WHERE rating IS {ex} WITH SN >= 0.8;",
    )
    .unwrap();
    assert_eq!(out.len(), 3); // country, mehl, ashiana
    assert!(out.contains_key(&[Value::str("mehl")]));

    // Definite-threshold query returns only fully-certain answers.
    let out = execute(
        &catalog,
        "SELECT rname, rating FROM merged WHERE rating IS {ex} WITH SN = 1;",
    )
    .unwrap();
    assert_eq!(out.len(), 2); // country, ashiana
}

#[test]
fn integrated_relation_roundtrips_through_storage() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let merged = union_extended(&ra, &rb).unwrap().relation;
    let text = write_relation(&merged);
    let back = read_relation(&text).unwrap();
    assert!(back.approx_eq(&merged));
    // And the reloaded relation still answers queries identically.
    let mut catalog = Catalog::new();
    catalog.register("m", back);
    catalog.register("orig", merged);
    let q = "SELECT rname, rating FROM m WHERE rating >= 'gd' WITH SN >= 0.5;";
    let q2 = "SELECT rname, rating FROM orig WHERE rating >= 'gd' WITH SN >= 0.5;";
    let a = execute(&catalog, q).unwrap();
    let b = execute(&catalog, q2).unwrap();
    assert!(a.approx_eq(&b));
}

#[test]
fn relationship_relations_integrate_too() {
    // Figure 2's Managed-by and Manager relations union across DBs.
    let db_a = restaurant_db_a();
    let db_b = restaurant_db_b();
    let rm = union_extended(&db_a.managed_by, &db_b.managed_by).unwrap();
    assert_eq!(rm.relation.len(), 4); // wok-chen (matched), mehl-rao, ashiana-rao, country-gruber
    let m = union_extended(&db_a.managers, &db_b.managers).unwrap();
    assert_eq!(m.relation.len(), 3); // chen (merged), rao, gruber
                                     // chen's speciality combined across DBs sharpens toward sichuan.
    let chen = m.relation.get_by_key(&[Value::str("chen")]).unwrap();
    let spec = chen.value(3).as_evidential().unwrap();
    let domain = m.relation.schema().attr(3).ty().domain().unwrap().clone();
    let si = domain.subset_of_values([&Value::str("si")]).unwrap();
    assert!(spec.bel(&si) > 0.7);
}

#[test]
fn parallel_union_agrees_on_paper_data() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let seq = union_extended(&ra, &rb).unwrap();
    let par = evirel::algebra::par::par_union(
        &ra,
        &rb,
        &evirel::algebra::union::UnionOptions::default(),
        4,
    )
    .unwrap();
    assert!(seq.relation.approx_eq(&par.relation));
}
