//! The paper's §1.3 claims about prior approaches, verified
//! executably against the baseline implementations.

use evirel::baselines::{compare_merge, AggregateFn, PartialValue, ProbValue, TriBool};
use evirel::evidence::{combine, FocalSet, Frame, MassFunction};
use evirel::prelude::*;
use std::sync::Arc;

fn frame() -> Arc<Frame> {
    Arc::new(Frame::new("f", ["a", "b", "c", "d"]))
}

fn m(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
    let mut b = MassFunction::<f64>::builder(frame());
    for (labels, w) in entries {
        b = b.add(labels.iter().copied(), *w).unwrap();
    }
    b.build().unwrap()
}

/// §1.3: "Our approach generalizes the partial value concept" — when
/// all mass sits on one focal element, Dempster's combination and
/// partial-value intersection coincide on the support.
#[test]
fn evidential_generalizes_partial_values() {
    let a = m(&[(&["a", "b", "c"], 1.0)]);
    let b = m(&[(&["b", "c", "d"], 1.0)]);
    let dempster = combine::dempster(&a, &b).unwrap();
    let partial = PartialValue::from_evidence(&a)
        .combine(&PartialValue::from_evidence(&b))
        .unwrap();
    // Dempster's single focal element is exactly the intersection.
    assert_eq!(dempster.mass.core(), *partial.candidates());
    assert_eq!(dempster.mass.focal_count(), 1);
    assert!((dempster.conflict - 0.0).abs() < 1e-12);
}

/// Both formalisms agree that disjoint certainties are irreconcilable.
#[test]
fn total_conflict_agrees_across_formalisms() {
    let a = m(&[(&["a"], 1.0)]);
    let b = m(&[(&["d"], 1.0)]);
    assert!(combine::dempster(&a, &b).is_err());
    assert!(PartialValue::from_evidence(&a)
        .combine(&PartialValue::from_evidence(&b))
        .is_none());
    assert!(ProbValue::from_evidence(&a)
        .combine_bayes(&ProbValue::from_evidence(&b))
        .is_none());
    // Tseng's mixing keeps the inconsistency instead — the design
    // difference §1.3 calls out.
    let mixed = ProbValue::from_evidence(&a).combine_mixing(&ProbValue::from_evidence(&b));
    assert!((mixed.prob_of(0) - 0.5).abs() < 1e-12);
    assert!((mixed.prob_of(3) - 0.5).abs() < 1e-12);
}

/// §1.3: DeMichiel's query model returns *true* and *may-be* tuple
/// sets; the evidential model subsumes both via (sn, sp): true ⇔
/// sn = 1, may-be ⇔ sn < 1 < … ⇔ positive plausibility.
#[test]
fn true_and_maybe_map_to_support_pairs() {
    let target = frame().subset(["a", "b"]).unwrap();

    // A value entirely inside the target: DeMichiel true, sn = 1.
    let inside = m(&[(&["a"], 0.5), (&["a", "b"], 0.5)]);
    assert_eq!(
        PartialValue::from_evidence(&inside).select_status(&target),
        TriBool::True
    );
    assert!((inside.bel(&target) - 1.0).abs() < 1e-12);

    // A value straddling the target: DeMichiel may-be, 0 < Pls < 1
    // with Bel possibly 0 — the graded refinement.
    let straddling = m(&[(&["b", "c"], 1.0)]);
    assert_eq!(
        PartialValue::from_evidence(&straddling).select_status(&target),
        TriBool::MayBe
    );
    assert!(straddling.bel(&target).abs() < 1e-12);
    assert!((straddling.pls(&target) - 1.0).abs() < 1e-12);

    // A value outside: DeMichiel false, Pls = 0.
    let outside = m(&[(&["d"], 1.0)]);
    assert_eq!(
        PartialValue::from_evidence(&outside).select_status(&target),
        TriBool::False
    );
    assert!(outside.pls(&target).abs() < 1e-12);
}

/// Partial values discard grading: two very different evidence sets
/// with the same core are indistinguishable to DeMichiel but ranked
/// differently by Bel.
#[test]
fn grading_is_what_the_evidential_model_adds() {
    let confident = m(&[(&["a"], 0.9), (&["a", "b"], 0.1)]);
    let ignorant = m(&[(&["a"], 0.1), (&["a", "b"], 0.9)]);
    assert_eq!(
        PartialValue::from_evidence(&confident),
        PartialValue::from_evidence(&ignorant)
    );
    let a_set = FocalSet::singleton(0);
    assert!(confident.bel(&a_set) > ignorant.bel(&a_set));
}

/// Tseng's model cannot assign mass to subsets; pignistic flattening
/// destroys the distinction between "b or c jointly" and "b and c
/// independently".
#[test]
fn probabilistic_partial_values_lose_subset_structure() {
    let joint = m(&[(&["b", "c"], 1.0)]);
    let split = m(&[(&["b"], 0.5), (&["c"], 0.5)]);
    assert_ne!(joint, split);
    let p_joint = ProbValue::from_evidence(&joint);
    let p_split = ProbValue::from_evidence(&split);
    assert_eq!(p_joint, p_split); // flattening collapses them
                                  // But Bel distinguishes them on the singleton {b}.
    let b_set = FocalSet::singleton(1);
    assert!(joint.bel(&b_set).abs() < 1e-12);
    assert!((split.bel(&b_set) - 0.5).abs() < 1e-12);
}

/// §1.3: aggregates and the evidential method are complementary —
/// aggregates handle numerics the evidential model should not, and
/// vice versa. The integration layer's registry runs both in one merge
/// (tested in evirel-integrate); here we pin the division of labour.
#[test]
fn aggregate_and_evidential_division_of_labour() {
    // Numeric conflict: Dayal resolves, evidence sets are inapplicable
    // (open domain).
    assert_eq!(
        AggregateFn::Average.resolve_values(&Value::int(40_000), &Value::int(44_000)),
        Some(Value::int(42_000))
    );
    // Categorical conflict: Dayal cannot resolve.
    assert_eq!(
        AggregateFn::Average.resolve_values(&Value::str("hunan"), &Value::str("sichuan")),
        None
    );
    // …but Dempster can, given graded evidence.
    let out = combine::dempster(
        &m(&[(&["a"], 0.7), (&["a", "b"], 0.3)]),
        &m(&[(&["b"], 0.4), (&["a", "b"], 0.6)]),
    )
    .unwrap();
    assert!(out.mass.focal_count() >= 2);
}

/// The comparison harness orders approaches by information retention
/// on agreeing sources: evidential specificity ≤ partial cardinality.
#[test]
fn specificity_ordering_on_agreeing_sources() {
    let a = m(&[(&["a"], 0.6), (&["a", "b"], 0.4)]);
    let b = m(&[(&["a", "b"], 1.0)]);
    let cmp = compare_merge(&a, &b).unwrap();
    let evidential = cmp.evidential.unwrap();
    let partial = cmp.partial.unwrap();
    assert!(
        evidential <= partial + 1e-12,
        "evidential {evidential} vs partial {partial}"
    );
    assert!(cmp.kappa.abs() < 1e-12);
}
