//! Query-language integration tests: EQL behaviour across the whole
//! stack, beyond the per-crate unit tests.

use evirel::prelude::*;
use evirel::query::QueryError;
use evirel::workload::{restaurant_db_a, restaurant_db_b};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register("ra", restaurant_db_a().restaurants);
    c.register("rb", restaurant_db_b().restaurants);
    c
}

#[test]
fn union_is_commutative_through_the_language() {
    let c = catalog();
    let ab = execute(&c, "SELECT * FROM ra UNION rb").unwrap();
    let ba = execute(&c, "SELECT * FROM rb UNION ra").unwrap();
    assert!(ab.approx_eq(&ba));
}

#[test]
fn where_after_union_equals_algebra_composition() {
    let c = catalog();
    let via_language = execute(
        &c,
        "SELECT * FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.5",
    )
    .unwrap();
    let merged = union_extended(
        &restaurant_db_a().restaurants,
        &restaurant_db_b().restaurants,
    )
    .unwrap()
    .relation;
    let via_algebra = select(
        &merged,
        &Predicate::is("rating", ["ex"]),
        &Threshold::SnAtLeast(0.5),
    )
    .unwrap();
    assert!(via_language.approx_eq(&via_algebra));
}

#[test]
fn is_predicate_with_multiple_values() {
    let out = execute(
        &catalog(),
        "SELECT rname, speciality FROM ra WHERE speciality IS {mu, ta} WITH SN >= 0.9",
    )
    .unwrap();
    // mehl: Bel({mu,ta}) = 1.0 (mass mu .8 + ta .2), membership 0.5 → 0.5 ✗.
    // ashiana: Bel = 0.9 ✓.
    assert_eq!(out.len(), 1);
    assert!(out.contains_key(&[Value::str("ashiana")]));
}

#[test]
fn theta_with_evidence_literal() {
    // Restaurants whose rating dominates a 50/50 good-excellent
    // reference.
    let out = execute(
        &catalog(),
        "SELECT rname, rating FROM ra WHERE rating >= [gd^0.5, ex^0.5] WITH SN >= 0.4",
    )
    .unwrap();
    // country [ex^1]: definitely ≥ both gd and ex → sn = 1 ✓.
    // ashiana [ex^1] ✓. garden: ex .33 ≥ both (0.33); gd .5 ≥ gd half
    // (0.25) → 0.58 ✓. mehl: (ex .8 + gd .2*.5 = .9) × 0.5 membership → 0.45 ✓.
    assert!(out.contains_key(&[Value::str("country")]));
    assert!(out.contains_key(&[Value::str("ashiana")]));
    assert!(out.contains_key(&[Value::str("garden")]));
}

#[test]
fn not_and_or_extensions() {
    let out = execute(
        &catalog(),
        "SELECT rname, rating FROM ra WHERE NOT rating IS {avg} WITH SN >= 0.9",
    )
    .unwrap();
    // sn(NOT avg) = 1 − Pls(avg): country 1, ashiana 1, mehl 1 (×0.5 ✗),
    // garden 1−0.17 = 0.83 ✗, olive 0.5 ✗, wok 0.25 ✗.
    assert_eq!(out.len(), 2);
}

#[test]
fn numeric_theta_on_definite_attribute() {
    let out = execute(
        &catalog(),
        "SELECT rname, bldg-no FROM ra WHERE bldg-no <= 600 WITH SN = 1",
    )
    .unwrap();
    // wok 600, country 12, olive 514, ashiana 353.
    assert_eq!(out.len(), 4);
}

#[test]
fn parse_errors_carry_offsets() {
    match execute(&catalog(), "SELECT * FROM") {
        Err(QueryError::Parse { offset, .. }) => assert!(offset >= 13),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn execution_errors_surface() {
    assert!(matches!(
        execute(&catalog(), "SELECT * FROM missing"),
        Err(QueryError::UnknownRelation { .. })
    ));
    // Unknown attribute in predicate.
    assert!(execute(&catalog(), "SELECT * FROM ra WHERE nope IS {x}").is_err());
    // Out-of-domain value in IS-set.
    assert!(execute(&catalog(), "SELECT * FROM ra WHERE speciality IS {thai}").is_err());
}

#[test]
fn chained_unions() {
    let mut c = catalog();
    // A third source with one more restaurant.
    let third = RelationBuilder::new(std::sync::Arc::new(
        restaurant_db_a().restaurants.schema().renamed("rc"),
    ))
    .tuple(|t| {
        t.set_str("rname", "nile")
            .set_str("street", "lake.st")
            .set_int("bldg-no", 77)
            .set_str("phone", "555-0000")
            .set_evidence("speciality", [(&["am"][..], 1.0)])
            .set_evidence("best-dish", [(&["d9"][..], 1.0)])
            .set_evidence("rating", [(&["gd"][..], 1.0)])
    })
    .unwrap()
    .build();
    c.register("rc", third);
    let out = execute(&c, "SELECT * FROM ra UNION rb UNION rc").unwrap();
    assert_eq!(out.len(), 7);
    assert!(out.contains_key(&[Value::str("nile")]));
}

#[test]
fn ranked_rendering_is_ordered() {
    let out = execute(
        &catalog(),
        "SELECT rname, rating FROM ra WHERE rating >= 'gd' WITH SN > 0",
    )
    .unwrap();
    let text = evirel::query::format::render_ranked(&out);
    // country (sn 1.0) must rank above wok (sn 0.25).
    let country = text.find("(country)").unwrap();
    let wok = text.find("(wok)").unwrap();
    assert!(country < wok, "{text}");
}
