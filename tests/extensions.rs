//! The documented extensions, exercised end to end through the façade:
//! discounting, conditioning, uncertainty measures, multi-source
//! integration, and plan explanation.

use evirel::evidence::{combine, condition, measures, weight_of_conflict};
use evirel::prelude::*;
use evirel::workload::restaurant::rating_domain;
use evirel::workload::{restaurant_db_a, restaurant_db_b};
use std::sync::Arc;

fn garden_speciality(rel: &ExtendedRelation) -> evirel::evidence::MassFunction<f64> {
    let t = rel.get_by_key(&[Value::str("garden")]).unwrap();
    t.value(4).as_evidential().unwrap().clone()
}

#[test]
fn integration_reduces_nonspecificity_on_paper_data() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let before = measures::nonspecificity(&garden_speciality(&ra));
    let merged = union_extended(&ra, &rb).unwrap().relation;
    let after = measures::nonspecificity(&garden_speciality(&merged));
    // Ω mass shrinks 0.25 → 0.069, so nonspecificity must drop.
    assert!(after < before, "{after} !< {before}");
    // And specificity moves toward 1 (more definite).
    assert!(
        measures::specificity(&garden_speciality(&merged))
            < measures::specificity(&garden_speciality(&ra))
    );
}

#[test]
fn discounting_an_unreliable_source_softens_its_influence() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let schema = Arc::clone(ra.schema());
    // Trust DB_B only 50%.
    let rb_soft = evirel::integrate::Preprocessor::new()
        .with_reliability(0.5)
        .apply(&rb, Arc::clone(&schema))
        .unwrap();
    let full = union_extended(&ra, &rb).unwrap().relation;
    let soft = union_extended(&ra, &rb_soft).unwrap().relation;
    // With DB_B discounted, garden's combined rating stays closer to
    // DB_A's view (gd mass lower than in the fully-trusted merge).
    let gd = rating_domain()
        .subset_of_values([&Value::str("gd")])
        .unwrap();
    let full_gd = full
        .get_by_key(&[Value::str("garden")])
        .unwrap()
        .value(6)
        .as_evidential()
        .unwrap()
        .bel(&gd);
    let soft_gd = soft
        .get_by_key(&[Value::str("garden")])
        .unwrap()
        .value(6)
        .as_evidential()
        .unwrap()
        .bel(&gd);
    assert!(soft_gd < full_gd, "{soft_gd} !< {full_gd}");
}

#[test]
fn conditioning_answers_what_if_constraints() {
    // "Given that garden is definitely Chinese (hu/si/ca), what do we
    // believe about its speciality?"
    let ra = restaurant_db_a().restaurants;
    let m = garden_speciality(&ra);
    let domain = ra.schema().attr(4).ty().domain().unwrap().clone();
    let chinese = domain
        .subset_of_values([&Value::str("hu"), &Value::str("si"), &Value::str("ca")])
        .unwrap();
    let conditioned = condition(&m, &chinese).unwrap();
    assert!(conditioned.core().is_subset_of(&chinese));
    // si keeps its dominance after conditioning.
    let si = domain.subset_of_values([&Value::str("si")]).unwrap();
    assert!(conditioned.bel(&si) >= m.bel(&si));
}

#[test]
fn weight_of_conflict_matches_paper_union() {
    // κ = 0.534 for garden's rating — weight of conflict is finite and
    // positive; total conflict would be infinite.
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let out = union_extended(&ra, &rb).unwrap();
    let garden_rating = out
        .report
        .conflicts()
        .iter()
        .find(|c| c.attr == "rating" && c.key == vec![Value::str("garden")])
        .unwrap();
    let w = weight_of_conflict(garden_rating.kappa);
    assert!(w > 0.0 && w.is_finite());
    assert!(weight_of_conflict(1.0).is_infinite());
}

#[test]
fn run_many_integrates_a_third_agency() {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    // A third agency only knows about wok, and disagrees mildly.
    let rc = RelationBuilder::new(Arc::new(ra.schema().renamed("RC")))
        .tuple(|t| {
            t.set_str("rname", "wok")
                .set_str("street", "wash.ave.")
                .set_int("bldg-no", 600)
                .set_str("phone", "382-4165")
                .set_evidence_with_omega("speciality", [(&["si"][..], 0.6)], 0.4)
                .set_evidence_with_omega("best-dish", [(&["d6"][..], 0.5)], 0.5)
                .set_evidence("rating", [(&["gd"][..], 0.7), (&["ex"][..], 0.3)])
        })
        .unwrap()
        .build();
    let integrator = Integrator::new(Arc::clone(ra.schema()));
    let out = integrator.run_many(&[&ra, &rb, &rc]).unwrap();
    assert_eq!(out.relation.len(), 6);
    // wok's rating absorbed all three sources: ex conflicts away
    // against gd^1 from RB, so gd stays certain.
    let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
    let gd = rating_domain()
        .subset_of_values([&Value::str("gd")])
        .unwrap();
    assert!((wok.value(6).as_evidential().unwrap().bel(&gd) - 1.0).abs() < 1e-9);
    // Accumulated trace covers both folds.
    assert_eq!(out.trace.right_in, 6); // 5 (RB) + 1 (RC)
}

#[test]
fn explain_matches_execution_shape() {
    let plan = evirel::query::explain(
        "SELECT rname, rating FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.8",
    )
    .unwrap();
    assert!(plan.contains("π̃[rname, rating]"));
    assert!(plan.contains("∪̃"));
    // The same query executes to the known Table 4-derived answer.
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    let out = execute(
        &catalog,
        "SELECT rname, rating FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.8",
    )
    .unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn summarization_cap_respects_paper_results() {
    // With a generous cap the union result is unchanged on paper data
    // (no attribute has more than 3 focal elements post-merge).
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    let exact = union_extended(&ra, &rb).unwrap().relation;
    let capped = evirel::algebra::union::union_with(
        &ra,
        &rb,
        &evirel::algebra::union::UnionOptions {
            max_focal: Some(4),
            ..Default::default()
        },
    )
    .unwrap()
    .relation;
    assert!(capped.approx_eq(&exact));
}

#[test]
fn dempster_all_equals_pairwise_folds() {
    // dempster_all over the three garden rating sources equals manual
    // folding — associativity in practice.
    let frame = Arc::clone(rating_domain().frame());
    let mk = |entries: &[(&str, f64)]| {
        let mut b = evirel::evidence::MassFunction::<f64>::builder(Arc::clone(&frame));
        for (l, w) in entries {
            b = b.add([*l], *w).unwrap();
        }
        b.build().unwrap()
    };
    let m1 = mk(&[("ex", 0.33), ("gd", 0.5), ("avg", 0.17)]);
    let m2 = mk(&[("ex", 0.2), ("gd", 0.8)]);
    let m3 = mk(&[("gd", 0.6), ("avg", 0.4)]);
    let all = combine::dempster_all([&m1, &m2, &m3]).unwrap();
    let fold = combine::dempster(&combine::dempster(&m1, &m2).unwrap().mass, &m3).unwrap();
    assert!(all.mass.approx_eq(&fold.mass));
}
