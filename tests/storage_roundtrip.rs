//! Storage round-trips across crates: paper data, generated data, and
//! property-based round-tripping of arbitrary evidence shapes.

use evirel::prelude::*;
use evirel::workload::generator::{generate, GeneratorConfig};
use evirel::workload::{restaurant_db_a, restaurant_db_b};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn paper_tables_roundtrip() {
    for rel in [
        restaurant_db_a().restaurants,
        restaurant_db_b().restaurants,
        restaurant_db_a().managers,
        restaurant_db_a().managed_by,
    ] {
        let text = write_relation(&rel);
        let back = read_relation(&text).unwrap();
        assert!(
            back.approx_eq(&rel),
            "round-trip of {}",
            rel.schema().name()
        );
        assert_eq!(back.schema().name(), rel.schema().name());
        assert_eq!(back.schema().arity(), rel.schema().arity());
    }
}

#[test]
fn generated_relations_roundtrip_exactly() {
    for seed in 0..3u64 {
        let rel = generate(
            "G",
            &GeneratorConfig {
                tuples: 100,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        let text = write_relation(&rel);
        let back = read_relation(&text).unwrap();
        // Exact, not approximate: masses print with shortest
        // round-trip formatting.
        for (key, t) in rel.iter_keyed() {
            let o = back.get_by_key(&key).unwrap();
            assert_eq!(o.values(), t.values());
            assert_eq!(o.membership().sn(), t.membership().sn());
            assert_eq!(o.membership().sp(), t.membership().sp());
        }
    }
}

#[test]
fn double_roundtrip_is_fixpoint() {
    let rel = restaurant_db_a().restaurants;
    let once = write_relation(&rel);
    let twice = write_relation(&read_relation(&once).unwrap());
    assert_eq!(once, twice);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary masses over arbitrary focal structures survive the
    /// text format bit-for-bit.
    #[test]
    fn evidence_roundtrip_property(
        raw in proptest::collection::vec((1u8..32, 1u32..1000), 1..5),
        sn_millis in 1u32..=1000,
    ) {
        let domain = Arc::new(
            AttrDomain::categorical("d", ["a", "b", "c", "d", "e"]).unwrap()
        );
        let schema = Arc::new(
            Schema::builder("P")
                .key_str("k")
                .evidential("d", Arc::clone(&domain))
                .build()
                .unwrap(),
        );
        // Deduplicate masks, accumulate weights, normalize.
        let mut acc: std::collections::HashMap<u8, u64> = std::collections::HashMap::new();
        for (mask, w) in raw {
            *acc.entry(mask).or_insert(0) += w as u64;
        }
        let total: u64 = acc.values().sum();
        let mut builder =
            evirel::evidence::MassFunction::<f64>::builder(Arc::clone(domain.frame()));
        for (mask, w) in acc {
            let set = evirel::evidence::FocalSet::from_indices(
                (0..5usize).filter(|i| mask & (1 << i) != 0),
            );
            builder = builder.add_set(set, w as f64 / total as f64).unwrap();
        }
        let mass = builder.build().unwrap();
        let sn = sn_millis as f64 / 1000.0;

        let mut rel = ExtendedRelation::new(Arc::clone(&schema));
        rel.insert(
            Tuple::new(
                &schema,
                vec![AttrValue::Definite(Value::str("key")), AttrValue::Evidential(mass)],
                SupportPair::new(sn, 1.0).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();

        let text = write_relation(&rel);
        let back = read_relation(&text).unwrap();
        let orig_tuple = rel.get_by_key(&[Value::str("key")]).unwrap();
        let back_tuple = back.get_by_key(&[Value::str("key")]).unwrap();
        prop_assert_eq!(orig_tuple.values(), back_tuple.values());
        prop_assert_eq!(orig_tuple.membership().sn(), back_tuple.membership().sn());
    }

    /// Strings needing quoting survive as keys and definite values.
    #[test]
    fn awkward_strings_roundtrip(s in "[ -~]{0,20}") {
        let schema = Arc::new(
            Schema::builder("Q")
                .key_str("k")
                .definite("v", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let mut rel = ExtendedRelation::new(Arc::clone(&schema));
        rel.insert(
            Tuple::new(
                &schema,
                vec![
                    AttrValue::Definite(Value::str(format!("key-{s}"))),
                    AttrValue::Definite(Value::str(s.clone())),
                ],
                SupportPair::certain(),
            )
            .unwrap(),
        )
        .unwrap();
        let text = write_relation(&rel);
        let back = read_relation(&text).unwrap();
        prop_assert!(back.approx_eq(&rel), "text was:\n{}", text);
    }
}
