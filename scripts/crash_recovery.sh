#!/usr/bin/env bash
# Crash-recovery harness for the durable query service.
#
# Loop (ITERATIONS defaults to 10, overridable):
#   1. boot evirel-serve --data-dir over one persistent directory;
#   2. bombard it with concurrent merge-heavy load;
#   3. kill -9 the server mid-flight (a real crash: no checkpoint, no
#      flush beyond what the write-ahead journal already fsync'd);
#   4. restart on the same directory and assert recovery:
#      - the server boots (manifest + journal replay succeeded),
#      - the committed generation never goes backwards,
#      - every binding STATS reports durable is actually queryable.
# Finally: one clean SHUTDOWN must truncate the journal (checkpoint),
# and the checkpointed directory must boot again.
#
# Each iteration uses its own port: a kill -9'd listener can leave
# TIME_WAIT sockets that would make an immediate same-port rebind
# flaky.
set -euo pipefail

BIN_DIR=${BIN_DIR:-target/release}
BASE_PORT=${BASE_PORT:-4710}
ITERATIONS=${ITERATIONS:-10}
DATA_DIR=$(mktemp -d -t evirel-crash-XXXXXX)
SERVE_PID=""
trap 'kill -9 $SERVE_PID 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

boot() { # $1 = port
  ADDR="127.0.0.1:$1"
  "$BIN_DIR/evirel-serve" --addr "$ADDR" --data-dir "$DATA_DIR" --seed-workload 64 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    if "$BIN_DIR/evirel-bombard" --addr "$ADDR" --request PING >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FATAL: server did not come up on $ADDR" >&2
  exit 1
}

stat_value() { # $1 = stats text, $2 = key
  printf '%s\n' "$1" | tr ' ' '\n' | grep "^$2=" | cut -d= -f2
}

last_gen=0
port=$BASE_PORT
for i in $(seq 1 "$ITERATIONS"); do
  boot "$port"
  "$BIN_DIR/evirel-bombard" --addr "$ADDR" --sessions 8 --ops 50 --merge-every 2 \
    >/dev/null 2>&1 &
  LOAD_PID=$!
  sleep 0.4
  kill -9 "$SERVE_PID"
  wait "$LOAD_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true

  port=$((port + 1))
  boot "$port"
  stats=$("$BIN_DIR/evirel-bombard" --addr "$ADDR" --request STATS)
  gen=$(stat_value "$stats" generation_committed)
  bindings=$(stat_value "$stats" bindings)
  if [ "$gen" -lt "$last_gen" ]; then
    echo "FATAL: iteration $i: committed generation went backwards ($last_gen -> $gen)" >&2
    exit 1
  fi
  # Every durable binding must serve queries after recovery. The load
  # driver merges into m0..m7; count how many answer and compare with
  # the durability line's binding count.
  queryable=0
  for t in 0 1 2 3 4 5 6 7; do
    if "$BIN_DIR/evirel-bombard" --addr "$ADDR" \
      --request "QUERY\nSELECT * FROM m$t WITH SN > 0" >/dev/null 2>&1; then
      queryable=$((queryable + 1))
    fi
  done
  if [ "$queryable" -ne "$bindings" ]; then
    echo "FATAL: iteration $i: $bindings durable binding(s) but $queryable queryable" >&2
    exit 1
  fi
  echo "crash-recovery: iteration $i recovered generation $gen, $bindings binding(s), all queryable"
  last_gen=$gen
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true
  port=$((port + 1))
done

# Clean shutdown checkpoints: journal truncated to its 8-byte header,
# and the checkpointed directory boots again at (at least) the same
# generation.
boot "$port"
"$BIN_DIR/evirel-bombard" --addr "$ADDR" --request SHUTDOWN >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
journal_len=$(wc -c <"$DATA_DIR/journal.evj")
if [ "$journal_len" -ne 8 ]; then
  echo "FATAL: clean shutdown left $journal_len journal bytes (checkpoint missing?)" >&2
  exit 1
fi
boot $((port + 1))
stats=$("$BIN_DIR/evirel-bombard" --addr "$ADDR" --request STATS)
gen=$(stat_value "$stats" generation_committed)
if [ "$gen" -lt "$last_gen" ]; then
  echo "FATAL: post-checkpoint boot regressed the generation ($last_gen -> $gen)" >&2
  exit 1
fi
"$BIN_DIR/evirel-bombard" --addr "$ADDR" --request SHUTDOWN >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "crash-recovery: $ITERATIONS kill -9 iteration(s) all recovered; final generation $gen"
