#!/usr/bin/env bash
# Observability check for the query service.
#
# Boots a release evirel-serve with EVIREL_SLOW_QUERY_MS=0 (every
# query emits a structured slow_query event to stderr), drives a
# concurrent bombard load while scraping METRICS mid-flight, lets the
# load drain, and asserts on the post-drain scrape:
#
#   1. the exposition is self-describing (`# TYPE` lines for the
#      serve / query / store / replication families);
#   2. the server-side per-verb request counters agree EXACTLY with
#      the ops the driver reports as succeeded — no request is lost
#      or double-counted under 4-worker concurrency (BUSY rejects are
#      written by the accept thread, so they never skew the per-verb
#      counters; give-ups just shrink both sides equally);
#   3. the error/panic counters read zero;
#   4. the stderr slow-query log captured the load's queries with
#      per-stage span timings (parse/execute) and the normalized EQL.
set -euo pipefail

BIN_DIR=${BIN_DIR:-target/release}
PORT=${PORT:-4730}
SESSIONS=${SESSIONS:-32}
OPS=${OPS:-16}
ADDR="127.0.0.1:$PORT"
LOG_DIR=$(mktemp -d -t evirel-metrics-XXXXXX)
SERVE_PID=""
trap 'kill -9 $SERVE_PID 2>/dev/null || true; rm -rf "$LOG_DIR"' EXIT

fail() {
  echo "FATAL: $*" >&2
  exit 1
}

# One exact series value out of a Prometheus text exposition.
# $1 = exposition file, $2 = series name (labels included, no space)
series() {
  awk -v name="$2" '$1 == name { print $2; found = 1 } END { if (!found) print "MISSING" }' "$1"
}

EVIREL_SLOW_QUERY_MS=0 "$BIN_DIR/evirel-serve" \
  --addr "$ADDR" --workers 4 --max-pending 256 --seed-workload 200 \
  2>"$LOG_DIR/serve.stderr" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$BIN_DIR/evirel-bombard" --addr "$ADDR" --request PING >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

"$BIN_DIR/evirel-bombard" --addr "$ADDR" --sessions "$SESSIONS" --ops "$OPS" \
  --merge-every 4 >"$LOG_DIR/bombard.out" 2>&1 &
LOAD_PID=$!

# Mid-load scrape: the endpoint must answer while workers are busy,
# and the snapshot must already be self-describing.
sleep 0.2
"$BIN_DIR/evirel-bombard" --addr "$ADDR" --request METRICS >"$LOG_DIR/mid.prom" \
  || fail "METRICS scrape failed mid-load"
grep -q '^# TYPE evirel_serve_requests_total counter' "$LOG_DIR/mid.prom" \
  || fail "mid-load scrape is not self-describing"

wait "$LOAD_PID" || fail "bombard run reported errors: $(cat "$LOG_DIR/bombard.out")"
"$BIN_DIR/evirel-bombard" --addr "$ADDR" --request METRICS >"$LOG_DIR/final.prom" \
  || fail "METRICS scrape failed post-drain"

# --- 1. self-describing exposition, one family per subsystem -------
for family in \
  'evirel_serve_requests_total counter' \
  'evirel_serve_request_seconds histogram' \
  'evirel_serve_queue_depth gauge' \
  'evirel_query_cache_hits_total counter' \
  'evirel_query_seconds histogram' \
  'evirel_store_pool_hits_total counter' \
  'evirel_repl_generation_lag gauge'; do
  grep -q "^# TYPE $family\$" "$LOG_DIR/final.prom" \
    || fail "missing '# TYPE $family' in the exposition"
done

# --- 2. per-verb totals == what the driver says succeeded ----------
driver_ok=$(grep -o 'ok=[0-9]*' "$LOG_DIR/bombard.out" | cut -d= -f2)
driver_merges=$(grep -o 'merges=[0-9]*' "$LOG_DIR/bombard.out" | cut -d= -f2)
queries=$(series "$LOG_DIR/final.prom" 'evirel_serve_requests_total{verb="query"}')
merges=$(series "$LOG_DIR/final.prom" 'evirel_serve_requests_total{verb="merge"}')
[ "$((queries + merges))" -eq "$driver_ok" ] \
  || fail "scraped query+merge = $queries+$merges != driver ok=$driver_ok"
[ "$merges" -eq "$driver_merges" ] \
  || fail "scraped merge count $merges != driver merges=$driver_merges"
echo "metrics_check: per-verb totals match the driver ($queries query + $merges merge = $driver_ok ops)"

# --- 3. zero errors, zero panics -----------------------------------
for zero in evirel_serve_request_errors_total evirel_serve_panics_total; do
  val=$(series "$LOG_DIR/final.prom" "$zero")
  [ "$val" = "0" ] || fail "$zero = $val, expected 0"
done

# --- 4. the slow-query log saw the load ----------------------------
grep -q 'event=slow_query' "$LOG_DIR/serve.stderr" \
  || fail "no slow_query events on server stderr despite EVIREL_SLOW_QUERY_MS=0"
slow=$(grep -c 'event=slow_query' "$LOG_DIR/serve.stderr")
grep -q 'parse_us=' "$LOG_DIR/serve.stderr" \
  || fail "slow_query events carry no per-stage parse span"
grep -q 'execute_us=' "$LOG_DIR/serve.stderr" \
  || fail "slow_query events carry no per-stage execute span"
grep -q 'eql="SELECT' "$LOG_DIR/serve.stderr" \
  || fail "slow_query events carry no normalized EQL"
echo "metrics_check: $slow slow_query event(s) with per-stage spans on stderr"

"$BIN_DIR/evirel-bombard" --addr "$ADDR" --request SHUTDOWN >/dev/null \
  || fail "clean shutdown refused"
wait "$SERVE_PID" || fail "server exited nonzero"
echo "metrics_check: PASS"
