#!/usr/bin/env bash
# Failover drill for the replicated query service.
#
# Topology: one durable primary, one durable follower subscribed via
# `--follow`. The drill:
#   1. boot both; drive a mixed read/write load with the read half
#      routed to the follower (`evirel-bombard --read-addr`) — the
#      split must finish with zero protocol and zero server errors,
#      which also proves the follower's readonly gate never leaks a
#      write;
#   2. quiesce: send one sentinel MERGE to the primary, then poll the
#      follower until its committed generation catches the primary's
#      (replication is asynchronous — a committed-but-unreplicated
#      suffix is lost on primary death, so the drill pins down the
#      durable prefix first);
#   3. kill -9 the primary (a real crash: no checkpoint, no goodbye
#      frame — the follower sees a torn stream);
#   4. PROMOTE the follower and assert ZERO LOST COMMITTED MERGES:
#      its committed generation equals the primary's last observed
#      one, and every merged binding answers queries;
#   5. the promoted server accepts a new MERGE (it is writable and
#      the generation advances) and shuts down cleanly.
set -euo pipefail

BIN_DIR=${BIN_DIR:-target/release}
PRIMARY_PORT=${PRIMARY_PORT:-4750}
FOLLOWER_PORT=${FOLLOWER_PORT:-4751}
PRIMARY_ADDR="127.0.0.1:$PRIMARY_PORT"
FOLLOWER_ADDR="127.0.0.1:$FOLLOWER_PORT"
PRIMARY_DATA=$(mktemp -d -t evirel-failover-p-XXXXXX)
FOLLOWER_DATA=$(mktemp -d -t evirel-failover-f-XXXXXX)
PRIMARY_PID=""
FOLLOWER_PID=""
trap 'kill -9 $PRIMARY_PID $FOLLOWER_PID 2>/dev/null || true;
      rm -rf "$PRIMARY_DATA" "$FOLLOWER_DATA"' EXIT

wait_up() { # $1 = addr
  for _ in $(seq 1 100); do
    if "$BIN_DIR/evirel-bombard" --addr "$1" --request PING >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FATAL: server did not come up on $1" >&2
  exit 1
}

stat_value() { # $1 = addr, $2 = key
  "$BIN_DIR/evirel-bombard" --addr "$1" --request STATS |
    tr ' ' '\n' | grep "^$2=" | cut -d= -f2
}

"$BIN_DIR/evirel-serve" --addr "$PRIMARY_ADDR" --data-dir "$PRIMARY_DATA" \
  --seed-workload 64 &
PRIMARY_PID=$!
wait_up "$PRIMARY_ADDR"
"$BIN_DIR/evirel-serve" --addr "$FOLLOWER_ADDR" --data-dir "$FOLLOWER_DATA" \
  --follow "$PRIMARY_ADDR" --seed-workload 64 &
FOLLOWER_PID=$!
wait_up "$FOLLOWER_ADDR"

# Mixed load, reads routed to the standby. evirel-bombard exits
# nonzero on any protocol or server error, so `set -e` makes this an
# assertion.
"$BIN_DIR/evirel-bombard" --addr "$PRIMARY_ADDR" --read-addr "$FOLLOWER_ADDR" \
  --sessions 8 --ops 50 --merge-every 2

# Quiesce: sentinel merge, then wait until the follower has applied
# everything the primary committed.
"$BIN_DIR/evirel-bombard" --addr "$PRIMARY_ADDR" \
  --request 'MERGE sentinel\nSELECT * FROM ra UNION rb' >/dev/null
committed=$(stat_value "$PRIMARY_ADDR" generation_committed)
if [ "$committed" -lt 1 ]; then
  echo "FATAL: primary committed nothing ($committed)" >&2
  exit 1
fi
applied=0
for _ in $(seq 1 200); do
  applied=$(stat_value "$FOLLOWER_ADDR" generation_committed)
  [ "$applied" -ge "$committed" ] && break
  sleep 0.1
done
if [ "$applied" -lt "$committed" ]; then
  echo "FATAL: follower stuck at generation $applied < primary $committed" >&2
  exit 1
fi
echo "failover: quiesced at generation $committed (primary == follower)"

# The crash: no checkpoint, no clean close — the follower's FOLLOW
# stream is torn mid-connection.
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

promoted=$("$BIN_DIR/evirel-bombard" --addr "$FOLLOWER_ADDR" --request PROMOTE)
echo "failover: $promoted"

# Zero lost committed merges: the promoted server holds exactly the
# generation the dead primary had committed, and every merge target
# (the load's m0..m7 plus the sentinel) still answers queries.
after=$(stat_value "$FOLLOWER_ADDR" generation_committed)
if [ "$after" -ne "$committed" ]; then
  echo "FATAL: promotion changed the committed generation ($committed -> $after)" >&2
  exit 1
fi
role=$(stat_value "$FOLLOWER_ADDR" role)
if [ "$role" != "promoted" ]; then
  echo "FATAL: expected role=promoted, got $role" >&2
  exit 1
fi
for name in m0 m1 m2 m3 m4 m5 m6 m7 sentinel; do
  if ! "$BIN_DIR/evirel-bombard" --addr "$FOLLOWER_ADDR" \
    --request "QUERY\nSELECT * FROM $name WITH SN > 0" >/dev/null; then
    echo "FATAL: replicated binding $name is not queryable after promotion" >&2
    exit 1
  fi
done

# The promoted server is writable and advances the history.
"$BIN_DIR/evirel-bombard" --addr "$FOLLOWER_ADDR" \
  --request 'MERGE post_failover\nSELECT * FROM ra UNION rb' >/dev/null
final=$(stat_value "$FOLLOWER_ADDR" generation_committed)
if [ "$final" -le "$committed" ]; then
  echo "FATAL: post-promotion merge did not advance the generation ($final)" >&2
  exit 1
fi

"$BIN_DIR/evirel-bombard" --addr "$FOLLOWER_ADDR" --request SHUTDOWN >/dev/null
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
echo "failover: promoted at generation $committed with zero lost merges;" \
  "post-failover writes reached generation $final"
