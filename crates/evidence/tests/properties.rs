//! Property-based tests for the Dempster–Shafer substrate.
//!
//! These check the algebraic laws the relational layer depends on:
//! Bel/Pls bounds, normalization preservation, commutativity and
//! quasi-associativity of Dempster's rule, De Morgan duality of focal
//! sets, and the mass-conservation property of summarization.

use evirel_evidence::{approx, combine, rules, transform, FocalSet, Frame, MassFunction};
use proptest::prelude::*;
use std::sync::Arc;

const FRAME_SIZE: usize = 8;

fn frame() -> Arc<Frame> {
    Arc::new(Frame::new("prop", (0..FRAME_SIZE).map(|i| format!("v{i}"))))
}

/// Strategy: a non-empty subset of the frame as a bitmask.
fn subset_strategy() -> impl Strategy<Value = FocalSet> {
    (1u32..(1 << FRAME_SIZE))
        .prop_map(|bits| FocalSet::from_indices((0..FRAME_SIZE).filter(|i| bits & (1 << i) != 0)))
}

/// Strategy: a valid f64 mass function with 1..=5 focal elements.
fn mass_strategy() -> impl Strategy<Value = MassFunction<f64>> {
    proptest::collection::vec((1u32..(1 << FRAME_SIZE), 1u32..1000u32), 1..=5).prop_map(|raw| {
        // Deduplicate subsets, accumulate weights, then normalize.
        use std::collections::HashMap;
        let mut acc: HashMap<u32, u64> = HashMap::new();
        for (bits, w) in raw {
            *acc.entry(bits).or_insert(0) += w as u64;
        }
        let total: u64 = acc.values().sum();
        let entries = acc.into_iter().map(|(bits, w)| {
            (
                FocalSet::from_indices((0..FRAME_SIZE).filter(|i| bits & (1 << i) != 0)),
                w as f64 / total as f64,
            )
        });
        MassFunction::from_entries(frame(), entries).expect("normalized by construction")
    })
}

proptest! {
    // Bounded so the whole suite stays well under a second; the
    // strategies above cover the 8-element frame densely even at 128.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bel_le_pls(m in mass_strategy(), s in subset_strategy()) {
        prop_assert!(m.bel(&s) <= m.pls(&s) + 1e-12);
    }

    #[test]
    fn pls_is_one_minus_bel_complement(m in mass_strategy(), s in subset_strategy()) {
        let comp = s.complement(FRAME_SIZE);
        prop_assert!((m.pls(&s) - (1.0 - m.bel(&comp))).abs() < 1e-9);
    }

    #[test]
    fn bel_monotone_under_superset(m in mass_strategy(), s in subset_strategy(), t in subset_strategy()) {
        let u = s.union(&t);
        prop_assert!(m.bel(&s) <= m.bel(&u) + 1e-12);
        prop_assert!(m.pls(&s) <= m.pls(&u) + 1e-12);
    }

    #[test]
    fn combination_preserves_normalization(a in mass_strategy(), b in mass_strategy()) {
        if let Ok(c) = combine::dempster(&a, &b) {
            let total: f64 = c.mass.iter().map(|(_, w)| *w).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!((0.0..1.0 + 1e-12).contains(&c.conflict));
        }
    }

    #[test]
    fn dempster_commutative(a in mass_strategy(), b in mass_strategy()) {
        let ab = combine::dempster(&a, &b);
        let ba = combine::dempster(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert!(x.mass.approx_eq(&y.mass));
                prop_assert!((x.conflict - y.conflict).abs() < 1e-9);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one direction conflicted, the other did not"),
        }
    }

    #[test]
    fn dempster_associative(a in mass_strategy(), b in mass_strategy(), c in mass_strategy()) {
        let left = combine::dempster(&a, &b)
            .and_then(|ab| combine::dempster(&ab.mass, &c));
        let right = combine::dempster(&b, &c)
            .and_then(|bc| combine::dempster(&a, &bc.mass));
        if let (Ok(l), Ok(r)) = (left, right) {
            for (s, w) in l.mass.iter() {
                prop_assert!((w - r.mass.mass_of(s)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn vacuous_is_neutral(a in mass_strategy()) {
        let v = MassFunction::<f64>::vacuous(frame()).unwrap();
        let c = combine::dempster(&a, &v).unwrap();
        prop_assert!(c.mass.approx_eq(&a));
        prop_assert!(c.conflict.abs() < 1e-12);
    }

    #[test]
    fn yager_and_dubois_prade_total_mass(a in mass_strategy(), b in mass_strategy()) {
        let y = rules::yager(&a, &b).unwrap();
        let total: f64 = y.iter().map(|(_, w)| *w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let dp = rules::dubois_prade(&a, &b).unwrap();
        let total: f64 = dp.iter().map(|(_, w)| *w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixing_never_conflicts(a in mass_strategy(), b in mass_strategy()) {
        let m = rules::mixing(&a, &b).unwrap();
        let total: f64 = m.iter().map(|(_, w)| *w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pignistic_is_probability(m in mass_strategy()) {
        let p = transform::pignistic(&m).unwrap();
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| *x >= -1e-12));
    }

    #[test]
    fn pignistic_within_bel_pls(m in mass_strategy()) {
        // BetP(x) lies in [Bel({x}), Pls({x})] for every element.
        let p = transform::pignistic(&m).unwrap();
        for (i, betp) in p.iter().enumerate() {
            let s = FocalSet::singleton(i);
            prop_assert!(m.bel(&s) - 1e-9 <= *betp);
            prop_assert!(*betp <= m.pls(&s) + 1e-9);
        }
    }

    #[test]
    fn summarize_conserves_mass_and_pls(m in mass_strategy(), k in 1usize..6) {
        let s = approx::summarize(&m, k).unwrap();
        prop_assert!(s.focal_count() <= k.max(m.focal_count().min(k)));
        let total: f64 = s.iter().map(|(_, w)| *w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 0..FRAME_SIZE {
            let singleton = FocalSet::singleton(i);
            prop_assert!(s.pls(&singleton) + 1e-9 >= m.pls(&singleton));
        }
    }

    #[test]
    fn mobius_roundtrips(m in mass_strategy()) {
        let rec = transform::mobius_inversion(frame(), |s| m.bel(s)).unwrap();
        for (s, w) in m.iter() {
            prop_assert!((rec.mass_of(s) - *w).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Focal-set algebra laws.
    #[test]
    fn de_morgan(s in subset_strategy(), t in subset_strategy()) {
        let lhs = s.union(&t).complement(FRAME_SIZE);
        let rhs = s.complement(FRAME_SIZE).intersect(&t.complement(FRAME_SIZE));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in subset_strategy(), b in subset_strategy(), c in subset_strategy()
    ) {
        let lhs = a.intersect(&b.union(&c));
        let rhs = a.intersect(&b).union(&a.intersect(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn subset_iff_intersection_is_self(s in subset_strategy(), t in subset_strategy()) {
        prop_assert_eq!(s.is_subset_of(&t), s.intersect(&t) == s);
    }

    #[test]
    fn iter_roundtrip(s in subset_strategy()) {
        let rebuilt = FocalSet::from_indices(s.iter());
        prop_assert_eq!(rebuilt, s.clone());
        prop_assert_eq!(s.iter().count(), s.len());
    }
}
