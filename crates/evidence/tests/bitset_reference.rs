//! Equivalence suite: the optimized bitset combination engine and the
//! Bel/Pls/Q measures against the retained `BTreeSet` reference
//! implementation (`evirel_evidence::reference`), over random frames —
//! including frames wider than 128 values, which exercise the
//! boxed-words `FocalSet` representation — plus exact regression
//! checks that the κ (conflict) values printed in the paper's tables
//! are unchanged by the rework.

use evirel_evidence::reference::{self, RefMass, RefSet};
use evirel_evidence::{combine, FocalSet, Frame, MassFunction, Ratio};
use proptest::prelude::*;
use std::sync::Arc;

/// 8 values: every focal set is inline, singleton fast path reachable.
const NARROW: usize = 8;
/// 200 values: focal sets with members ≥ 128 take the boxed-words
/// representation and the combination engine's boxed fallback.
const WIDE: usize = 200;

fn frame(n: usize) -> Arc<Frame> {
    Arc::new(Frame::new("equiv", (0..n).map(|i| format!("v{i}"))))
}

/// A non-empty subset with up to 5 members drawn from the whole frame.
fn subset(n: usize) -> impl Strategy<Value = FocalSet> {
    proptest::collection::vec(0usize..n, 1..=5).prop_map(FocalSet::from_indices)
}

/// A valid mass function with 1..=6 focal elements. `singleton_only`
/// restricts focal elements to singletons so the Bayesian fast path is
/// exercised deliberately, not by luck.
fn mass(n: usize, singleton_only: bool) -> impl Strategy<Value = MassFunction<f64>> {
    let max_card = if singleton_only { 1 } else { 5 };
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..n, 1..=max_card),
            1u32..1000,
        ),
        1..=6,
    )
    .prop_map(move |raw| {
        let mut entries: Vec<(FocalSet, u64)> = Vec::new();
        for (members, w) in raw {
            let set = FocalSet::from_indices(members);
            match entries.iter_mut().find(|(s, _)| *s == set) {
                Some((_, acc)) => *acc += w as u64,
                None => entries.push((set, w as u64)),
            }
        }
        let total: u64 = entries.iter().map(|(_, w)| *w).sum();
        MassFunction::from_entries(
            frame(n),
            entries
                .into_iter()
                .map(|(s, w)| (s, w as f64 / total as f64)),
        )
        .expect("normalized by construction")
    })
}

/// Core equivalence check: optimized vs reference Dempster.
fn check_dempster_equivalence(a: &MassFunction<f64>, b: &MassFunction<f64>) -> Result<(), String> {
    let fast = combine::dempster(a, b);
    let slow = reference::dempster(a, b);
    match (fast, slow) {
        (Ok(f), Ok(s)) => {
            if !f.mass.approx_eq(&s.0) {
                return Err(format!("masses differ: fast {} vs ref {}", f.mass, s.0));
            }
            if (f.conflict - s.1).abs() > 1e-9 {
                return Err(format!("κ differs: fast {} vs ref {}", f.conflict, s.1));
            }
            Ok(())
        }
        (Err(ef), Err(es)) => {
            if ef == es {
                Ok(())
            } else {
                Err(format!("errors differ: fast {ef:?} vs ref {es:?}"))
            }
        }
        (f, s) => Err(format!("disagreement: fast {f:?} vs ref {s:?}")),
    }
}

/// Measures equivalence: Bel/Pls/Q computed by the bitset engine vs
/// the reference definitions.
fn check_measures_equivalence(m: &MassFunction<f64>, s: &FocalSet) -> Result<(), String> {
    let r = RefMass::of(m);
    let rs: RefSet = s.iter().collect();
    let pairs = [
        ("Bel", m.bel(s), r.bel(&rs).unwrap()),
        ("Pls", m.pls(s), r.pls(&rs).unwrap()),
        ("Q", m.commonality(s), r.commonality(&rs).unwrap()),
    ];
    for (name, fast, slow) in pairs {
        if (fast - slow).abs() > 1e-9 {
            return Err(format!("{name} differs: fast {fast} vs ref {slow}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn dempster_matches_reference_narrow(
        a in mass(NARROW, false), b in mass(NARROW, false)
    ) {
        prop_assert!(check_dempster_equivalence(&a, &b).is_ok(),
            "{:?}", check_dempster_equivalence(&a, &b));
    }

    #[test]
    fn dempster_matches_reference_singleton_fast_path(
        a in mass(NARROW, true), b in mass(NARROW, true)
    ) {
        prop_assert!(check_dempster_equivalence(&a, &b).is_ok(),
            "{:?}", check_dempster_equivalence(&a, &b));
    }

    #[test]
    fn dempster_matches_reference_mixed_shapes(
        a in mass(NARROW, true), b in mass(NARROW, false)
    ) {
        prop_assert!(check_dempster_equivalence(&a, &b).is_ok(),
            "{:?}", check_dempster_equivalence(&a, &b));
    }

    #[test]
    fn dempster_matches_reference_wide_frames(
        a in mass(WIDE, false), b in mass(WIDE, false)
    ) {
        prop_assert!(check_dempster_equivalence(&a, &b).is_ok(),
            "{:?}", check_dempster_equivalence(&a, &b));
    }

    #[test]
    fn dempster_matches_reference_wide_singletons(
        a in mass(WIDE, true), b in mass(WIDE, true)
    ) {
        prop_assert!(check_dempster_equivalence(&a, &b).is_ok(),
            "{:?}", check_dempster_equivalence(&a, &b));
    }

    #[test]
    fn measures_match_reference_narrow(m in mass(NARROW, false), s in subset(NARROW)) {
        prop_assert!(check_measures_equivalence(&m, &s).is_ok(),
            "{:?}", check_measures_equivalence(&m, &s));
    }

    #[test]
    fn measures_match_reference_wide(m in mass(WIDE, false), s in subset(WIDE)) {
        prop_assert!(check_measures_equivalence(&m, &s).is_ok(),
            "{:?}", check_measures_equivalence(&m, &s));
    }

    #[test]
    fn kappa_matches_reference(a in mass(NARROW, false), b in mass(NARROW, false)) {
        // combine::conflict has its own summation-only path; it must
        // agree with the κ the reference combination reports.
        let kappa = combine::conflict(&a, &b).unwrap();
        match reference::dempster(&a, &b) {
            Ok((_, ref_kappa)) => prop_assert!((kappa - ref_kappa).abs() < 1e-9),
            Err(_) => prop_assert!((kappa - 1.0).abs() < 1e-9),
        }
    }
}

// ---------------------------------------------------------------------
// Paper-table κ regressions: the printed conflict values must survive
// any rework of the combination engine.
// ---------------------------------------------------------------------

fn r(n: i128, d: i128) -> Ratio {
    Ratio::new(n, d).unwrap()
}

/// §2.2 worked example: κ = 1/8 exactly, all combined masses as
/// printed.
#[test]
fn paper_section_2_2_kappa_exact() {
    let f = Arc::new(Frame::new(
        "speciality",
        [
            "american",
            "hunan",
            "sichuan",
            "cantonese",
            "mughalai",
            "italian",
        ],
    ));
    let m1 = MassFunction::builder(Arc::clone(&f))
        .add(["cantonese"], r(1, 2))
        .unwrap()
        .add(["hunan", "sichuan"], r(1, 3))
        .unwrap()
        .add_omega(r(1, 6))
        .build()
        .unwrap();
    let m2 = MassFunction::builder(Arc::clone(&f))
        .add(["cantonese", "hunan"], r(1, 2))
        .unwrap()
        .add(["hunan"], r(1, 4))
        .unwrap()
        .add_omega(r(1, 4))
        .build()
        .unwrap();
    let c = combine::dempster(&m1, &m2).unwrap();
    assert_eq!(c.conflict, r(1, 8));
    assert_eq!(c.mass.mass_of(&f.subset(["cantonese"]).unwrap()), r(3, 7));
    assert_eq!(c.mass.mass_of(&f.subset(["hunan"]).unwrap()), r(1, 3));
    assert_eq!(c.mass.mass_of(&f.omega()), r(1, 21));
    // And the reference agrees exactly.
    let (ref_mass, ref_kappa) = reference::dempster(&m1, &m2).unwrap();
    assert_eq!(ref_mass, c.mass);
    assert_eq!(ref_kappa, c.conflict);
}

/// Table 4's garden rating row: [ex^0.33, gd^0.5, avg^0.17] ⊕
/// [ex^0.2, gd^0.8] has κ = 0.534. Both operands are Bayesian, so
/// this pins the singleton-only fast path to the printed value.
#[test]
fn paper_table4_garden_kappa() {
    let f = Arc::new(Frame::new("rating", ["avg", "gd", "ex"]));
    let m1 = MassFunction::<f64>::builder(Arc::clone(&f))
        .add(["ex"], 0.33)
        .unwrap()
        .add(["gd"], 0.5)
        .unwrap()
        .add(["avg"], 0.17)
        .unwrap()
        .build()
        .unwrap();
    let m2 = MassFunction::<f64>::builder(Arc::clone(&f))
        .add(["ex"], 0.2)
        .unwrap()
        .add(["gd"], 0.8)
        .unwrap()
        .build()
        .unwrap();
    let c = combine::dempster(&m1, &m2).unwrap();
    assert!((c.conflict - 0.534).abs() < 1e-9);
    assert!((c.mass.mass_of(&f.subset(["ex"]).unwrap()) - 0.066 / 0.466).abs() < 1e-9);
    assert!((c.mass.mass_of(&f.subset(["gd"]).unwrap()) - 0.4 / 0.466).abs() < 1e-9);
    assert!((combine::conflict(&m1, &m2).unwrap() - 0.534).abs() < 1e-9);
}

/// Table 4's mehl membership row: the paper's F over Ψ = {in, out}
/// combines (sn, sp) = (0.5, 0.5) with (0.8, 1.0) at κ = 0.4 into
/// (5/6, 5/6) ≈ (0.83, 0.83).
#[test]
fn paper_table4_membership_kappa() {
    let psi = Arc::new(Frame::new("Ψ", ["in", "out"]));
    let m1 = MassFunction::<f64>::builder(Arc::clone(&psi))
        .add(["in"], 0.5)
        .unwrap()
        .add(["out"], 0.5)
        .unwrap()
        .build()
        .unwrap();
    let m2 = MassFunction::<f64>::builder(Arc::clone(&psi))
        .add(["in"], 0.8)
        .unwrap()
        .add_omega(0.2)
        .build()
        .unwrap();
    let c = combine::dempster(&m1, &m2).unwrap();
    assert!((c.conflict - 0.4).abs() < 1e-9);
    let sn = c.mass.mass_of(&psi.subset(["in"]).unwrap());
    let sp = 1.0 - c.mass.mass_of(&psi.subset(["out"]).unwrap());
    assert!((sn - 5.0 / 6.0).abs() < 1e-9);
    assert!((sp - 5.0 / 6.0).abs() < 1e-9);
}

/// Deterministic boxed-path regression: a frame of 200 values whose
/// focal sets straddle the 128-bit inline boundary combines
/// identically in both engines.
#[test]
fn wide_frame_straddling_inline_boundary() {
    let f = frame(200);
    let m1 = MassFunction::<f64>::from_entries(
        Arc::clone(&f),
        [
            (FocalSet::from_indices([5, 127, 128]), 0.5),
            (FocalSet::from_indices([127, 128, 199]), 0.3),
            (FocalSet::full(200), 0.2),
        ],
    )
    .unwrap();
    let m2 = MassFunction::<f64>::from_entries(
        Arc::clone(&f),
        [
            (FocalSet::from_indices([5, 128]), 0.6),
            (FocalSet::from_indices([199]), 0.4),
        ],
    )
    .unwrap();
    let fast = combine::dempster(&m1, &m2).unwrap();
    let (ref_mass, ref_kappa) = reference::dempster(&m1, &m2).unwrap();
    assert!(fast.mass.approx_eq(&ref_mass));
    assert!((fast.conflict - ref_kappa).abs() < 1e-12);
}
