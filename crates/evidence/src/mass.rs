//! Mass functions (basic probability assignments) and the belief
//! functionals derived from them.

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::frame::Frame;
use crate::weight::Weight;
use std::fmt;
use std::sync::Arc;

/// A Dempster–Shafer mass function `m : 2^Ω → [0,1]` over a frame Ω,
/// satisfying `m(∅) = 0` and `Σ_A m(A) = 1` (§2.1 of the paper).
///
/// Focal elements (subsets with `m > 0`) are stored sorted by the
/// canonical [`FocalSet`] order, which makes equality, display, and
/// iteration deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct MassFunction<W: Weight> {
    frame: Arc<Frame>,
    focal: Vec<(FocalSet, W)>,
}

impl<W: Weight> MassFunction<W> {
    /// Start building a mass function over `frame`.
    pub fn builder(frame: Arc<Frame>) -> MassBuilder<W> {
        MassBuilder {
            frame,
            entries: Vec::new(),
        }
    }

    /// The *vacuous* mass function `m(Ω) = 1` — total ignorance.
    ///
    /// # Errors
    /// [`EvidenceError::EmptyFocalElement`] if the frame is empty.
    pub fn vacuous(frame: Arc<Frame>) -> Result<Self, EvidenceError> {
        let omega = frame.omega();
        if omega.is_empty() {
            return Err(EvidenceError::EmptyFocalElement);
        }
        Ok(MassFunction {
            frame,
            focal: vec![(omega, W::one())],
        })
    }

    /// The *certain* mass function `m({label}) = 1` — a definite value.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] if `label` is not in the frame.
    pub fn certain(frame: Arc<Frame>, label: &str) -> Result<Self, EvidenceError> {
        let s = frame.singleton(label)?;
        Ok(MassFunction {
            frame,
            focal: vec![(s, W::one())],
        })
    }

    /// Construct directly from `(set, mass)` pairs; validates all mass
    /// function invariants. Used by the combination rules, which
    /// produce already-aggregated maps.
    pub fn from_entries(
        frame: Arc<Frame>,
        entries: impl IntoIterator<Item = (FocalSet, W)>,
    ) -> Result<Self, EvidenceError> {
        let mut b = Self::builder(frame);
        for (set, w) in entries {
            b = b.add_set(set, w)?;
        }
        b.build()
    }

    /// Trusted constructor for the combination engine's output: the
    /// entries are known to have distinct, non-empty, in-frame focal
    /// sets and valid masses (products and quotients of valid masses),
    /// so per-entry validation and the duplicate scan are skipped —
    /// only the sort into canonical order and the normalization
    /// rescale (sub-epsilon products dropped during accumulation can
    /// leave the total within [`MassBuilder::NORMALIZE_SLACK`] of 1)
    /// are performed. Invariants are `debug_assert`ed.
    pub(crate) fn from_combination(
        frame: Arc<Frame>,
        mut focal: Vec<(FocalSet, W)>,
    ) -> Result<Self, EvidenceError> {
        focal.retain(|(_, w)| !w.is_zero());
        debug_assert!(focal
            .iter()
            .all(|(s, w)| !s.is_empty() && w.is_valid_mass()));
        let mut sum = W::zero();
        for (_, w) in &focal {
            sum = sum.add(w).expect("mass sum overflow");
        }
        if focal.is_empty() {
            return Err(EvidenceError::NotNormalized {
                sum: sum.to_string(),
            });
        }
        if !sum.approx_eq(&W::one()) {
            if (sum.to_f64() - 1.0).abs() < MassBuilder::<W>::NORMALIZE_SLACK {
                for (_, w) in &mut focal {
                    *w = w.div(&sum)?;
                }
            } else {
                return Err(EvidenceError::NotNormalized {
                    sum: sum.to_string(),
                });
            }
        }
        focal.sort_by(|(a, _), (b, _)| a.cmp(b));
        debug_assert!(focal.windows(2).all(|w| w[0].0 != w[1].0));
        Ok(MassFunction { frame, focal })
    }

    /// The frame of discernment.
    pub fn frame(&self) -> &Arc<Frame> {
        &self.frame
    }

    /// Number of focal elements.
    pub fn focal_count(&self) -> usize {
        self.focal.len()
    }

    /// Iterate over `(focal element, mass)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&FocalSet, &W)> {
        self.focal.iter().map(|(s, w)| (s, w))
    }

    /// The mass assigned to exactly `set` (zero if not focal).
    pub fn mass_of(&self, set: &FocalSet) -> W {
        match self.focal.binary_search_by(|(s, _)| s.cmp(set)) {
            Ok(i) => self.focal[i].1.clone(),
            Err(_) => W::zero(),
        }
    }

    /// Belief: `Bel(A) = Σ_{X ⊆ A} m(X)` — the minimum support
    /// committed to `A` (§2.1).
    pub fn bel(&self, set: &FocalSet) -> W {
        self.sum_where(|x| x.is_subset_of(set))
    }

    /// Plausibility: `Pls(A) = Σ_{X ∩ A ≠ ∅} m(X) = 1 − Bel(Ā)` — the
    /// degree to which the evidence fails to refute `A` (§2.1).
    pub fn pls(&self, set: &FocalSet) -> W {
        self.sum_where(|x| x.intersects(set))
    }

    /// Commonality: `Q(A) = Σ_{A ⊆ X} m(X)`.
    pub fn commonality(&self, set: &FocalSet) -> W {
        self.sum_where(|x| set.is_subset_of(x))
    }

    /// Doubt: `Dou(A) = Bel(Ā) = 1 − Pls(A)`.
    pub fn doubt(&self, set: &FocalSet) -> W {
        self.bel(&set.complement(self.frame.len()))
    }

    /// The uncertainty interval width `Pls(A) − Bel(A)`: the degree to
    /// which the evidence cannot decide between `A` and its complement.
    pub fn ignorance(&self, set: &FocalSet) -> W {
        // Pls ≥ Bel always holds, so the subtraction cannot go negative.
        self.pls(set).sub(&self.bel(set)).expect("Pls(A) >= Bel(A)")
    }

    fn sum_where(&self, mut pred: impl FnMut(&FocalSet) -> bool) -> W {
        let mut acc = W::zero();
        for (s, w) in &self.focal {
            if pred(s) {
                // Sums of masses stay within [0, 1]; rational overflow
                // cannot occur for valid mass functions.
                acc = acc.add(w).expect("mass sum overflow");
            }
        }
        acc
    }

    /// If this function represents a definite value (a single singleton
    /// focal element with mass 1), return its element index.
    pub fn as_definite(&self) -> Option<usize> {
        if self.focal.len() == 1 && self.focal[0].0.len() == 1 {
            self.focal[0].0.min_index()
        } else {
            None
        }
    }

    /// `true` when the only focal element is Ω (total ignorance).
    pub fn is_vacuous(&self) -> bool {
        self.focal.len() == 1 && self.focal[0].0.len() == self.frame.len()
    }

    /// `true` when every focal element is a singleton — i.e. the mass
    /// function is an ordinary (Bayesian) probability distribution.
    /// O(1): the focal list is sorted by cardinality first, so it is
    /// all-singleton exactly when its *last* element is one. The
    /// combination engine branches on this to take its singleton-only
    /// fast path.
    pub fn is_bayesian(&self) -> bool {
        self.focal.last().is_some_and(|(s, _)| s.len() == 1)
    }

    /// The *core*: the union of all focal elements.
    pub fn core(&self) -> FocalSet {
        self.focal
            .iter()
            .fold(FocalSet::empty(), |acc, (s, _)| acc.union(s))
    }

    /// Weighted structural equality with the representation's
    /// tolerance: same focal elements, approximately equal masses.
    pub fn approx_eq(&self, other: &MassFunction<W>) -> bool {
        self.frame == other.frame
            && self.focal.len() == other.focal.len()
            && self
                .focal
                .iter()
                .zip(other.focal.iter())
                .all(|((sa, wa), (sb, wb))| sa == sb && wa.approx_eq(wb))
    }

    /// Render in the paper's superscript notation, e.g.
    /// `[{cantonese}^1/2, {hunan, sichuan}^1/3, Ω^1/6]`. Singleton
    /// braces are dropped as in the paper: `[si^0.5, …]`.
    pub fn render(&self) -> String {
        let mut out = String::from("[");
        for (k, (s, w)) in self.focal.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            if s.len() == 1 {
                let i = s.min_index().expect("singleton has a member");
                out.push_str(self.frame.label(i).unwrap_or("?"));
            } else {
                out.push_str(&self.frame.render(s));
            }
            out.push('^');
            out.push_str(&w.to_string());
        }
        out.push(']');
        out
    }
}

impl<W: Weight> fmt::Display for MassFunction<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Incremental builder for [`MassFunction`]; validates every invariant
/// at [`MassBuilder::build`] time.
#[derive(Debug, Clone)]
pub struct MassBuilder<W: Weight> {
    frame: Arc<Frame>,
    entries: Vec<(FocalSet, W)>,
}

impl<W: Weight> MassBuilder<W> {
    /// Assign `mass` to the subset named by `labels`.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] for labels outside the frame.
    pub fn add<I, L>(self, labels: I, mass: W) -> Result<Self, EvidenceError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<str>,
    {
        let set = self.frame.subset(labels)?;
        self.add_set(set, mass)
    }

    /// Assign `mass` to an already-constructed focal set.
    ///
    /// # Errors
    /// [`EvidenceError::IndexOutOfBounds`] if the set has members
    /// outside the frame.
    pub fn add_set(mut self, set: FocalSet, mass: W) -> Result<Self, EvidenceError> {
        if let Some(max) = set.max_index() {
            if max >= self.frame.len() {
                return Err(EvidenceError::IndexOutOfBounds {
                    index: max,
                    frame_size: self.frame.len(),
                });
            }
        }
        self.entries.push((set, mass));
        Ok(self)
    }

    /// Assign `mass` to Ω — the paper's "nonbelief" remainder.
    pub fn add_omega(mut self, mass: W) -> Self {
        let omega = self.frame.omega();
        self.entries.push((omega, mass));
        self
    }

    /// Assign whatever mass remains (to reach a total of 1) to Ω.
    /// A no-op if the entries already sum to 1.
    ///
    /// # Errors
    /// [`EvidenceError::NotNormalized`] if the entries already exceed 1.
    pub fn fill_omega(self) -> Result<Self, EvidenceError> {
        let mut sum = W::zero();
        for (_, w) in &self.entries {
            sum = sum.add(w).expect("mass sum overflow");
        }
        if sum > W::one() && !sum.approx_eq(&W::one()) {
            return Err(EvidenceError::NotNormalized {
                sum: sum.to_string(),
            });
        }
        let rest = W::one().sub(&sum).expect("sum <= 1");
        if rest.is_zero() {
            Ok(self)
        } else {
            Ok(self.add_omega(rest))
        }
    }

    /// Slack within which a slightly-off total is silently rescaled to
    /// 1 rather than rejected. Long Dempster chains drop many
    /// sub-epsilon focal masses (each below the `f64` zero tolerance),
    /// and the removed mass can add up to well above the equality
    /// tolerance while still being numerically negligible; genuine
    /// normalization bugs miss by whole focal masses and still error.
    pub const NORMALIZE_SLACK: f64 = 1e-6;

    /// Validate and produce the mass function.
    ///
    /// Totals within [`MassBuilder::NORMALIZE_SLACK`] of 1 are rescaled
    /// exactly to 1 (compensating for dropped negligible masses in
    /// long combination chains); anything farther off is rejected.
    ///
    /// # Errors
    /// * [`EvidenceError::EmptyFocalElement`] — a focal element was ∅;
    /// * [`EvidenceError::InvalidMass`] — non-finite or negative mass;
    /// * [`EvidenceError::DuplicateFocalElement`] — the same subset
    ///   appeared twice;
    /// * [`EvidenceError::NotNormalized`] — masses do not sum to 1.
    pub fn build(self) -> Result<MassFunction<W>, EvidenceError> {
        let mut focal: Vec<(FocalSet, W)> = Vec::with_capacity(self.entries.len());
        let mut sum = W::zero();
        for (set, w) in self.entries {
            if !w.is_valid_mass() {
                return Err(EvidenceError::InvalidMass {
                    mass: w.to_string(),
                });
            }
            if w.is_zero() {
                // Zero-mass entries are simply not focal; drop them.
                continue;
            }
            if set.is_empty() {
                return Err(EvidenceError::EmptyFocalElement);
            }
            sum = sum.add(&w).expect("mass sum overflow");
            focal.push((set, w));
        }
        if focal.is_empty() {
            return Err(EvidenceError::NotNormalized {
                sum: sum.to_string(),
            });
        }
        if !sum.approx_eq(&W::one()) {
            if (sum.to_f64() - 1.0).abs() < Self::NORMALIZE_SLACK {
                for (_, w) in &mut focal {
                    *w = w.div(&sum)?;
                }
            } else {
                return Err(EvidenceError::NotNormalized {
                    sum: sum.to_string(),
                });
            }
        }
        focal.sort_by(|(a, _), (b, _)| a.cmp(b));
        if focal.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(EvidenceError::DuplicateFocalElement);
        }
        Ok(MassFunction {
            frame: self.frame,
            focal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;

    fn speciality() -> Arc<Frame> {
        Arc::new(Frame::new(
            "speciality",
            [
                "american",
                "hunan",
                "sichuan",
                "cantonese",
                "mughalai",
                "italian",
            ],
        ))
    }

    /// The paper's §2.1 evidence set ES1 for restaurant `wok`:
    /// m({cantonese}) = 1/2, m({hunan, sichuan}) = 1/3, m(Ω) = 1/6.
    fn es1() -> MassFunction<Ratio> {
        MassFunction::<Ratio>::builder(speciality())
            .add(["cantonese"], Ratio::new(1, 2).unwrap())
            .unwrap()
            .add(["hunan", "sichuan"], Ratio::new(1, 3).unwrap())
            .unwrap()
            .add_omega(Ratio::new(1, 6).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn paper_belief_example() {
        // Bel({cantonese, hunan, sichuan}) = 5/6 (§2.1).
        let m = es1();
        let chs = m.frame().subset(["cantonese", "hunan", "sichuan"]).unwrap();
        assert_eq!(m.bel(&chs), Ratio::new(5, 6).unwrap());
    }

    #[test]
    fn paper_plausibility_example() {
        // Pls({cantonese, hunan, sichuan}) = 1 (§2.1).
        let m = es1();
        let chs = m.frame().subset(["cantonese", "hunan", "sichuan"]).unwrap();
        assert_eq!(m.pls(&chs), Ratio::ONE);
        // And Bel <= Pls with the gap being the Ω mass here.
        assert_eq!(m.ignorance(&chs), Ratio::new(1, 6).unwrap());
    }

    #[test]
    fn mass_independent_of_set_size() {
        // §2.1: m({cantonese}) > m({cantonese, hunan}) since the latter
        // is not focal.
        let m = es1();
        let ca = m.frame().subset(["cantonese"]).unwrap();
        let cahu = m.frame().subset(["cantonese", "hunan"]).unwrap();
        assert!(m.mass_of(&ca) > m.mass_of(&cahu));
        assert_eq!(m.mass_of(&cahu), Ratio::ZERO);
    }

    #[test]
    fn normalization_enforced() {
        let half = Ratio::new(1, 2).unwrap();
        let err = MassFunction::<Ratio>::builder(speciality())
            .add(["hunan"], half)
            .unwrap()
            .build();
        assert!(matches!(err, Err(EvidenceError::NotNormalized { .. })));
    }

    #[test]
    fn empty_focal_rejected() {
        let err = MassFunction::<f64>::builder(speciality())
            .add(Vec::<&str>::new(), 1.0)
            .unwrap()
            .build();
        assert_eq!(err, Err(EvidenceError::EmptyFocalElement));
    }

    #[test]
    fn duplicate_focal_rejected() {
        let err = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 0.5)
            .unwrap()
            .add(["hunan"], 0.5)
            .unwrap()
            .build();
        assert_eq!(err, Err(EvidenceError::DuplicateFocalElement));
    }

    #[test]
    fn invalid_mass_rejected() {
        let err = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], -0.5)
            .unwrap()
            .build();
        assert!(matches!(err, Err(EvidenceError::InvalidMass { .. })));
        let err = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], f64::NAN)
            .unwrap()
            .build();
        assert!(matches!(err, Err(EvidenceError::InvalidMass { .. })));
    }

    #[test]
    fn zero_mass_entries_dropped() {
        let m = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 1.0)
            .unwrap()
            .add(["sichuan"], 0.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(m.focal_count(), 1);
    }

    #[test]
    fn fill_omega() {
        let m = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 0.4)
            .unwrap()
            .fill_omega()
            .unwrap()
            .build()
            .unwrap();
        assert!(m.mass_of(&m.frame().omega()).approx_eq(&0.6));
        // Exactly-1 case: fill_omega is a no-op.
        let m = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 1.0)
            .unwrap()
            .fill_omega()
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(m.focal_count(), 1);
        // Over-1 case errors.
        let err = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 1.5)
            .unwrap()
            .fill_omega();
        assert!(matches!(err, Err(EvidenceError::NotNormalized { .. })));
    }

    #[test]
    fn vacuous_and_certain() {
        let v = MassFunction::<f64>::vacuous(speciality()).unwrap();
        assert!(v.is_vacuous());
        assert!(v.as_definite().is_none());
        let c = MassFunction::<f64>::certain(speciality(), "italian").unwrap();
        assert_eq!(c.as_definite(), Some(5));
        assert!(c.is_bayesian());
        assert!(!v.is_bayesian());
        assert!(MassFunction::<f64>::certain(speciality(), "thai").is_err());
        let empty = Arc::new(Frame::new("none", Vec::<String>::new()));
        assert!(MassFunction::<f64>::vacuous(empty).is_err());
    }

    #[test]
    fn commonality_and_doubt() {
        let m = es1();
        let hu = m.frame().subset(["hunan"]).unwrap();
        // Q({hunan}) = m({hunan,sichuan}) + m(Ω) = 1/2.
        assert_eq!(m.commonality(&hu), Ratio::new(1, 2).unwrap());
        // Dou({hunan}) = Bel(complement) = m({cantonese}) = 1/2.
        assert_eq!(m.doubt(&hu), Ratio::new(1, 2).unwrap());
    }

    #[test]
    fn core_is_union_of_focals() {
        let m = es1();
        assert_eq!(m.core(), m.frame().omega());
        let c = MassFunction::<f64>::certain(speciality(), "hunan").unwrap();
        assert_eq!(c.core(), FocalSet::singleton(1));
    }

    #[test]
    fn render_matches_paper_notation() {
        let m = es1();
        assert_eq!(m.render(), "[cantonese^1/2, {hunan, sichuan}^1/3, Ω^1/6]");
    }

    #[test]
    fn builder_rejects_out_of_frame_set() {
        let b = MassFunction::<f64>::builder(speciality());
        let err = b.add_set(FocalSet::singleton(17), 1.0);
        assert!(matches!(err, Err(EvidenceError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn bel_pls_bounds() {
        let m = es1();
        let sets = [
            m.frame().subset(["cantonese"]).unwrap(),
            m.frame().subset(["hunan", "italian"]).unwrap(),
            m.frame().omega(),
        ];
        for s in &sets {
            assert!(m.bel(s) <= m.pls(s));
        }
        assert_eq!(m.bel(&m.frame().omega()), Ratio::ONE);
        assert_eq!(m.pls(&m.frame().omega()), Ratio::ONE);
        assert_eq!(m.bel(&FocalSet::empty()), Ratio::ZERO);
        assert_eq!(m.pls(&FocalSet::empty()), Ratio::ZERO);
    }
}
