//! Error types for the evidence substrate.

use std::fmt;

/// Errors produced while constructing or combining evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum EvidenceError {
    /// A label was not found in the frame of discernment.
    UnknownLabel {
        /// The offending label.
        label: String,
        /// The frame in which the lookup happened.
        frame: String,
    },
    /// An element index was outside the frame.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of elements in the frame.
        frame_size: usize,
    },
    /// A focal element was the empty set; mass functions require `m(∅) = 0`.
    EmptyFocalElement,
    /// A focal element was assigned a non-positive or non-finite mass.
    InvalidMass {
        /// Human-readable rendering of the offending mass value.
        mass: String,
    },
    /// The masses of a function did not sum to 1.
    NotNormalized {
        /// Human-readable rendering of the actual sum.
        sum: String,
    },
    /// The same focal element was assigned mass twice.
    DuplicateFocalElement,
    /// Two mass functions over different frames cannot be combined or compared.
    FrameMismatch {
        /// Name of the left frame.
        left: String,
        /// Name of the right frame.
        right: String,
    },
    /// Dempster's rule is undefined when the sources are in total
    /// conflict (κ = 1). The paper (§2.2) requires this situation to be
    /// reported to the data administrators rather than silently resolved.
    TotalConflict,
    /// Rational arithmetic overflowed `i128`.
    RatioOverflow,
    /// Division by zero in rational arithmetic.
    RatioDivisionByZero,
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownLabel { label, frame } => {
                write!(f, "label {label:?} is not an element of frame {frame:?}")
            }
            Self::IndexOutOfBounds { index, frame_size } => {
                write!(
                    f,
                    "element index {index} out of bounds for frame of size {frame_size}"
                )
            }
            Self::EmptyFocalElement => {
                write!(
                    f,
                    "the empty set cannot be a focal element (m(∅) must be 0)"
                )
            }
            Self::InvalidMass { mass } => {
                write!(f, "focal elements require positive finite mass, got {mass}")
            }
            Self::NotNormalized { sum } => {
                write!(f, "mass function does not sum to 1 (sum = {sum})")
            }
            Self::DuplicateFocalElement => {
                write!(f, "duplicate focal element in mass assignment")
            }
            Self::FrameMismatch { left, right } => {
                write!(f, "cannot operate across frames {left:?} and {right:?}")
            }
            Self::TotalConflict => {
                write!(
                    f,
                    "total conflict (κ = 1): sources share no common focal element"
                )
            }
            Self::RatioOverflow => write!(f, "rational arithmetic overflow"),
            Self::RatioDivisionByZero => write!(f, "rational division by zero"),
        }
    }
}

impl std::error::Error for EvidenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(EvidenceError, &str)> = vec![
            (
                EvidenceError::UnknownLabel {
                    label: "x".into(),
                    frame: "f".into(),
                },
                "not an element",
            ),
            (
                EvidenceError::IndexOutOfBounds {
                    index: 9,
                    frame_size: 3,
                },
                "out of bounds",
            ),
            (EvidenceError::EmptyFocalElement, "empty set"),
            (EvidenceError::InvalidMass { mass: "-1".into() }, "positive"),
            (EvidenceError::NotNormalized { sum: "0.5".into() }, "sum"),
            (EvidenceError::DuplicateFocalElement, "duplicate"),
            (
                EvidenceError::FrameMismatch {
                    left: "a".into(),
                    right: "b".into(),
                },
                "across frames",
            ),
            (EvidenceError::TotalConflict, "κ = 1"),
            (EvidenceError::RatioOverflow, "overflow"),
            (EvidenceError::RatioDivisionByZero, "division by zero"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(EvidenceError::TotalConflict, EvidenceError::TotalConflict);
        assert_ne!(
            EvidenceError::TotalConflict,
            EvidenceError::EmptyFocalElement
        );
    }
}
