//! Decision-making transforms from mass functions to point
//! probabilities, and the Möbius inversion back from belief to mass.
//!
//! Query answers in the integrated database are support *intervals*
//! `(sn, sp)`; when a downstream consumer needs a single number per
//! domain value (ranking restaurants by their most probable rating,
//! say), the standard tools are the pignistic and plausibility
//! transforms.

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::frame::Frame;
use crate::mass::MassFunction;
use crate::weight::Weight;
use std::sync::Arc;

/// The pignistic transform `BetP(x) = Σ_{x ∈ A} m(A) / |A|` — each
/// focal element's mass is shared equally among its members (Smets).
///
/// Returns one probability per frame element, indexed by element.
pub fn pignistic<W: Weight>(m: &MassFunction<W>) -> Result<Vec<W>, EvidenceError> {
    let n = m.frame().len();
    let mut out = vec![W::zero(); n];
    for (set, w) in m.iter() {
        let card = set.len() as u32;
        let share = w.div(&W::from_ratio(card, 1))?;
        for i in set.iter() {
            out[i] = out[i].add(&share)?;
        }
    }
    Ok(out)
}

/// The (normalized) plausibility transform
/// `PlP(x) = Pls({x}) / Σ_y Pls({y})`.
pub fn plausibility_transform<W: Weight>(m: &MassFunction<W>) -> Result<Vec<W>, EvidenceError> {
    let n = m.frame().len();
    let mut pls: Vec<W> = Vec::with_capacity(n);
    let mut total = W::zero();
    for i in 0..n {
        let p = m.pls(&FocalSet::singleton(i));
        total = total.add(&p)?;
        pls.push(p);
    }
    if total.is_zero() {
        return Err(EvidenceError::NotNormalized {
            sum: total.to_string(),
        });
    }
    pls.iter().map(|p| p.div(&total)).collect()
}

/// The element with maximal pignistic probability (ties broken by the
/// lowest element index, which is deterministic).
pub fn max_pignistic<W: Weight>(m: &MassFunction<W>) -> Result<usize, EvidenceError> {
    let probs = pignistic(m)?;
    let mut best = 0usize;
    for (i, p) in probs.iter().enumerate() {
        if *p > probs[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Möbius inversion: recover the mass function from belief values.
///
/// `m(A) = Σ_{B ⊆ A} (−1)^{|A\B|} Bel(B)` over all `A ⊆ Ω`. This is
/// exponential in |Ω| and exists for completeness / verification of
/// small frames (≤ [`MOBIUS_MAX_FRAME`] elements).
pub const MOBIUS_MAX_FRAME: usize = 20;

/// Reconstruct a mass function from a belief oracle.
///
/// # Errors
/// * [`EvidenceError::IndexOutOfBounds`] if the frame exceeds
///   [`MOBIUS_MAX_FRAME`] elements;
/// * [`EvidenceError::NotNormalized`] if the oracle is not a valid
///   belief function.
pub fn mobius_inversion<W: Weight>(
    frame: Arc<Frame>,
    bel: impl Fn(&FocalSet) -> W,
) -> Result<MassFunction<W>, EvidenceError> {
    let n = frame.len();
    if n > MOBIUS_MAX_FRAME {
        return Err(EvidenceError::IndexOutOfBounds {
            index: n,
            frame_size: MOBIUS_MAX_FRAME,
        });
    }
    let mut entries: Vec<(FocalSet, W)> = Vec::new();
    // Enumerate subsets as bit patterns of an n-bit integer.
    for a_bits in 1u32..(1u32 << n) {
        let mut m_a = W::zero();
        let mut negative = W::zero();
        // Enumerate subsets b of a.
        let mut b_bits = a_bits;
        loop {
            let diff = (a_bits ^ b_bits).count_ones();
            let b_set = FocalSet::from_indices((0..n).filter(|i| b_bits & (1 << i) != 0));
            let term = bel(&b_set);
            if diff % 2 == 0 {
                m_a = m_a.add(&term)?;
            } else {
                negative = negative.add(&term)?;
            }
            if b_bits == 0 {
                break;
            }
            b_bits = (b_bits - 1) & a_bits;
        }
        if m_a < negative {
            // Negative Möbius mass: not a belief function of a valid
            // mass assignment (within tolerance).
            let deficit = negative.sub(&m_a)?;
            if !deficit.is_zero() {
                return Err(EvidenceError::NotNormalized {
                    sum: deficit.to_string(),
                });
            }
            continue;
        }
        let mass = m_a.sub(&negative)?;
        if !mass.is_zero() {
            entries.push((
                FocalSet::from_indices((0..n).filter(|i| a_bits & (1 << i) != 0)),
                mass,
            ));
        }
    }
    MassFunction::from_entries(frame, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c"]))
    }

    fn es1() -> MassFunction<Ratio> {
        // m({a}) = 1/2, m({b,c}) = 1/3, m(Ω) = 1/6
        MassFunction::builder(frame())
            .add(["a"], Ratio::new(1, 2).unwrap())
            .unwrap()
            .add(["b", "c"], Ratio::new(1, 3).unwrap())
            .unwrap()
            .add_omega(Ratio::new(1, 6).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn pignistic_shares_mass() {
        let p = pignistic(&es1()).unwrap();
        // a: 1/2 + 1/18 = 5/9; b: 1/6 + 1/18 = 2/9; c: 2/9.
        assert_eq!(p[0], Ratio::new(5, 9).unwrap());
        assert_eq!(p[1], Ratio::new(2, 9).unwrap());
        assert_eq!(p[2], Ratio::new(2, 9).unwrap());
        let sum = p
            .iter()
            .fold(Ratio::ZERO, |acc, x| acc.checked_add(x).unwrap());
        assert_eq!(sum, Ratio::ONE);
    }

    #[test]
    fn pignistic_of_bayesian_is_identity() {
        let m = MassFunction::<f64>::builder(frame())
            .add(["a"], 0.2)
            .unwrap()
            .add(["b"], 0.3)
            .unwrap()
            .add(["c"], 0.5)
            .unwrap()
            .build()
            .unwrap();
        let p = pignistic(&m).unwrap();
        assert!(p[0].approx_eq(&0.2) && p[1].approx_eq(&0.3) && p[2].approx_eq(&0.5));
    }

    #[test]
    fn plausibility_transform_normalizes() {
        let p = plausibility_transform(&es1()).unwrap();
        let sum = p
            .iter()
            .fold(Ratio::ZERO, |acc, x| acc.checked_add(x).unwrap());
        assert_eq!(sum, Ratio::ONE);
        // Pls({a}) = 1/2 + 1/6 = 2/3; Pls({b}) = Pls({c}) = 1/3 + 1/6 = 1/2.
        // Total 5/3 → a: 2/5, b: 3/10, c: 3/10.
        assert_eq!(p[0], Ratio::new(2, 5).unwrap());
        assert_eq!(p[1], Ratio::new(3, 10).unwrap());
    }

    #[test]
    fn max_pignistic_picks_argmax() {
        assert_eq!(max_pignistic(&es1()).unwrap(), 0);
        let v = MassFunction::<Ratio>::vacuous(frame()).unwrap();
        // Uniform: ties break to lowest index.
        assert_eq!(max_pignistic(&v).unwrap(), 0);
    }

    #[test]
    fn mobius_roundtrip() {
        let m = es1();
        let recovered = mobius_inversion(frame(), |s| m.bel(s)).unwrap();
        assert_eq!(recovered, m);
    }

    #[test]
    fn mobius_roundtrip_f64() {
        let m = MassFunction::<f64>::builder(frame())
            .add(["a", "b"], 0.7)
            .unwrap()
            .add(["c"], 0.1)
            .unwrap()
            .add_omega(0.2)
            .build()
            .unwrap();
        let recovered = mobius_inversion(frame(), |s| m.bel(s)).unwrap();
        assert!(recovered.approx_eq(&m));
    }

    #[test]
    fn mobius_rejects_large_frames() {
        let big = Arc::new(Frame::new("big", (0..25).map(|i| i.to_string())));
        let m = MassFunction::<f64>::vacuous(Arc::clone(&big)).unwrap();
        assert!(mobius_inversion(big, |s| m.bel(s)).is_err());
    }
}
