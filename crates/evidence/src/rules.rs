//! Alternative combination rules.
//!
//! The paper commits to Dempster's rule (and our extended union does
//! too), but the choice of rule is a known design axis in evidential
//! reasoning: Dempster's normalization can behave counter-intuitively
//! under high conflict (Zadeh's paradox). To support the ablation
//! benchmarks called out in DESIGN.md, this module provides the three
//! classical alternatives:
//!
//! * **Yager's rule** — conflict mass is moved to Ω (ignorance)
//!   instead of being normalized away;
//! * **Dubois–Prade's rule** — the product mass of disjoint focal
//!   pairs `X ∩ Y = ∅` is assigned to the *union* `X ∪ Y`;
//! * **Mixing (averaging)** — the arithmetic mean of the two mass
//!   functions; no interaction, never conflicts.
//!
//! All rules share frame-checking and the conjunctive core with
//! [`crate::combine`].

use crate::combine::conjunctive_raw;
use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::mass::MassFunction;
use crate::weight::Weight;
use std::collections::HashMap;

/// Which combination rule to use — the ablation switch used by the
/// extended union and the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CombinationRule {
    /// Dempster's rule with normalization by `1 − κ` (the paper's
    /// choice).
    #[default]
    Dempster,
    /// Yager's rule: conflict mass accrues to Ω.
    Yager,
    /// Dubois–Prade: disjoint products accrue to the union of the pair.
    DuboisPrade,
    /// Mixing: pointwise average of the two assignments.
    Mixing,
}

impl CombinationRule {
    /// Apply the rule.
    ///
    /// # Errors
    /// * [`EvidenceError::FrameMismatch`] if the frames differ;
    /// * [`EvidenceError::TotalConflict`] only for
    ///   [`CombinationRule::Dempster`] with κ = 1.
    pub fn combine<W: Weight>(
        &self,
        a: &MassFunction<W>,
        b: &MassFunction<W>,
    ) -> Result<MassFunction<W>, EvidenceError> {
        match self {
            CombinationRule::Dempster => Ok(crate::combine::dempster(a, b)?.mass),
            CombinationRule::Yager => yager(a, b),
            CombinationRule::DuboisPrade => dubois_prade(a, b),
            CombinationRule::Mixing => mixing(a, b),
        }
    }

    /// Apply the rule and also report the κ Dempster would have seen —
    /// the accounting the merge layers (∪̃'s per-attribute combination,
    /// the integrate method registry) record per conflict report.
    ///
    /// Dempster's rule reports κ from its single conjunctive pass; the
    /// alternative rules absorb conflict internally, so κ is computed
    /// separately for them.
    ///
    /// # Errors
    /// As [`CombinationRule::combine`].
    pub fn combine_reporting<W: Weight>(
        &self,
        a: &MassFunction<W>,
        b: &MassFunction<W>,
    ) -> Result<(MassFunction<W>, W), EvidenceError> {
        self.combine_reporting_with(a, b, &mut crate::combine::Scratch::new())
    }

    /// [`CombinationRule::combine_reporting`] reusing a caller-held
    /// [`crate::combine::Scratch`] — merge passes hold one scratch for
    /// the whole pass instead of allocating a memo table per
    /// combination. Results are bit-for-bit identical.
    ///
    /// # Errors
    /// As [`CombinationRule::combine`].
    pub fn combine_reporting_with<W: Weight>(
        &self,
        a: &MassFunction<W>,
        b: &MassFunction<W>,
        scratch: &mut crate::combine::Scratch<W>,
    ) -> Result<(MassFunction<W>, W), EvidenceError> {
        match self {
            CombinationRule::Dempster => {
                let c = crate::combine::dempster_with(a, b, scratch)?;
                Ok((c.mass, c.conflict))
            }
            rule => {
                let kappa = crate::combine::conflict_with(a, b, scratch)?;
                Ok((rule.combine(a, b)?, kappa))
            }
        }
    }

    /// All rules, for sweep-style benchmarks.
    pub const ALL: [CombinationRule; 4] = [
        CombinationRule::Dempster,
        CombinationRule::Yager,
        CombinationRule::DuboisPrade,
        CombinationRule::Mixing,
    ];

    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CombinationRule::Dempster => "dempster",
            CombinationRule::Yager => "yager",
            CombinationRule::DuboisPrade => "dubois-prade",
            CombinationRule::Mixing => "mixing",
        }
    }
}

/// Yager's rule: the conjunctive combination with the conflict mass
/// `κ` added to `m(Ω)` instead of normalizing.
pub fn yager<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<MassFunction<W>, EvidenceError> {
    let (mut acc, conflict) = conjunctive_raw(a, b)?;
    if !conflict.is_zero() {
        let omega = a.frame().omega();
        match acc.iter_mut().find(|(s, _)| *s == omega) {
            Some((_, w)) => *w = w.add(&conflict)?,
            None => acc.push((omega, conflict)),
        }
    }
    MassFunction::from_entries(a.frame().clone(), acc)
}

/// Dubois–Prade's rule: products of disjoint focal pairs accrue to the
/// union of the pair (disjunctive repair of the conjunctive core).
pub fn dubois_prade<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<MassFunction<W>, EvidenceError> {
    if a.frame() != b.frame() {
        return Err(EvidenceError::FrameMismatch {
            left: a.frame().name().to_owned(),
            right: b.frame().name().to_owned(),
        });
    }
    let mut acc: HashMap<FocalSet, W> = HashMap::new();
    for (x, wx) in a.iter() {
        for (y, wy) in b.iter() {
            let product = wx.mul(wy)?;
            if product.is_zero() {
                continue;
            }
            let inter = x.intersect(y);
            let target = if inter.is_empty() { x.union(y) } else { inter };
            match acc.get_mut(&target) {
                Some(w) => *w = w.add(&product)?,
                None => {
                    acc.insert(target, product);
                }
            }
        }
    }
    MassFunction::from_entries(a.frame().clone(), acc)
}

/// Mixing (averaging): `m(Z) = (m1(Z) + m2(Z)) / 2`.
pub fn mixing<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<MassFunction<W>, EvidenceError> {
    if a.frame() != b.frame() {
        return Err(EvidenceError::FrameMismatch {
            left: a.frame().name().to_owned(),
            right: b.frame().name().to_owned(),
        });
    }
    let two = W::from_ratio(2, 1);
    let mut acc: HashMap<FocalSet, W> = HashMap::new();
    for source in [a, b] {
        for (s, w) in source.iter() {
            let half = w.div(&two)?;
            match acc.get_mut(s) {
                Some(acc_w) => *acc_w = acc_w.add(&half)?,
                None => {
                    acc.insert(s.clone(), half);
                }
            }
        }
    }
    MassFunction::from_entries(a.frame().clone(), acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c"]))
    }

    fn m(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
        let mut b = MassFunction::<f64>::builder(frame());
        for (labels, w) in entries {
            b = b.add(labels.iter().copied(), *w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn yager_moves_conflict_to_omega() {
        let a = m(&[(&["a"], 0.8), (&["b"], 0.2)]);
        let b = m(&[(&["b"], 1.0)]);
        // Conjunctive: a∩b=∅ (0.8), b∩b={b} (0.2). Yager: m({b})=0.2, m(Ω)=0.8.
        let y = yager(&a, &b).unwrap();
        assert!(y.mass_of(&frame().subset(["b"]).unwrap()).approx_eq(&0.2));
        assert!(y.mass_of(&frame().omega()).approx_eq(&0.8));
    }

    #[test]
    fn yager_handles_total_conflict() {
        let a = m(&[(&["a"], 1.0)]);
        let b = m(&[(&["b"], 1.0)]);
        // Dempster fails here; Yager yields total ignorance.
        let y = yager(&a, &b).unwrap();
        assert!(y.is_vacuous());
    }

    #[test]
    fn dubois_prade_unions_disjoint_pairs() {
        let a = m(&[(&["a"], 1.0)]);
        let b = m(&[(&["b"], 1.0)]);
        let dp = dubois_prade(&a, &b).unwrap();
        assert!(dp
            .mass_of(&frame().subset(["a", "b"]).unwrap())
            .approx_eq(&1.0));
    }

    #[test]
    fn mixing_averages() {
        let a = m(&[(&["a"], 1.0)]);
        let b = m(&[(&["b"], 1.0)]);
        let mix = mixing(&a, &b).unwrap();
        assert!(mix.mass_of(&frame().subset(["a"]).unwrap()).approx_eq(&0.5));
        assert!(mix.mass_of(&frame().subset(["b"]).unwrap()).approx_eq(&0.5));
    }

    #[test]
    fn all_rules_agree_without_conflict() {
        let a = m(&[(&["a", "b"], 0.5), (&["a", "b", "c"], 0.5)]);
        let b = m(&[(&["a", "b"], 1.0)]);
        let expected = CombinationRule::Dempster.combine(&a, &b).unwrap();
        for rule in [CombinationRule::Yager, CombinationRule::DuboisPrade] {
            assert!(
                rule.combine(&a, &b).unwrap().approx_eq(&expected),
                "{rule:?}"
            );
        }
        // Mixing differs by design (no interaction).
    }

    #[test]
    fn rule_enum_dispatch() {
        let a = m(&[(&["a"], 0.5), (&["a", "b"], 0.5)]);
        let b = m(&[(&["a"], 1.0)]);
        for rule in CombinationRule::ALL {
            let out = rule.combine(&a, &b).unwrap();
            assert!(!out.frame().is_empty());
            assert!(!rule.name().is_empty());
        }
        assert_eq!(CombinationRule::default(), CombinationRule::Dempster);
    }

    #[test]
    fn mismatched_frames_rejected_by_all_rules() {
        let other = Arc::new(Frame::new("g", ["x"]));
        let a = m(&[(&["a"], 1.0)]);
        let b = MassFunction::<f64>::vacuous(other).unwrap();
        for rule in CombinationRule::ALL {
            assert!(matches!(
                rule.combine(&a, &b),
                Err(EvidenceError::FrameMismatch { .. })
            ));
        }
    }

    /// Zadeh's paradox: two sources almost certain of different values.
    /// Dempster concentrates everything on the sliver of agreement;
    /// Yager concedes near-total ignorance. Both must still normalize.
    #[test]
    fn zadeh_paradox_behaviour() {
        let a = m(&[(&["a"], 0.99), (&["c"], 0.01)]);
        let b = m(&[(&["b"], 0.99), (&["c"], 0.01)]);
        let d = CombinationRule::Dempster.combine(&a, &b).unwrap();
        let c_set = frame().subset(["c"]).unwrap();
        assert!(d.mass_of(&c_set).approx_eq(&1.0));
        let y = CombinationRule::Yager.combine(&a, &b).unwrap();
        assert!(y.mass_of(&frame().omega()) > 0.99);
    }
}
