//! Dempster's rule of combination (§2.2 of the paper).
//!
//! Given two mass functions `m1`, `m2` over the same frame, the
//! combined mass is
//!
//! ```text
//! m1 ⊕ m2 (Z) = Σ_{X ∩ Y = Z} m1(X)·m2(Y) / (1 − κ)
//! κ           = Σ_{X ∩ Y = ∅} m1(X)·m2(Y)
//! ```
//!
//! κ is the *conflict* between the sources. When κ = 1 the sources
//! share no common focal element and the rule is undefined; the paper
//! requires this case to be reported to the data administrators, which
//! we model as [`EvidenceError::TotalConflict`].
//!
//! The rule is commutative and associative (checked by property tests),
//! so the order of combining evidence from many databases is
//! irrelevant — the basis for the extended union's correctness.

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::mass::MassFunction;
use crate::weight::Weight;
use std::collections::HashMap;

/// The result of a combination: the normalized mass function and the
/// conflict mass κ observed during the combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Combination<W: Weight> {
    /// `m1 ⊕ m2`, normalized.
    pub mass: MassFunction<W>,
    /// The conflict κ ∈ [0, 1).
    pub conflict: W,
}

/// Accumulate the unnormalized conjunctive combination and the
/// conflict mass. Shared by Dempster's rule and the alternative rules.
pub(crate) fn conjunctive_raw<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<(HashMap<FocalSet, W>, W), EvidenceError> {
    if a.frame() != b.frame() {
        return Err(EvidenceError::FrameMismatch {
            left: a.frame().name().to_owned(),
            right: b.frame().name().to_owned(),
        });
    }
    let mut acc: HashMap<FocalSet, W> = HashMap::with_capacity(a.focal_count() * b.focal_count());
    let mut conflict = W::zero();
    for (x, wx) in a.iter() {
        for (y, wy) in b.iter() {
            let product = wx.mul(wy)?;
            if product.is_zero() {
                continue;
            }
            let z = x.intersect(y);
            if z.is_empty() {
                conflict = conflict.add(&product)?;
            } else {
                match acc.get_mut(&z) {
                    Some(w) => *w = w.add(&product)?,
                    None => {
                        acc.insert(z, product);
                    }
                }
            }
        }
    }
    Ok((acc, conflict))
}

/// Combine two mass functions with Dempster's rule.
///
/// # Errors
/// * [`EvidenceError::FrameMismatch`] if the frames differ;
/// * [`EvidenceError::TotalConflict`] if κ = 1.
pub fn dempster<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<Combination<W>, EvidenceError> {
    let (acc, conflict) = conjunctive_raw(a, b)?;
    if acc.is_empty() || conflict.approx_eq(&W::one()) {
        return Err(EvidenceError::TotalConflict);
    }
    let denom = W::one().sub(&conflict)?;
    let entries = acc
        .into_iter()
        .map(|(s, w)| Ok((s, w.div(&denom)?)))
        .collect::<Result<Vec<_>, EvidenceError>>()?;
    let mass = MassFunction::from_entries(a.frame().clone(), entries)?;
    Ok(Combination { mass, conflict })
}

/// Fold Dempster's rule over any number of sources.
///
/// Returns the single input unchanged (κ = 0) for a one-element
/// iterator.
///
/// # Errors
/// * [`EvidenceError::EmptyFocalElement`] for an empty iterator;
/// * errors from [`dempster`] otherwise. The reported conflict is the
///   conflict of the *last* pairwise combination, which is what the
///   integration layer reports per merge step.
pub fn dempster_all<'a, W: Weight + 'a>(
    sources: impl IntoIterator<Item = &'a MassFunction<W>>,
) -> Result<Combination<W>, EvidenceError> {
    let mut iter = sources.into_iter();
    let first = iter.next().ok_or(EvidenceError::EmptyFocalElement)?;
    let mut result = Combination {
        mass: first.clone(),
        conflict: W::zero(),
    };
    for next in iter {
        result = dempster(&result.mass, next)?;
    }
    Ok(result)
}

/// The degree of conflict κ between two sources *without* combining
/// them — useful for conflict analysis and the integration layer's
/// diagnostics.
///
/// # Errors
/// [`EvidenceError::FrameMismatch`] if the frames differ.
pub fn conflict<W: Weight>(a: &MassFunction<W>, b: &MassFunction<W>) -> Result<W, EvidenceError> {
    Ok(conjunctive_raw(a, b)?.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::ratio::Ratio;
    use std::sync::Arc;

    fn speciality() -> Arc<Frame> {
        Arc::new(Frame::new(
            "speciality",
            [
                "american",
                "hunan",
                "sichuan",
                "cantonese",
                "mughalai",
                "italian",
            ],
        ))
    }

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn m1() -> MassFunction<Ratio> {
        MassFunction::builder(speciality())
            .add(["cantonese"], r(1, 2))
            .unwrap()
            .add(["hunan", "sichuan"], r(1, 3))
            .unwrap()
            .add_omega(r(1, 6))
            .build()
            .unwrap()
    }

    fn m2() -> MassFunction<Ratio> {
        MassFunction::builder(speciality())
            .add(["cantonese", "hunan"], r(1, 2))
            .unwrap()
            .add(["hunan"], r(1, 4))
            .unwrap()
            .add_omega(r(1, 4))
            .build()
            .unwrap()
    }

    /// The paper's §2.2 worked example, verified with exact rationals:
    /// κ = 1/8 and the six combined masses are exactly as printed.
    #[test]
    fn paper_combination_example_exact() {
        let c = dempster(&m1(), &m2()).unwrap();
        assert_eq!(c.conflict, r(1, 8));
        let f = speciality();
        let m = &c.mass;
        assert_eq!(m.mass_of(&f.subset(["cantonese"]).unwrap()), r(3, 7));
        assert_eq!(m.mass_of(&f.subset(["hunan"]).unwrap()), r(1, 3));
        assert_eq!(
            m.mass_of(&f.subset(["cantonese", "hunan"]).unwrap()),
            r(2, 21)
        );
        assert_eq!(
            m.mass_of(&f.subset(["hunan", "sichuan"]).unwrap()),
            r(2, 21)
        );
        assert_eq!(m.mass_of(&f.omega()), r(1, 21));
        // m(∅) = 0 by construction; total is 1.
        assert_eq!(m.focal_count(), 5);
    }

    /// §2.2's observed trends: combination increases the mass of small
    /// merged sets and decreases that of large/conflicting ones.
    #[test]
    fn paper_combination_trends() {
        let c = dempster(&m1(), &m2()).unwrap();
        let f = speciality();
        let hu = f.subset(["hunan"]).unwrap();
        let ca = f.subset(["cantonese"]).unwrap();
        // hunan rose from 0 (m1) and 1/4 (m2) to 1/3.
        assert!(c.mass.mass_of(&hu) > m2().mass_of(&hu));
        // cantonese fell from 1/2 to 3/7.
        assert!(c.mass.mass_of(&ca) < m1().mass_of(&ca));
        // Ω mass shrank (uncertainty reduced).
        assert!(c.mass.mass_of(&f.omega()) < m1().mass_of(&f.omega()));
    }

    #[test]
    fn commutative_exact() {
        let ab = dempster(&m1(), &m2()).unwrap();
        let ba = dempster(&m2(), &m1()).unwrap();
        assert_eq!(ab.mass, ba.mass);
        assert_eq!(ab.conflict, ba.conflict);
    }

    #[test]
    fn associative_exact() {
        let m3 = MassFunction::builder(speciality())
            .add(["hunan"], r(3, 5))
            .unwrap()
            .add_omega(r(2, 5))
            .build()
            .unwrap();
        let left = dempster(&dempster(&m1(), &m2()).unwrap().mass, &m3).unwrap();
        let right = dempster(&m1(), &dempster(&m2(), &m3).unwrap().mass).unwrap();
        assert_eq!(left.mass, right.mass);
    }

    #[test]
    fn vacuous_is_identity() {
        let v = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let c = dempster(&m1(), &v).unwrap();
        assert_eq!(c.mass, m1());
        assert_eq!(c.conflict, Ratio::ZERO);
    }

    #[test]
    fn total_conflict_detected() {
        let a = MassFunction::<Ratio>::certain(speciality(), "hunan").unwrap();
        let b = MassFunction::<Ratio>::certain(speciality(), "italian").unwrap();
        assert_eq!(dempster(&a, &b), Err(EvidenceError::TotalConflict));
        assert_eq!(conflict(&a, &b).unwrap(), Ratio::ONE);
    }

    #[test]
    fn frame_mismatch_detected() {
        let other = Arc::new(Frame::new("rating", ["ex", "gd", "avg"]));
        let a = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let b = MassFunction::<Ratio>::vacuous(other).unwrap();
        assert!(matches!(
            dempster(&a, &b),
            Err(EvidenceError::FrameMismatch { .. })
        ));
    }

    #[test]
    fn dempster_all_folds() {
        let v = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let c = dempster_all([&m1(), &v, &m2()]).unwrap();
        let direct = dempster(&m1(), &m2()).unwrap();
        assert_eq!(c.mass, direct.mass);
        let single = dempster_all([&m1()]).unwrap();
        assert_eq!(single.mass, m1());
        assert_eq!(single.conflict, Ratio::ZERO);
        assert!(dempster_all(Vec::<&MassFunction<Ratio>>::new()).is_err());
    }

    #[test]
    fn f64_matches_exact_within_tolerance() {
        let fm1 = MassFunction::<f64>::builder(speciality())
            .add(["cantonese"], 0.5)
            .unwrap()
            .add(["hunan", "sichuan"], 1.0 / 3.0)
            .unwrap()
            .add_omega(1.0 / 6.0)
            .build()
            .unwrap();
        let fm2 = MassFunction::<f64>::builder(speciality())
            .add(["cantonese", "hunan"], 0.5)
            .unwrap()
            .add(["hunan"], 0.25)
            .unwrap()
            .add_omega(0.25)
            .build()
            .unwrap();
        let c = dempster(&fm1, &fm2).unwrap();
        let f = speciality();
        assert!((c.conflict - 0.125).abs() < 1e-12);
        assert!((c.mass.mass_of(&f.subset(["cantonese"]).unwrap()) - 3.0 / 7.0).abs() < 1e-12);
    }

    /// Combining a Bayesian mass with itself sharpens it (Bayes-like
    /// behaviour: Dempster generalizes Bayesian conditioning).
    #[test]
    fn bayesian_self_combination_sharpens() {
        let m = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 0.6)
            .unwrap()
            .add(["sichuan"], 0.4)
            .unwrap()
            .build()
            .unwrap();
        let c = dempster(&m, &m).unwrap();
        let hu = speciality().subset(["hunan"]).unwrap();
        // 0.36 / (0.36 + 0.16) ≈ 0.6923 > 0.6
        assert!(c.mass.mass_of(&hu) > 0.69);
        assert!(c.mass.is_bayesian());
    }
}
