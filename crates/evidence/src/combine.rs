//! Dempster's rule of combination (§2.2 of the paper).
//!
//! Given two mass functions `m1`, `m2` over the same frame, the
//! combined mass is
//!
//! ```text
//! m1 ⊕ m2 (Z) = Σ_{X ∩ Y = Z} m1(X)·m2(Y) / (1 − κ)
//! κ           = Σ_{X ∩ Y = ∅} m1(X)·m2(Y)
//! ```
//!
//! κ is the *conflict* between the sources. When κ = 1 the sources
//! share no common focal element and the rule is undefined; the paper
//! requires this case to be reported to the data administrators, which
//! we model as [`EvidenceError::TotalConflict`].
//!
//! The rule is commutative and associative (checked by property tests),
//! so the order of combining evidence from many databases is
//! irrelevant — the basis for the extended union's correctness.
//!
//! # The hot path
//!
//! This is the inner loop of every tuple merge in the integration
//! framework (§4): the extended union ∪̃ runs one combination per
//! common non-key attribute per matched tuple pair, plus one for the
//! membership pair. The engine therefore dispatches on the shape of
//! the operands, cheapest first:
//!
//! 1. **Singleton-only (Bayesian) fast path** — when every focal
//!    element of both operands is a singleton (the common case in the
//!    restaurant workload, where source databases assert plain value
//!    distributions), `X ∩ Y ≠ ∅` iff `X = Y`, so the quadratic
//!    pairwise loop collapses to a value-indexed dense-array walk:
//!    `O(|m1| + |m2| + |Ω|)`, no set operations at all.
//! 2. **Inline bitset path** — when every focal element fits the
//!    inline `u128` representation ([`FocalSet::as_bits`]; always true
//!    for frames of ≤ 128 values), each pairwise intersection is a
//!    single word-AND and products are accumulated in a memo table
//!    keyed by the `(lhs_bits & rhs_bits)` result pattern
//!    (`BitsMemo`). No per-pair `FocalSet` is allocated: each
//!    *distinct* intersection pattern is materialized exactly once
//!    when the table drains.
//! 3. **Boxed fallback** — frames wider than 128 values go through
//!    [`FocalSet::intersect`] (which itself collapses results back
//!    into the inline representation when they fit).
//!
//! All paths feed the trusted `MassFunction::from_combination`
//! constructor, skipping the per-entry revalidation of the public
//! builder. The retained [`crate::reference`] module implements the
//! same rule over `BTreeSet<usize>` with none of these refinements;
//! the property suite pits the two against each other.

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::mass::MassFunction;
use crate::weight::Weight;
use std::collections::HashMap;

/// The result of a combination: the normalized mass function and the
/// conflict mass κ observed during the combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Combination<W: Weight> {
    /// `m1 ⊕ m2`, normalized.
    pub mass: MassFunction<W>,
    /// The conflict κ ∈ [0, 1).
    pub conflict: W,
}

/// A memo table for intersection products, keyed by the inline bit
/// pattern of `lhs_bits & rhs_bits`. Open-addressed with linear
/// probing over a power-of-two slot array so the per-pair cost is a
/// multiply-fold hash and (usually) one probe — no `SipHash`, no
/// per-pair allocation, no `FocalSet` until the table drains.
#[derive(Debug)]
struct BitsMemo<W> {
    /// Entry index + 1; 0 marks an empty slot.
    slots: Vec<u32>,
    mask: usize,
    entries: Vec<(u128, W)>,
}

impl<W: Weight> BitsMemo<W> {
    fn new(expected: usize) -> BitsMemo<W> {
        let cap = (expected * 2).next_power_of_two().max(16);
        BitsMemo {
            slots: vec![0; cap],
            mask: cap - 1,
            entries: Vec::with_capacity(expected),
        }
    }

    /// Make the table empty again, keeping (and if necessary growing)
    /// its allocations — the reuse path a whole merge pass shares one
    /// memo through (see [`Scratch`]).
    fn reset(&mut self, expected: usize) {
        let cap = (expected * 2).next_power_of_two().max(16);
        if cap > self.slots.len() {
            self.slots = vec![0; cap];
            self.mask = cap - 1;
        } else {
            self.slots.fill(0);
        }
        self.entries.clear();
    }

    /// Fold a 128-bit pattern to a table index (murmur-style finalizer
    /// over the XOR-mixed halves — cheap and well-distributed for the
    /// sparse patterns focal sets produce).
    #[inline]
    fn hash(bits: u128) -> usize {
        let mut h = (bits as u64) ^ ((bits >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h as usize
    }

    /// Accumulate `product` into the entry for `bits` (non-empty).
    fn add(&mut self, bits: u128, product: W) -> Result<(), EvidenceError> {
        let mut i = Self::hash(bits) & self.mask;
        loop {
            match self.slots[i] {
                0 => {
                    self.entries.push((bits, product));
                    self.slots[i] = self.entries.len() as u32;
                    if self.entries.len() * 4 > self.slots.len() * 3 {
                        self.grow();
                    }
                    return Ok(());
                }
                e => {
                    let e = (e - 1) as usize;
                    if self.entries[e].0 == bits {
                        self.entries[e].1 = self.entries[e].1.add(&product)?;
                        return Ok(());
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, 0);
        for (e, (bits, _)) in self.entries.iter().enumerate() {
            let mut i = Self::hash(*bits) & self.mask;
            while self.slots[i] != 0 {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = (e + 1) as u32;
        }
    }

    /// Drain into `(FocalSet, W)` entries, materializing each distinct
    /// intersection pattern exactly once. Leaves the table ready for
    /// [`BitsMemo::reset`]; allocations are retained.
    fn drain_entries(&mut self) -> Vec<(FocalSet, W)> {
        self.entries
            .drain(..)
            .map(|(bits, w)| (FocalSet::from_bits(bits), w))
            .collect()
    }
}

/// Reusable scratch state for the combination engine.
///
/// Every `dempster` call on the inline-bitset path needs a memo table
/// for intersection products. A tuple merge runs one combination per
/// common attribute per matched pair, so a whole ∪̃ pass over 10⁵
/// tuples allocates (and drops) that table hundreds of thousands of
/// times. Holding one `Scratch` per merge pass — as the plan layer's
/// `DempsterMerger` does — and calling [`dempster_with`] reuses the
/// slot array and entry vector across every combination of the pass.
///
/// A `Scratch` carries no results between calls (each use resets it),
/// so combining with and without scratch is bit-for-bit identical —
/// the property suite checks this.
#[derive(Debug)]
pub struct Scratch<W: Weight> {
    memo: BitsMemo<W>,
}

impl<W: Weight> Scratch<W> {
    /// An empty scratch (first use sizes the table).
    pub fn new() -> Scratch<W> {
        Scratch {
            memo: BitsMemo::new(0),
        }
    }
}

impl<W: Weight> Default for Scratch<W> {
    fn default() -> Self {
        Scratch::new()
    }
}

/// The focal list as inline bit patterns, or `None` if any focal
/// element needs the boxed representation.
fn inline_bits<W: Weight>(m: &MassFunction<W>) -> Option<Vec<(u128, &W)>> {
    m.iter().map(|(s, w)| s.as_bits().map(|b| (b, w))).collect()
}

fn check_frames<W: Weight>(a: &MassFunction<W>, b: &MassFunction<W>) -> Result<(), EvidenceError> {
    if a.frame() != b.frame() {
        return Err(EvidenceError::FrameMismatch {
            left: a.frame().name().to_owned(),
            right: b.frame().name().to_owned(),
        });
    }
    Ok(())
}

/// `1 − diag`, clamped to exact zero when it lands within the weight
/// tolerance (floating-point dust must not surface as negative κ).
fn one_minus<W: Weight>(diag: &W) -> Result<W, EvidenceError> {
    let rest = W::one().sub(diag)?;
    if rest.is_zero() || !rest.is_positive() {
        Ok(W::zero())
    } else {
        Ok(rest)
    }
}

/// Singleton-only (Bayesian × Bayesian) conjunction: intersections are
/// non-empty exactly on equal singletons, so one dense-array pass over
/// the shorter operand replaces the quadratic pairwise loop, and
/// κ = 1 − Σᵢ m1({i})·m2({i}).
fn bayesian_raw<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<(Vec<(FocalSet, W)>, W), EvidenceError> {
    let mut dense: Vec<Option<&W>> = vec![None; a.frame().len()];
    for (s, w) in b.iter() {
        dense[s.as_singleton().expect("bayesian operand")] = Some(w);
    }
    let mut entries = Vec::with_capacity(a.focal_count().min(b.focal_count()));
    let mut diag = W::zero();
    for (s, w) in a.iter() {
        let i = s.as_singleton().expect("bayesian operand");
        if let Some(wb) = dense[i] {
            let product = w.mul(wb)?;
            if !product.is_zero() {
                diag = diag.add(&product)?;
                entries.push((s.clone(), product));
            }
        }
    }
    let conflict = one_minus(&diag)?;
    Ok((entries, conflict))
}

/// Inline-bitset conjunction: word-AND intersections accumulated in
/// `memo` (reset here, drained before returning — the caller only
/// provides the allocations).
fn inline_raw<W: Weight>(
    av: &[(u128, &W)],
    bv: &[(u128, &W)],
    memo: &mut BitsMemo<W>,
) -> Result<(Vec<(FocalSet, W)>, W), EvidenceError> {
    memo.reset(av.len() * bv.len());
    let mut conflict = W::zero();
    for (xa, wa) in av {
        for (xb, wb) in bv {
            let z = xa & xb;
            let product = wa.mul(wb)?;
            if product.is_zero() {
                continue;
            }
            if z == 0 {
                conflict = conflict.add(&product)?;
            } else {
                memo.add(z, product)?;
            }
        }
    }
    Ok((memo.drain_entries(), conflict))
}

/// Boxed fallback for frames wider than 128 values.
fn boxed_raw<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<(Vec<(FocalSet, W)>, W), EvidenceError> {
    let mut acc: HashMap<FocalSet, W> = HashMap::with_capacity(a.focal_count() * b.focal_count());
    let mut conflict = W::zero();
    for (x, wx) in a.iter() {
        for (y, wy) in b.iter() {
            let product = wx.mul(wy)?;
            if product.is_zero() {
                continue;
            }
            let z = x.intersect(y);
            if z.is_empty() {
                conflict = conflict.add(&product)?;
            } else {
                match acc.get_mut(&z) {
                    Some(w) => *w = w.add(&product)?,
                    None => {
                        acc.insert(z, product);
                    }
                }
            }
        }
    }
    Ok((acc.into_iter().collect(), conflict))
}

/// Accumulate the unnormalized conjunctive combination and the
/// conflict mass. Shared by Dempster's rule and the alternative rules.
/// The returned entries have distinct, non-empty focal sets.
pub(crate) fn conjunctive_raw<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<(Vec<(FocalSet, W)>, W), EvidenceError> {
    conjunctive_raw_with(a, b, &mut Scratch::new())
}

/// [`conjunctive_raw`] reusing a caller-held [`Scratch`].
pub(crate) fn conjunctive_raw_with<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
    scratch: &mut Scratch<W>,
) -> Result<(Vec<(FocalSet, W)>, W), EvidenceError> {
    check_frames(a, b)?;
    if a.is_bayesian() && b.is_bayesian() {
        return bayesian_raw(a, b);
    }
    match (inline_bits(a), inline_bits(b)) {
        (Some(av), Some(bv)) => inline_raw(&av, &bv, &mut scratch.memo),
        _ => boxed_raw(a, b),
    }
}

/// Combine two mass functions with Dempster's rule.
///
/// # Examples
///
/// The paper's §2.2 worked example — the speciality of restaurant
/// *wok* according to two source databases:
///
/// ```
/// use evirel_evidence::{combine, Frame, MassFunction};
/// use std::sync::Arc;
///
/// let frame = Arc::new(Frame::new("speciality", ["hunan", "sichuan", "cantonese"]));
/// let m1 = MassFunction::<f64>::builder(Arc::clone(&frame))
///     .add(["cantonese"], 0.5).unwrap()
///     .add(["hunan", "sichuan"], 1.0 / 3.0).unwrap()
///     .add_omega(1.0 / 6.0)
///     .build().unwrap();
/// let m2 = MassFunction::<f64>::builder(Arc::clone(&frame))
///     .add(["cantonese", "hunan"], 0.5).unwrap()
///     .add(["hunan"], 0.25).unwrap()
///     .add_omega(0.25)
///     .build().unwrap();
///
/// let c = combine::dempster(&m1, &m2).unwrap();
/// assert!((c.conflict - 1.0 / 8.0).abs() < 1e-12); // κ = 1/8
/// let cantonese = frame.singleton("cantonese").unwrap();
/// assert!((c.mass.mass_of(&cantonese) - 3.0 / 7.0).abs() < 1e-12);
/// ```
///
/// # Errors
/// * [`EvidenceError::FrameMismatch`] if the frames differ;
/// * [`EvidenceError::TotalConflict`] if κ = 1.
pub fn dempster<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<Combination<W>, EvidenceError> {
    dempster_with(a, b, &mut Scratch::new())
}

/// [`dempster`] reusing a caller-held [`Scratch`] for the memo table —
/// bit-for-bit the same result, without the per-call allocation. Merge
/// passes (the extended union, the integration merge stage) hold one
/// scratch for the whole pass.
///
/// # Errors
/// As [`dempster`].
pub fn dempster_with<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
    scratch: &mut Scratch<W>,
) -> Result<Combination<W>, EvidenceError> {
    let (mut entries, conflict) = conjunctive_raw_with(a, b, scratch)?;
    if entries.is_empty() || conflict.approx_eq(&W::one()) {
        return Err(EvidenceError::TotalConflict);
    }
    if !conflict.is_zero() {
        let denom = W::one().sub(&conflict)?;
        for (_, w) in &mut entries {
            *w = w.div(&denom)?;
        }
    }
    let mass = MassFunction::from_combination(a.frame().clone(), entries)?;
    Ok(Combination { mass, conflict })
}

/// Fold Dempster's rule over any number of sources.
///
/// Returns the single input unchanged (κ = 0) for a one-element
/// iterator.
///
/// # Errors
/// * [`EvidenceError::EmptyFocalElement`] for an empty iterator;
/// * errors from [`dempster`] otherwise. The reported conflict is the
///   conflict of the *last* pairwise combination, which is what the
///   integration layer reports per merge step.
pub fn dempster_all<'a, W: Weight + 'a>(
    sources: impl IntoIterator<Item = &'a MassFunction<W>>,
) -> Result<Combination<W>, EvidenceError> {
    let mut iter = sources.into_iter();
    let first = iter.next().ok_or(EvidenceError::EmptyFocalElement)?;
    let mut result = Combination {
        mass: first.clone(),
        conflict: W::zero(),
    };
    for next in iter {
        result = dempster(&result.mass, next)?;
    }
    Ok(result)
}

/// The degree of conflict κ between two sources *without* combining
/// them — useful for conflict analysis and the integration layer's
/// diagnostics.
///
/// Cheaper than [`dempster`]: the conjunctive pass runs on the same
/// fast paths, but normalization and mass-function construction are
/// skipped.
///
/// # Errors
/// [`EvidenceError::FrameMismatch`] if the frames differ.
pub fn conflict<W: Weight>(a: &MassFunction<W>, b: &MassFunction<W>) -> Result<W, EvidenceError> {
    Ok(conjunctive_raw(a, b)?.1)
}

/// [`conflict`] reusing a caller-held [`Scratch`].
///
/// # Errors
/// As [`conflict`].
pub fn conflict_with<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
    scratch: &mut Scratch<W>,
) -> Result<W, EvidenceError> {
    Ok(conjunctive_raw_with(a, b, scratch)?.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::ratio::Ratio;
    use std::sync::Arc;

    fn speciality() -> Arc<Frame> {
        Arc::new(Frame::new(
            "speciality",
            [
                "american",
                "hunan",
                "sichuan",
                "cantonese",
                "mughalai",
                "italian",
            ],
        ))
    }

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn m1() -> MassFunction<Ratio> {
        MassFunction::builder(speciality())
            .add(["cantonese"], r(1, 2))
            .unwrap()
            .add(["hunan", "sichuan"], r(1, 3))
            .unwrap()
            .add_omega(r(1, 6))
            .build()
            .unwrap()
    }

    fn m2() -> MassFunction<Ratio> {
        MassFunction::builder(speciality())
            .add(["cantonese", "hunan"], r(1, 2))
            .unwrap()
            .add(["hunan"], r(1, 4))
            .unwrap()
            .add_omega(r(1, 4))
            .build()
            .unwrap()
    }

    /// The paper's §2.2 worked example, verified with exact rationals:
    /// κ = 1/8 and the six combined masses are exactly as printed.
    #[test]
    fn paper_combination_example_exact() {
        let c = dempster(&m1(), &m2()).unwrap();
        assert_eq!(c.conflict, r(1, 8));
        let f = speciality();
        let m = &c.mass;
        assert_eq!(m.mass_of(&f.subset(["cantonese"]).unwrap()), r(3, 7));
        assert_eq!(m.mass_of(&f.subset(["hunan"]).unwrap()), r(1, 3));
        assert_eq!(
            m.mass_of(&f.subset(["cantonese", "hunan"]).unwrap()),
            r(2, 21)
        );
        assert_eq!(
            m.mass_of(&f.subset(["hunan", "sichuan"]).unwrap()),
            r(2, 21)
        );
        assert_eq!(m.mass_of(&f.omega()), r(1, 21));
        // m(∅) = 0 by construction; total is 1.
        assert_eq!(m.focal_count(), 5);
    }

    /// §2.2's observed trends: combination increases the mass of small
    /// merged sets and decreases that of large/conflicting ones.
    #[test]
    fn paper_combination_trends() {
        let c = dempster(&m1(), &m2()).unwrap();
        let f = speciality();
        let hu = f.subset(["hunan"]).unwrap();
        let ca = f.subset(["cantonese"]).unwrap();
        // hunan rose from 0 (m1) and 1/4 (m2) to 1/3.
        assert!(c.mass.mass_of(&hu) > m2().mass_of(&hu));
        // cantonese fell from 1/2 to 3/7.
        assert!(c.mass.mass_of(&ca) < m1().mass_of(&ca));
        // Ω mass shrank (uncertainty reduced).
        assert!(c.mass.mass_of(&f.omega()) < m1().mass_of(&f.omega()));
    }

    #[test]
    fn commutative_exact() {
        let ab = dempster(&m1(), &m2()).unwrap();
        let ba = dempster(&m2(), &m1()).unwrap();
        assert_eq!(ab.mass, ba.mass);
        assert_eq!(ab.conflict, ba.conflict);
    }

    #[test]
    fn associative_exact() {
        let m3 = MassFunction::builder(speciality())
            .add(["hunan"], r(3, 5))
            .unwrap()
            .add_omega(r(2, 5))
            .build()
            .unwrap();
        let left = dempster(&dempster(&m1(), &m2()).unwrap().mass, &m3).unwrap();
        let right = dempster(&m1(), &dempster(&m2(), &m3).unwrap().mass).unwrap();
        assert_eq!(left.mass, right.mass);
    }

    #[test]
    fn vacuous_is_identity() {
        let v = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let c = dempster(&m1(), &v).unwrap();
        assert_eq!(c.mass, m1());
        assert_eq!(c.conflict, Ratio::ZERO);
    }

    #[test]
    fn total_conflict_detected() {
        let a = MassFunction::<Ratio>::certain(speciality(), "hunan").unwrap();
        let b = MassFunction::<Ratio>::certain(speciality(), "italian").unwrap();
        assert_eq!(dempster(&a, &b), Err(EvidenceError::TotalConflict));
        assert_eq!(conflict(&a, &b).unwrap(), Ratio::ONE);
    }

    #[test]
    fn frame_mismatch_detected() {
        let other = Arc::new(Frame::new("rating", ["ex", "gd", "avg"]));
        let a = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let b = MassFunction::<Ratio>::vacuous(other).unwrap();
        assert!(matches!(
            dempster(&a, &b),
            Err(EvidenceError::FrameMismatch { .. })
        ));
    }

    #[test]
    fn dempster_all_folds() {
        let v = MassFunction::<Ratio>::vacuous(speciality()).unwrap();
        let c = dempster_all([&m1(), &v, &m2()]).unwrap();
        let direct = dempster(&m1(), &m2()).unwrap();
        assert_eq!(c.mass, direct.mass);
        let single = dempster_all([&m1()]).unwrap();
        assert_eq!(single.mass, m1());
        assert_eq!(single.conflict, Ratio::ZERO);
        assert!(dempster_all(Vec::<&MassFunction<Ratio>>::new()).is_err());
    }

    #[test]
    fn f64_matches_exact_within_tolerance() {
        let fm1 = MassFunction::<f64>::builder(speciality())
            .add(["cantonese"], 0.5)
            .unwrap()
            .add(["hunan", "sichuan"], 1.0 / 3.0)
            .unwrap()
            .add_omega(1.0 / 6.0)
            .build()
            .unwrap();
        let fm2 = MassFunction::<f64>::builder(speciality())
            .add(["cantonese", "hunan"], 0.5)
            .unwrap()
            .add(["hunan"], 0.25)
            .unwrap()
            .add_omega(0.25)
            .build()
            .unwrap();
        let c = dempster(&fm1, &fm2).unwrap();
        let f = speciality();
        assert!((c.conflict - 0.125).abs() < 1e-12);
        assert!((c.mass.mass_of(&f.subset(["cantonese"]).unwrap()) - 3.0 / 7.0).abs() < 1e-12);
    }

    /// One shared [`Scratch`] across a whole pass of combinations is
    /// bit-for-bit identical to a fresh memo per call — the contract
    /// that lets merge passes reuse the table.
    #[test]
    fn shared_scratch_is_bit_identical() {
        let mut scratch = Scratch::new();
        // Exact rationals: equality below is exact, not approximate.
        let pairs = [(m1(), m2()), (m2(), m1()), (m1(), m1()), (m2(), m2())];
        for _ in 0..3 {
            for (a, b) in &pairs {
                let fresh = dempster(a, b).unwrap();
                let reused = dempster_with(a, b, &mut scratch).unwrap();
                assert_eq!(fresh.mass, reused.mass);
                assert_eq!(fresh.conflict, reused.conflict);
                assert_eq!(
                    conflict(a, b).unwrap(),
                    conflict_with(a, b, &mut scratch).unwrap()
                );
            }
        }
        // Growth inside a reused scratch (many distinct patterns) is
        // handled too: a 20-focal f64 pair forces the table to grow.
        let wide = Arc::new(Frame::new("wide", (0..40).map(|i| format!("v{i}"))));
        let mut b1 = MassFunction::<f64>::builder(Arc::clone(&wide));
        let mut b2 = MassFunction::<f64>::builder(Arc::clone(&wide));
        for i in 0..20 {
            b1 = b1
                .add([format!("v{i}"), format!("v{}", i + 1)], 0.05)
                .unwrap();
            b2 = b2
                .add([format!("v{}", i + 1), format!("v{}", (i + 2) % 40)], 0.05)
                .unwrap();
        }
        let (w1, w2) = (b1.build().unwrap(), b2.build().unwrap());
        let mut scratch = Scratch::new();
        let fresh = dempster(&w1, &w2).unwrap();
        let reused = dempster_with(&w1, &w2, &mut scratch).unwrap();
        assert_eq!(fresh.mass, reused.mass);
    }

    /// Combining a Bayesian mass with itself sharpens it (Bayes-like
    /// behaviour: Dempster generalizes Bayesian conditioning).
    #[test]
    fn bayesian_self_combination_sharpens() {
        let m = MassFunction::<f64>::builder(speciality())
            .add(["hunan"], 0.6)
            .unwrap()
            .add(["sichuan"], 0.4)
            .unwrap()
            .build()
            .unwrap();
        let c = dempster(&m, &m).unwrap();
        let hu = speciality().subset(["hunan"]).unwrap();
        // 0.36 / (0.36 + 0.16) ≈ 0.6923 > 0.6
        assert!(c.mass.mass_of(&hu) > 0.69);
        assert!(c.mass.is_bayesian());
    }
}
