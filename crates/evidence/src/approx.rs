//! Focal-element approximation (summarization).
//!
//! Repeated Dempster combination can grow the number of focal elements
//! combinatorially (in the worst case, toward `2^|Ω|`). Integration
//! pipelines that chain many extended unions therefore benefit from
//! bounding the focal count. This module implements the classical
//! *summarization* approximation (Lowrance, Garvey & Strat, 1986): keep
//! the `k − 1` largest-mass focal elements and collapse the remainder
//! into the union of the discarded sets, preserving total mass and
//! never *under*-reporting plausibility.
//!
//! The ablation bench `benches/combine.rs` measures the
//! speed/precision trade-off of this knob.

use crate::error::EvidenceError;
use crate::mass::MassFunction;
use crate::weight::Weight;

/// Summarize `m` to at most `k` focal elements (`k ≥ 1`).
///
/// If `m` already has ≤ `k` focal elements it is returned unchanged.
/// Otherwise the `k − 1` focal elements with the largest masses are
/// kept verbatim and all others are replaced by a single focal element
/// equal to their union, carrying their combined mass.
///
/// # Errors
/// [`EvidenceError::EmptyFocalElement`] if `k == 0`.
pub fn summarize<W: Weight>(
    m: &MassFunction<W>,
    k: usize,
) -> Result<MassFunction<W>, EvidenceError> {
    if k == 0 {
        return Err(EvidenceError::EmptyFocalElement);
    }
    if m.focal_count() <= k {
        return Ok(m.clone());
    }
    // Sort focal elements by descending mass; ties broken by the
    // canonical set order to stay deterministic.
    let mut entries: Vec<_> = m.iter().map(|(s, w)| (s.clone(), w.clone())).collect();
    entries.sort_by(|(sa, wa), (sb, wb)| {
        wb.partial_cmp(wa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| sa.cmp(sb))
    });
    let keep = k - 1;
    let mut kept: Vec<_> = entries[..keep].to_vec();
    let mut rest_mass = W::zero();
    let mut rest_union = crate::focal::FocalSet::empty();
    for (s, w) in &entries[keep..] {
        rest_mass = rest_mass.add(w)?;
        rest_union = rest_union.union(s);
    }
    // The union may coincide with a kept focal element; merge if so.
    if let Some(slot) = kept.iter_mut().find(|(s, _)| *s == rest_union) {
        slot.1 = slot.1.add(&rest_mass)?;
    } else {
        kept.push((rest_union, rest_mass));
    }
    // Distinct entries (dedup above) whose masses are a permutation /
    // regrouping of a valid function's: the trusted constructor
    // applies.
    MassFunction::from_combination(m.frame().clone(), kept)
}

/// The error introduced by an approximation, measured as the maximum
/// absolute difference in belief over every focal element of either
/// function (a practical proxy for the sup-norm over all of `2^Ω`).
pub fn max_belief_error<W: Weight>(a: &MassFunction<W>, b: &MassFunction<W>) -> f64 {
    let mut worst = 0.0f64;
    for (s, _) in a.iter().chain(b.iter()) {
        let d = (a.bel(s).to_f64() - b.bel(s).to_f64()).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c", "d"]))
    }

    fn m() -> MassFunction<f64> {
        MassFunction::<f64>::builder(frame())
            .add(["a"], 0.4)
            .unwrap()
            .add(["b"], 0.3)
            .unwrap()
            .add(["c"], 0.2)
            .unwrap()
            .add(["d"], 0.1)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn summarize_keeps_top_masses() {
        let s = summarize(&m(), 3).unwrap();
        assert_eq!(s.focal_count(), 3);
        // a and b kept; c,d collapsed into {c,d} with mass 0.3.
        assert!(s.mass_of(&frame().subset(["a"]).unwrap()).approx_eq(&0.4));
        assert!(s.mass_of(&frame().subset(["b"]).unwrap()).approx_eq(&0.3));
        assert!(s
            .mass_of(&frame().subset(["c", "d"]).unwrap())
            .approx_eq(&0.3));
    }

    #[test]
    fn summarize_noop_when_small() {
        let s = summarize(&m(), 10).unwrap();
        assert_eq!(s, m());
    }

    #[test]
    fn summarize_to_one_yields_core() {
        let s = summarize(&m(), 1).unwrap();
        assert_eq!(s.focal_count(), 1);
        assert!(s.mass_of(&m().core()).approx_eq(&1.0));
    }

    #[test]
    fn summarize_zero_rejected() {
        assert!(summarize(&m(), 0).is_err());
    }

    #[test]
    fn summarize_never_underestimates_plausibility() {
        let orig = m();
        let s = summarize(&orig, 2).unwrap();
        for i in 0..frame().len() {
            let singleton = crate::focal::FocalSet::singleton(i);
            assert!(s.pls(&singleton) + 1e-12 >= orig.pls(&singleton));
        }
    }

    #[test]
    fn summarize_merges_union_into_existing_focal() {
        // Focal {c,d} already present and largest-but-one: the rest
        // union can collide with a kept element.
        let m = MassFunction::<f64>::builder(frame())
            .add(["a"], 0.5)
            .unwrap()
            .add(["c", "d"], 0.3)
            .unwrap()
            .add(["c"], 0.1)
            .unwrap()
            .add(["d"], 0.1)
            .unwrap()
            .build()
            .unwrap();
        let s = summarize(&m, 2).unwrap();
        assert_eq!(s.focal_count(), 2);
        assert!(s
            .mass_of(&frame().subset(["c", "d"]).unwrap())
            .approx_eq(&0.5));
    }

    #[test]
    fn belief_error_metric() {
        let orig = m();
        let s = summarize(&orig, 2).unwrap();
        let err = max_belief_error(&orig, &s);
        assert!(err > 0.0 && err <= 1.0);
        assert_eq!(max_belief_error(&orig, &orig), 0.0);
    }
}
