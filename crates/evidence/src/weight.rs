//! The numeric abstraction shared by all evidence computations.
//!
//! Every mass-function algorithm in this crate (normalization checks,
//! Bel/Pls, Dempster's rule, the alternative rules, the transforms) is
//! written once, generically, against [`Weight`]. Two implementations
//! are provided:
//!
//! * `f64` — the production representation used by the relational
//!   layers;
//! * [`crate::Ratio`] — exact `i128` rationals, used by the test suite
//!   and the paper-reproduction harness to check the paper's printed
//!   fractions without floating-point round-off.

use crate::error::EvidenceError;
use crate::ratio::Ratio;

/// A non-negative number usable as Dempster–Shafer mass.
///
/// Implementations must form an ordered field over the values actually
/// reachable from mass arithmetic (sums/products/quotients of values
/// in `[0, 1]`).
pub trait Weight: Clone + PartialEq + PartialOrd + std::fmt::Debug + std::fmt::Display {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact construction from a small ratio, e.g. `from_ratio(1, 3)`.
    fn from_ratio(num: u32, den: u32) -> Self;
    /// Addition. All weight arithmetic is fallible only for exact
    /// rationals; `f64` never fails.
    fn add(&self, other: &Self) -> Result<Self, EvidenceError>;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Result<Self, EvidenceError>;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Result<Self, EvidenceError>;
    /// Division.
    fn div(&self, other: &Self) -> Result<Self, EvidenceError>;
    /// `true` if this weight is (exactly or approximately) zero.
    fn is_zero(&self) -> bool;
    /// `true` if strictly greater than zero (beyond tolerance).
    fn is_positive(&self) -> bool {
        !self.is_zero() && Self::zero() < *self
    }
    /// Validity check on construction: finite and non-negative.
    fn is_valid_mass(&self) -> bool;
    /// Equality up to the representation's tolerance: exact for
    /// rationals, `1e-9` absolute for `f64`.
    fn approx_eq(&self, other: &Self) -> bool;
    /// Lossy conversion for display and thresholds.
    fn to_f64(&self) -> f64;
}

/// Absolute tolerance for `f64` mass comparisons. Combination chains
/// multiply and renormalize repeatedly; 1e-9 absorbs the accumulated
/// round-off of realistic pipelines while still catching genuine
/// normalization bugs (which miss by whole focal masses).
pub const F64_EPS: f64 = 1e-9;

impl Weight for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_ratio(num: u32, den: u32) -> Self {
        num as f64 / den as f64
    }

    fn add(&self, other: &Self) -> Result<Self, EvidenceError> {
        Ok(self + other)
    }

    fn sub(&self, other: &Self) -> Result<Self, EvidenceError> {
        Ok(self - other)
    }

    fn mul(&self, other: &Self) -> Result<Self, EvidenceError> {
        Ok(self * other)
    }

    fn div(&self, other: &Self) -> Result<Self, EvidenceError> {
        if *other == 0.0 {
            return Err(EvidenceError::RatioDivisionByZero);
        }
        Ok(self / other)
    }

    fn is_zero(&self) -> bool {
        self.abs() < F64_EPS
    }

    fn is_valid_mass(&self) -> bool {
        self.is_finite() && *self >= 0.0
    }

    fn approx_eq(&self, other: &Self) -> bool {
        (self - other).abs() < F64_EPS
    }

    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Weight for Ratio {
    fn zero() -> Self {
        Ratio::ZERO
    }

    fn one() -> Self {
        Ratio::ONE
    }

    fn from_ratio(num: u32, den: u32) -> Self {
        // Both arguments fit in i128 and den != 0 is enforced by the
        // public constructors that call this.
        Ratio::new(num as i128, den as i128).expect("nonzero denominator")
    }

    fn add(&self, other: &Self) -> Result<Self, EvidenceError> {
        self.checked_add(other)
    }

    fn sub(&self, other: &Self) -> Result<Self, EvidenceError> {
        self.checked_sub(other)
    }

    fn mul(&self, other: &Self) -> Result<Self, EvidenceError> {
        self.checked_mul(other)
    }

    fn div(&self, other: &Self) -> Result<Self, EvidenceError> {
        self.checked_div(other)
    }

    fn is_zero(&self) -> bool {
        Ratio::is_zero(self)
    }

    fn is_valid_mass(&self) -> bool {
        !self.is_zero() || self.numer() >= 0
    }

    fn approx_eq(&self, other: &Self) -> bool {
        self == other
    }

    fn to_f64(&self) -> f64 {
        Ratio::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ops() {
        let half = <f64 as Weight>::from_ratio(1, 2);
        let third = <f64 as Weight>::from_ratio(1, 3);
        assert!(half.add(&third).unwrap().approx_eq(&(5.0 / 6.0)));
        assert!(half.mul(&third).unwrap().approx_eq(&(1.0 / 6.0)));
        assert!(half.sub(&half).unwrap().is_zero());
        assert!(half.div(&third).unwrap().approx_eq(&1.5));
        assert_eq!(half.div(&0.0), Err(EvidenceError::RatioDivisionByZero));
    }

    #[test]
    fn f64_mass_validity() {
        assert!(0.0f64.is_valid_mass());
        assert!(1.0f64.is_valid_mass());
        assert!(!(-0.1f64).is_valid_mass());
        assert!(!f64::NAN.is_valid_mass());
        assert!(!f64::INFINITY.is_valid_mass());
    }

    #[test]
    fn ratio_ops_via_trait() {
        let half = <Ratio as Weight>::from_ratio(1, 2);
        let third = <Ratio as Weight>::from_ratio(1, 3);
        assert_eq!(half.add(&third).unwrap(), Ratio::new(5, 6).unwrap());
        assert!(half.is_positive());
        assert!(<Ratio as Weight>::zero().is_zero());
        assert!(half.approx_eq(&Ratio::new(2, 4).unwrap()));
    }

    #[test]
    fn f64_zero_tolerance() {
        assert!((1e-12f64).is_zero());
        assert!(!(1e-3f64).is_zero());
        assert!(Weight::is_positive(&0.1f64));
    }
}
