//! Canonical bitset subsets of a frame of discernment.

use std::cmp::Ordering;
use std::fmt;

const WORD_BITS: usize = 64;

/// A subset of a frame of discernment, stored as a canonical bitset.
///
/// Canonical form: trailing all-zero words are trimmed, so two sets
/// with the same members always compare equal and hash identically
/// regardless of the frame size they were built against. The empty set
/// has zero words.
///
/// Focal sets are immutable values; build them with
/// [`FocalSet::from_indices`], [`FocalSet::singleton`],
/// [`FocalSet::full`], or by set algebra on existing sets.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FocalSet {
    words: Box<[u64]>,
}

impl FocalSet {
    /// The empty set ∅.
    pub fn empty() -> FocalSet {
        FocalSet {
            words: Box::new([]),
        }
    }

    /// The singleton `{i}`.
    pub fn singleton(i: usize) -> FocalSet {
        let mut words = vec![0u64; i / WORD_BITS + 1];
        words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
        FocalSet {
            words: words.into_boxed_slice(),
        }
    }

    /// The full set `{0, 1, …, n-1}`.
    pub fn full(n: usize) -> FocalSet {
        if n == 0 {
            return FocalSet::empty();
        }
        let n_words = n.div_ceil(WORD_BITS);
        let mut words = vec![u64::MAX; n_words];
        let rem = n % WORD_BITS;
        if rem != 0 {
            words[n_words - 1] = (1u64 << rem) - 1;
        }
        FocalSet {
            words: words.into_boxed_slice(),
        }
    }

    /// Build from element indices (duplicates are fine).
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> FocalSet {
        let mut words: Vec<u64> = Vec::new();
        for i in indices {
            let w = i / WORD_BITS;
            if w >= words.len() {
                words.resize(w + 1, 0);
            }
            words[w] |= 1 << (i % WORD_BITS);
        }
        Self::trim(words)
    }

    fn trim(mut words: Vec<u64>) -> FocalSet {
        while words.last() == Some(&0) {
            words.pop();
        }
        FocalSet {
            words: words.into_boxed_slice(),
        }
    }

    /// Number of elements (popcount).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` for ∅.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / WORD_BITS)
            .is_some_and(|w| w & (1 << (i % WORD_BITS)) != 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &FocalSet) -> bool {
        if self.words.len() > other.words.len() {
            // self has a set bit beyond other's highest word iff canonical.
            return false;
        }
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &FocalSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &FocalSet) -> FocalSet {
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a & b)
            .collect();
        Self::trim(words)
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &FocalSet) -> FocalSet {
        let (long, short) = if self.words.len() >= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let mut words = long.to_vec();
        for (w, s) in words.iter_mut().zip(short.iter()) {
            *w |= s;
        }
        Self::trim(words)
    }

    /// `self \ other`.
    pub fn difference(&self, other: &FocalSet) -> FocalSet {
        let mut words = self.words.to_vec();
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        Self::trim(words)
    }

    /// Complement with respect to a frame of `n` elements: `Ω \ self`.
    pub fn complement(&self, n: usize) -> FocalSet {
        FocalSet::full(n).difference(self)
    }

    /// Iterate over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Smallest member, if any.
    pub fn min_index(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Largest member, if any.
    pub fn max_index(&self) -> Option<usize> {
        let wi = self.words.len().checked_sub(1)?;
        let w = self.words[wi];
        Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize))
    }
}

impl PartialOrd for FocalSet {
    fn partial_cmp(&self, other: &FocalSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FocalSet {
    /// Deterministic total order used for canonical display and sorted
    /// focal lists: first by cardinality, then lexicographically by
    /// member indices. Singletons therefore print before pairs before
    /// Ω, matching the layout of the paper's tables.
    fn cmp(&self, other: &FocalSet) -> Ordering {
        self.len()
            .cmp(&other.len())
            .then_with(|| self.iter().cmp(other.iter()))
    }
}

impl fmt::Debug for FocalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> FocalSet {
        FocalSet::from_indices(v.iter().copied())
    }

    #[test]
    fn construction() {
        assert!(FocalSet::empty().is_empty());
        assert_eq!(FocalSet::singleton(3).len(), 1);
        assert!(FocalSet::singleton(3).contains(3));
        assert_eq!(FocalSet::full(6).len(), 6);
        assert_eq!(FocalSet::full(64).len(), 64);
        assert_eq!(FocalSet::full(65).len(), 65);
        assert_eq!(set(&[1, 2, 1]).len(), 2);
    }

    #[test]
    fn canonical_form_is_frame_independent() {
        // {1} built directly vs. {1} arising from intersection with a
        // wide set must be identical.
        let a = FocalSet::singleton(1);
        let wide = set(&[1, 200]);
        let b = wide.intersect(&set(&[0, 1, 2]));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a.intersect(&b), set(&[2]));
        assert_eq!(a.union(&b), set(&[0, 1, 2, 3]));
        assert_eq!(a.difference(&b), set(&[0, 1]));
        assert!(a.intersects(&b));
        assert!(!set(&[0]).intersects(&set(&[1])));
        assert!(set(&[1]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(FocalSet::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn complement() {
        let a = set(&[0, 2]);
        assert_eq!(a.complement(4), set(&[1, 3]));
        assert_eq!(FocalSet::empty().complement(3), FocalSet::full(3));
        assert_eq!(FocalSet::full(3).complement(3), FocalSet::empty());
    }

    #[test]
    fn iteration_and_extremes() {
        let a = set(&[5, 64, 130]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64, 130]);
        assert_eq!(a.min_index(), Some(5));
        assert_eq!(a.max_index(), Some(130));
        assert_eq!(FocalSet::empty().min_index(), None);
        assert_eq!(FocalSet::empty().max_index(), None);
    }

    #[test]
    fn ordering_by_cardinality_then_lex() {
        let mut sets = vec![set(&[0, 1]), set(&[2]), set(&[0]), set(&[1, 2])];
        sets.sort();
        assert_eq!(sets, vec![set(&[0]), set(&[2]), set(&[0, 1]), set(&[1, 2])]);
    }

    #[test]
    fn cross_word_subset() {
        let small = set(&[3]);
        let large = set(&[3, 100]);
        assert!(small.is_subset_of(&large));
        assert!(!large.is_subset_of(&small));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(&[1, 3])), "{1,3}");
        assert_eq!(format!("{:?}", FocalSet::empty()), "{}");
    }
}
