//! Canonical bitset subsets of a frame of discernment.
//!
//! This is the §2 substrate every hot path sits on: Dempster's rule
//! intersects focal-element pairs, Bel/Pls/Q scan focal lists with
//! subset tests, and the extended union does both per merged tuple.
//! [`FocalSet`] therefore has two representations behind one canonical
//! value type:
//!
//! * an **inline `u128`** for sets whose members all lie below bit
//!   128 — every realistic attribute domain in the paper's workload
//!   (ratings, specialities, dishes) fits here, and all set algebra is
//!   branch-free word arithmetic with **zero heap allocation**;
//! * **boxed words** (`Box<[u64]>`) for frames wider than 128 values,
//!   kept trimmed so equality and hashing stay canonical.
//!
//! The representation is an internal detail: two sets with the same
//! members always compare equal, hash identically, and sort the same
//! way regardless of how they were built. [`FocalSet::as_bits`]
//! exposes the inline bits so the combination engine can memoize
//! intersections keyed by `(lhs_bits, rhs_bits)`.

use std::cmp::Ordering;
use std::fmt;

const WORD_BITS: usize = 64;
/// Largest element index (exclusive) representable inline.
const SMALL_BITS: usize = 128;

/// Internal representation. Canonical invariant: a set whose members
/// all lie below [`SMALL_BITS`] is always `Small`; `Big` word slices
/// are trimmed (no trailing zero words) and have more than two words,
/// i.e. at least one member ≥ 128. Unique representation per set value
/// makes the derived `PartialEq`/`Hash` canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small(u128),
    Big(Box<[u64]>),
}

/// A subset of a frame of discernment, stored as a canonical bitset.
///
/// Sets over frames of up to 128 values (the overwhelmingly common
/// case) are a single inline `u128` — construction and set algebra
/// never touch the heap. Wider frames fall back to a boxed word
/// vector with trailing zero words trimmed, so two sets with the same
/// members always compare equal and hash identically regardless of
/// the frame size they were built against. The empty set is inline
/// zero.
///
/// Focal sets are immutable values; build them with
/// [`FocalSet::from_indices`], [`FocalSet::singleton`],
/// [`FocalSet::full`], or by set algebra on existing sets.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FocalSet {
    repr: Repr,
}

impl FocalSet {
    /// The empty set ∅.
    pub fn empty() -> FocalSet {
        FocalSet {
            repr: Repr::Small(0),
        }
    }

    fn small(bits: u128) -> FocalSet {
        FocalSet {
            repr: Repr::Small(bits),
        }
    }

    /// Canonicalize a word vector: trim trailing zeros, and collapse
    /// into the inline representation when every member fits.
    fn from_words(mut words: Vec<u64>) -> FocalSet {
        while words.last() == Some(&0) {
            words.pop();
        }
        if words.len() <= 2 {
            let lo = words.first().copied().unwrap_or(0) as u128;
            let hi = words.get(1).copied().unwrap_or(0) as u128;
            return FocalSet::small(lo | (hi << WORD_BITS));
        }
        FocalSet {
            repr: Repr::Big(words.into_boxed_slice()),
        }
    }

    /// The singleton `{i}`.
    pub fn singleton(i: usize) -> FocalSet {
        if i < SMALL_BITS {
            return FocalSet::small(1u128 << i);
        }
        let mut words = vec![0u64; i / WORD_BITS + 1];
        words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
        FocalSet::from_words(words)
    }

    /// The full set `{0, 1, …, n-1}`.
    pub fn full(n: usize) -> FocalSet {
        if n == 0 {
            return FocalSet::empty();
        }
        if n <= SMALL_BITS {
            let bits = if n == SMALL_BITS {
                u128::MAX
            } else {
                (1u128 << n) - 1
            };
            return FocalSet::small(bits);
        }
        let n_words = n.div_ceil(WORD_BITS);
        let mut words = vec![u64::MAX; n_words];
        let rem = n % WORD_BITS;
        if rem != 0 {
            words[n_words - 1] = (1u64 << rem) - 1;
        }
        FocalSet::from_words(words)
    }

    /// Build from element indices (duplicates are fine).
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> FocalSet {
        let mut small: u128 = 0;
        let mut big: Option<Vec<u64>> = None;
        for i in indices {
            match &mut big {
                None if i < SMALL_BITS => small |= 1u128 << i,
                None => {
                    let mut words = vec![0u64; i / WORD_BITS + 1];
                    words[0] = small as u64;
                    words[1] = (small >> WORD_BITS) as u64;
                    words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
                    big = Some(words);
                }
                Some(words) => {
                    let w = i / WORD_BITS;
                    if w >= words.len() {
                        words.resize(w + 1, 0);
                    }
                    words[w] |= 1 << (i % WORD_BITS);
                }
            }
        }
        match big {
            Some(words) => FocalSet::from_words(words),
            None => FocalSet::small(small),
        }
    }

    /// The inline bit pattern, when every member lies below 128.
    ///
    /// This is the memoization key the combination engine uses: for
    /// inline sets, an intersection is a single `&` of the two
    /// returned values. Returns `None` for boxed (>128-element-frame)
    /// sets.
    pub fn as_bits(&self) -> Option<u128> {
        match self.repr {
            Repr::Small(bits) => Some(bits),
            Repr::Big(_) => None,
        }
    }

    /// Rebuild a set from an inline bit pattern — the inverse of
    /// [`FocalSet::as_bits`]. Allocation-free; the combination engine
    /// uses this to materialize each *distinct* intersection result
    /// exactly once instead of once per focal pair.
    pub fn from_bits(bits: u128) -> FocalSet {
        FocalSet::small(bits)
    }

    /// The element index, if this is a singleton `{i}`.
    pub fn as_singleton(&self) -> Option<usize> {
        match &self.repr {
            Repr::Small(bits) => (bits.count_ones() == 1).then(|| bits.trailing_zeros() as usize),
            Repr::Big(_) => (self.len() == 1).then(|| self.min_index().expect("len 1")),
        }
    }

    /// Number of elements (popcount).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(bits) => bits.count_ones() as usize,
            Repr::Big(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// `true` for ∅.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small(bits) => *bits == 0,
            // Canonical Big sets have a nonzero top word.
            Repr::Big(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        match &self.repr {
            Repr::Small(bits) => i < SMALL_BITS && bits & (1u128 << i) != 0,
            Repr::Big(words) => words
                .get(i / WORD_BITS)
                .is_some_and(|w| w & (1 << (i % WORD_BITS)) != 0),
        }
    }

    /// The low 128 bits of a boxed word slice.
    fn low_bits(words: &[u64]) -> u128 {
        let lo = words.first().copied().unwrap_or(0) as u128;
        let hi = words.get(1).copied().unwrap_or(0) as u128;
        lo | (hi << WORD_BITS)
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &FocalSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a & !b == 0,
            (Repr::Small(a), Repr::Big(b)) => a & !FocalSet::low_bits(b) == 0,
            // A canonical Big set has a member ≥ 128 that no Small set
            // contains.
            (Repr::Big(_), Repr::Small(_)) => false,
            (Repr::Big(a), Repr::Big(b)) => {
                a.len() <= b.len() && a.iter().zip(b.iter()).all(|(x, y)| x & !y == 0)
            }
        }
    }

    /// `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &FocalSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a & b != 0,
            (Repr::Small(a), Repr::Big(b)) | (Repr::Big(b), Repr::Small(a)) => {
                a & FocalSet::low_bits(b) != 0
            }
            (Repr::Big(a), Repr::Big(b)) => a.iter().zip(b.iter()).any(|(x, y)| x & y != 0),
        }
    }

    /// `self ∩ other`. Allocation-free unless the result itself has a
    /// member ≥ 128: the trimmed result length is computed first, so
    /// intersections of wide sets that land below 128 bits (the common
    /// case — intersections shrink) collapse straight into the inline
    /// representation.
    pub fn intersect(&self, other: &FocalSet) -> FocalSet {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => FocalSet::small(a & b),
            (Repr::Small(a), Repr::Big(b)) | (Repr::Big(b), Repr::Small(a)) => {
                FocalSet::small(a & FocalSet::low_bits(b))
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let n = a.len().min(b.len());
                // Trimmed result length: highest word with a nonzero AND.
                let mut top = n;
                while top > 0 && a[top - 1] & b[top - 1] == 0 {
                    top -= 1;
                }
                if top <= 2 {
                    let lo = if top > 0 { a[0] & b[0] } else { 0 } as u128;
                    let hi = if top > 1 { a[1] & b[1] } else { 0 } as u128;
                    FocalSet::small(lo | (hi << WORD_BITS))
                } else {
                    let words: Vec<u64> = a[..top]
                        .iter()
                        .zip(b[..top].iter())
                        .map(|(x, y)| x & y)
                        .collect();
                    FocalSet {
                        repr: Repr::Big(words.into_boxed_slice()),
                    }
                }
            }
        }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &FocalSet) -> FocalSet {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => FocalSet::small(a | b),
            (Repr::Small(a), Repr::Big(b)) | (Repr::Big(b), Repr::Small(a)) => {
                let mut words = b.to_vec();
                words[0] |= *a as u64;
                words[1] |= (a >> WORD_BITS) as u64;
                // b is canonical Big (top word nonzero), so the union
                // stays Big and trimmed.
                FocalSet {
                    repr: Repr::Big(words.into_boxed_slice()),
                }
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut words = long.to_vec();
                for (w, s) in words.iter_mut().zip(short.iter()) {
                    *w |= s;
                }
                FocalSet {
                    repr: Repr::Big(words.into_boxed_slice()),
                }
            }
        }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &FocalSet) -> FocalSet {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => FocalSet::small(a & !b),
            (Repr::Small(a), Repr::Big(b)) => FocalSet::small(a & !FocalSet::low_bits(b)),
            (Repr::Big(a), Repr::Small(b)) => {
                let mut words = a.to_vec();
                words[0] &= !(*b as u64);
                words[1] &= !((b >> WORD_BITS) as u64);
                // Top word untouched and nonzero: still canonical Big.
                FocalSet {
                    repr: Repr::Big(words.into_boxed_slice()),
                }
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let mut words = a.to_vec();
                for (w, o) in words.iter_mut().zip(b.iter()) {
                    *w &= !o;
                }
                FocalSet::from_words(words)
            }
        }
    }

    /// Complement with respect to a frame of `n` elements: `Ω \ self`.
    pub fn complement(&self, n: usize) -> FocalSet {
        FocalSet::full(n).difference(self)
    }

    /// Word `wi` of the bit pattern (zero beyond the set's extent).
    fn word(&self, wi: usize) -> u64 {
        match &self.repr {
            Repr::Small(bits) => match wi {
                0 => *bits as u64,
                1 => (bits >> WORD_BITS) as u64,
                _ => 0,
            },
            Repr::Big(words) => words.get(wi).copied().unwrap_or(0),
        }
    }

    fn word_count(&self) -> usize {
        match &self.repr {
            Repr::Small(_) => 2,
            Repr::Big(words) => words.len(),
        }
    }

    /// Iterate over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.word_count()).flat_map(move |wi| {
            let mut bits = self.word(wi);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Smallest member, if any.
    pub fn min_index(&self) -> Option<usize> {
        match &self.repr {
            Repr::Small(bits) => (*bits != 0).then(|| bits.trailing_zeros() as usize),
            Repr::Big(words) => words
                .iter()
                .position(|&w| w != 0)
                .map(|wi| wi * WORD_BITS + words[wi].trailing_zeros() as usize),
        }
    }

    /// Largest member, if any.
    pub fn max_index(&self) -> Option<usize> {
        match &self.repr {
            Repr::Small(bits) => {
                (*bits != 0).then(|| SMALL_BITS - 1 - bits.leading_zeros() as usize)
            }
            Repr::Big(words) => {
                // Canonical: the top word is nonzero.
                let wi = words.len() - 1;
                Some(wi * WORD_BITS + (WORD_BITS - 1 - words[wi].leading_zeros() as usize))
            }
        }
    }
}

impl PartialOrd for FocalSet {
    fn partial_cmp(&self, other: &FocalSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FocalSet {
    /// Deterministic total order used for canonical display and sorted
    /// focal lists: first by cardinality, then lexicographically by
    /// member indices. Singletons therefore print before pairs before
    /// Ω, matching the layout of the paper's tables.
    fn cmp(&self, other: &FocalSet) -> Ordering {
        self.len()
            .cmp(&other.len())
            .then_with(|| self.iter().cmp(other.iter()))
    }
}

impl fmt::Debug for FocalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> FocalSet {
        FocalSet::from_indices(v.iter().copied())
    }

    #[test]
    fn construction() {
        assert!(FocalSet::empty().is_empty());
        assert_eq!(FocalSet::singleton(3).len(), 1);
        assert!(FocalSet::singleton(3).contains(3));
        assert_eq!(FocalSet::full(6).len(), 6);
        assert_eq!(FocalSet::full(64).len(), 64);
        assert_eq!(FocalSet::full(65).len(), 65);
        assert_eq!(FocalSet::full(128).len(), 128);
        assert_eq!(FocalSet::full(129).len(), 129);
        assert_eq!(set(&[1, 2, 1]).len(), 2);
        assert_eq!(FocalSet::singleton(200).len(), 1);
        assert!(FocalSet::singleton(200).contains(200));
    }

    #[test]
    fn small_representation_is_inline() {
        assert_eq!(set(&[0, 127]).as_bits(), Some(1 | (1u128 << 127)));
        assert_eq!(set(&[0, 128]).as_bits(), None);
        assert_eq!(FocalSet::empty().as_bits(), Some(0));
    }

    #[test]
    fn singleton_views() {
        assert_eq!(set(&[5]).as_singleton(), Some(5));
        assert_eq!(set(&[200]).as_singleton(), Some(200));
        assert_eq!(set(&[1, 2]).as_singleton(), None);
        assert_eq!(FocalSet::empty().as_singleton(), None);
    }

    #[test]
    fn canonical_form_is_frame_independent() {
        // {1} built directly vs. {1} arising from intersection with a
        // wide set must be identical.
        let a = FocalSet::singleton(1);
        let wide = set(&[1, 200]);
        let b = wide.intersect(&set(&[0, 1, 2]));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn canonical_collapse_across_the_128_boundary() {
        // Big ∩ Big landing below 128 bits collapses to inline.
        let a = set(&[5, 64, 300]);
        let b = set(&[5, 64, 301]);
        let i = a.intersect(&b);
        assert_eq!(i, set(&[5, 64]));
        assert!(i.as_bits().is_some());
        // Big \ Big likewise.
        let d = a.difference(&FocalSet::singleton(300));
        assert_eq!(d, set(&[5, 64]));
        assert!(d.as_bits().is_some());
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a.intersect(&b), set(&[2]));
        assert_eq!(a.union(&b), set(&[0, 1, 2, 3]));
        assert_eq!(a.difference(&b), set(&[0, 1]));
        assert!(a.intersects(&b));
        assert!(!set(&[0]).intersects(&set(&[1])));
        assert!(set(&[1]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(FocalSet::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn mixed_representation_algebra() {
        let small = set(&[1, 100]);
        let big = set(&[1, 200]);
        assert_eq!(small.intersect(&big), set(&[1]));
        assert_eq!(big.intersect(&small), set(&[1]));
        assert_eq!(small.union(&big), set(&[1, 100, 200]));
        assert_eq!(big.union(&small), set(&[1, 100, 200]));
        assert_eq!(small.difference(&big), set(&[100]));
        assert_eq!(big.difference(&small), set(&[200]));
        assert!(small.intersects(&big) && big.intersects(&small));
        assert!(set(&[1]).is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(!small.is_subset_of(&big));
        assert!(big.is_subset_of(&set(&[1, 100, 200])));
        assert!(!set(&[150]).intersects(&set(&[1, 2])));
    }

    #[test]
    fn complement() {
        let a = set(&[0, 2]);
        assert_eq!(a.complement(4), set(&[1, 3]));
        assert_eq!(FocalSet::empty().complement(3), FocalSet::full(3));
        assert_eq!(FocalSet::full(3).complement(3), FocalSet::empty());
        // Across the inline boundary.
        let wide = FocalSet::singleton(130);
        let comp = wide.complement(132);
        assert_eq!(comp.len(), 131);
        assert!(!comp.contains(130));
        assert!(comp.contains(131));
    }

    #[test]
    fn iteration_and_extremes() {
        let a = set(&[5, 64, 130]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64, 130]);
        assert_eq!(a.min_index(), Some(5));
        assert_eq!(a.max_index(), Some(130));
        assert_eq!(FocalSet::empty().min_index(), None);
        assert_eq!(FocalSet::empty().max_index(), None);
        let b = set(&[3, 127]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 127]);
        assert_eq!(b.min_index(), Some(3));
        assert_eq!(b.max_index(), Some(127));
    }

    #[test]
    fn ordering_by_cardinality_then_lex() {
        let mut sets = vec![set(&[0, 1]), set(&[2]), set(&[0]), set(&[1, 2])];
        sets.sort();
        assert_eq!(sets, vec![set(&[0]), set(&[2]), set(&[0, 1]), set(&[1, 2])]);
    }

    #[test]
    fn cross_word_subset() {
        let small = set(&[3]);
        let large = set(&[3, 100]);
        assert!(small.is_subset_of(&large));
        assert!(!large.is_subset_of(&small));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(&[1, 3])), "{1,3}");
        assert_eq!(format!("{:?}", FocalSet::empty()), "{}");
    }
}
