//! # evirel-evidence — a Dempster–Shafer theory-of-evidence substrate
//!
//! This crate implements, from scratch, the portions of the
//! Dempster–Shafer theory of evidence (G. Shafer, *A Mathematical
//! Theory of Evidence*, Princeton, 1976) required by Lim, Srivastava &
//! Shekhar, *"Resolving Attribute Incompatibility in Database
//! Integration: An Evidential Reasoning Approach"* (ICDE 1994):
//!
//! * [`Frame`] — a finite frame of discernment Ω (an attribute domain);
//! * [`FocalSet`] — a canonical bitset subset of a frame;
//! * [`MassFunction`] — a basic probability assignment `m : 2^Ω → [0,1]`
//!   with `m(∅) = 0` and `Σ m = 1`, generic over the numeric
//!   [`Weight`] so the paper's exact fractions (e.g. `3/7`, `2/21`)
//!   can be verified with [`Ratio`] arithmetic while production code
//!   uses `f64`;
//! * belief `Bel`, plausibility `Pls`, commonality `Q` and related
//!   functionals ([`MassFunction::bel`], [`MassFunction::pls`], …);
//! * Dempster's rule of combination with explicit conflict mass κ
//!   ([`combine::dempster`]), plus alternative rules (Yager,
//!   Dubois–Prade, mixing) in [`rules`] for ablation studies;
//! * decision transforms (pignistic, plausibility) in [`transform`];
//! * focal-element approximation (summarization) in [`approx`].
//!
//! The crate is deliberately self-contained: it has **no**
//! dependencies, so the relational layers built on top of it
//! (`evirel-relation`, `evirel-algebra`) inherit no transitive
//! baggage.
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module | What it implements |
//! |---|---|---|
//! | §2.1 frames Ω | [`frame`], [`interner`] | attribute domains; incremental value→bit interning |
//! | §2.1 subsets of Ω | [`focal`] | canonical bitset focal elements (`u128` inline / boxed words) |
//! | §2.1 mass, Bel, Pls | [`mass`], [`measures`] | basic probability assignments and derived functionals |
//! | §2.2 Dempster's rule | [`combine`] | the hot-path combination engine (singleton fast path, bitset memo) |
//! | §2.2 alternatives | [`rules`] | Yager, Dubois–Prade, mixing — ablation rules |
//! | — (Shafer 1976) | [`mod@discount`] | source discounting and Dempster conditioning |
//! | — (Lowrance 1986) | [`approx`] | focal-element summarization for long chains |
//! | — (Smets) | [`transform`] | pignistic / plausibility decision transforms |
//! | exact table checks | [`ratio`], [`weight`] | `i128` rationals behind the generic [`Weight`] |
//! | executable spec | [`mod@reference`] | the retained `BTreeSet` implementation the engine is tested against |
//!
//! ## Example
//!
//! The running example of the paper (§2.1–§2.2): the speciality of the
//! restaurant *wok* according to two source databases.
//!
//! ```
//! use evirel_evidence::{Frame, MassFunction, combine};
//! use std::sync::Arc;
//!
//! let frame = Arc::new(Frame::new(
//!     "speciality",
//!     ["american", "hunan", "sichuan", "cantonese", "mughalai", "italian"],
//! ));
//!
//! // DB1: m1({cantonese}) = 1/2, m1({hunan, sichuan}) = 1/3, m1(Ω) = 1/6
//! let m1 = MassFunction::<f64>::builder(Arc::clone(&frame))
//!     .add(["cantonese"], 1.0 / 2.0).unwrap()
//!     .add(["hunan", "sichuan"], 1.0 / 3.0).unwrap()
//!     .add_omega(1.0 / 6.0)
//!     .build().unwrap();
//!
//! // DB2: m2({cantonese, hunan}) = 1/2, m2({hunan}) = 1/4, m2(Ω) = 1/4
//! let m2 = MassFunction::<f64>::builder(Arc::clone(&frame))
//!     .add(["cantonese", "hunan"], 1.0 / 2.0).unwrap()
//!     .add(["hunan"], 1.0 / 4.0).unwrap()
//!     .add_omega(1.0 / 4.0)
//!     .build().unwrap();
//!
//! let combined = combine::dempster(&m1, &m2).unwrap();
//! assert!((combined.conflict - 1.0 / 8.0).abs() < 1e-12);          // κ = 1/8
//! let cantonese = frame.subset(["cantonese"]).unwrap();
//! assert!((combined.mass.mass_of(&cantonese) - 3.0 / 7.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod approx;
pub mod combine;
pub mod discount;
pub mod error;
pub mod focal;
pub mod frame;
pub mod interner;
pub mod mass;
pub mod measures;
pub mod ratio;
pub mod reference;
pub mod rules;
pub mod transform;
pub mod weight;

pub use combine::{dempster, dempster_all, dempster_with, Combination, Scratch};
pub use discount::{condition, discount, weight_of_conflict};
pub use error::EvidenceError;
pub use focal::FocalSet;
pub use frame::Frame;
pub use interner::FrameInterner;
pub use mass::{MassBuilder, MassFunction};
pub use ratio::Ratio;
pub use weight::Weight;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, EvidenceError>;
