//! Uncertainty measures on mass functions.
//!
//! **Extensions** beyond the 1994 paper: the classical information
//! measures for belief functions, used by the comparison harness and
//! EXPERIMENTS.md to quantify what each merge approach retains.
//!
//! * [`nonspecificity`] — Dubois & Prade's generalized Hartley measure
//!   `N(m) = Σ m(A)·log₂|A|`: how *imprecise* the evidence is
//!   (0 for Bayesian functions, log₂|Ω| for the vacuous one).
//! * [`discord`] — Yager's dissonance `E(m) = −Σ m(A)·log₂ Pls(A)`:
//!   how much the evidence *contradicts itself*.
//! * [`total_uncertainty`] — their sum, an aggregate uncertainty in
//!   the style of Klir.
//! * [`specificity`] — expected focal cardinality `Σ m(A)·|A|`, the
//!   simple measure the baselines comparison reports.

use crate::mass::MassFunction;
use crate::weight::Weight;

/// Dubois–Prade nonspecificity `N(m) = Σ m(A) log₂ |A|` in bits.
pub fn nonspecificity<W: Weight>(m: &MassFunction<W>) -> f64 {
    m.iter()
        .map(|(set, w)| w.to_f64() * (set.len() as f64).log2())
        .sum()
}

/// Yager's discord (dissonance) `E(m) = −Σ m(A) log₂ Pls(A)` in bits.
///
/// `Pls` of every focal element is needed, which is quadratic in the
/// focal count; when all focal elements are inline bitsets (frames of
/// ≤ 128 values) the inner loop is a plain word-AND scan over one
/// snapshot of the bit patterns.
pub fn discord<W: Weight>(m: &MassFunction<W>) -> f64 {
    let bits: Option<Vec<(u128, f64)>> = m
        .iter()
        .map(|(s, w)| s.as_bits().map(|b| (b, w.to_f64())))
        .collect();
    if let Some(bits) = bits {
        return bits
            .iter()
            .map(|(x, w)| {
                let pls: f64 = bits
                    .iter()
                    .filter(|(y, _)| x & y != 0)
                    .map(|(_, v)| v)
                    .sum();
                if pls > 0.0 {
                    -w * pls.log2()
                } else {
                    0.0
                }
            })
            .sum();
    }
    m.iter()
        .map(|(set, w)| {
            let pls = m.pls(set).to_f64();
            if pls > 0.0 {
                -w.to_f64() * pls.log2()
            } else {
                0.0
            }
        })
        .sum()
}

/// `N(m) + E(m)` — a Klir-style aggregate uncertainty in bits.
pub fn total_uncertainty<W: Weight>(m: &MassFunction<W>) -> f64 {
    nonspecificity(m) + discord(m)
}

/// Expected focal cardinality `Σ m(A)·|A|` (1.0 = definite,
/// |Ω| = vacuous). Unit-free.
pub fn specificity<W: Weight>(m: &MassFunction<W>) -> f64 {
    m.iter().map(|(set, w)| w.to_f64() * set.len() as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c", "d"]))
    }

    fn m(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
        let mut b = MassFunction::<f64>::builder(frame());
        for (labels, w) in entries {
            b = b.add(labels.iter().copied(), *w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn nonspecificity_extremes() {
        // Definite: 0 bits. Vacuous: log2(4) = 2 bits.
        assert_eq!(nonspecificity(&m(&[(&["a"], 1.0)])), 0.0);
        let vac = MassFunction::<f64>::vacuous(frame()).unwrap();
        assert!((nonspecificity(&vac) - 2.0).abs() < 1e-12);
        // Bayesian functions have zero nonspecificity.
        assert_eq!(nonspecificity(&m(&[(&["a"], 0.5), (&["b"], 0.5)])), 0.0);
    }

    #[test]
    fn nonspecificity_monotone_in_focal_size() {
        let narrow = m(&[(&["a", "b"], 1.0)]);
        let wide = m(&[(&["a", "b", "c"], 1.0)]);
        assert!(nonspecificity(&narrow) < nonspecificity(&wide));
    }

    #[test]
    fn discord_zero_for_consonant_evidence() {
        // Nested focal elements never contradict: Pls of every focal
        // element is 1.
        let consonant = m(&[(&["a"], 0.5), (&["a", "b"], 0.3), (&["a", "b", "c"], 0.2)]);
        assert!(discord(&consonant).abs() < 1e-12);
        // The vacuous function has no discord either.
        let vac = MassFunction::<f64>::vacuous(frame()).unwrap();
        assert!(discord(&vac).abs() < 1e-12);
    }

    #[test]
    fn discord_positive_for_conflicting_evidence() {
        let conflicted = m(&[(&["a"], 0.5), (&["b"], 0.5)]);
        // Pls({a}) = Pls({b}) = 0.5 → E = -log2(0.5) = 1 bit.
        assert!((discord(&conflicted) - 1.0).abs() < 1e-12);
        let lopsided = m(&[(&["a"], 0.9), (&["b"], 0.1)]);
        assert!(discord(&lopsided) < discord(&conflicted));
    }

    #[test]
    fn dempster_combination_reduces_nonspecificity() {
        use crate::combine::dempster;
        let a = m(&[(&["a", "b"], 0.6), (&["a", "b", "c", "d"], 0.4)]);
        let b = m(&[(&["a", "b", "c"], 1.0)]);
        let c = dempster(&a, &b).unwrap();
        assert!(nonspecificity(&c.mass) <= nonspecificity(&a) + 1e-12);
    }

    #[test]
    fn total_uncertainty_and_specificity() {
        let vac = MassFunction::<f64>::vacuous(frame()).unwrap();
        assert!((total_uncertainty(&vac) - 2.0).abs() < 1e-12);
        assert!((specificity(&vac) - 4.0).abs() < 1e-12);
        assert!((specificity(&m(&[(&["a"], 1.0)])) - 1.0).abs() < 1e-12);
        let mixed = m(&[(&["a", "b"], 0.5), (&["c"], 0.5)]);
        assert!((specificity(&mixed) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn measures_work_on_exact_rationals() {
        use crate::ratio::Ratio;
        let vac = MassFunction::<Ratio>::vacuous(frame()).unwrap();
        assert!((nonspecificity(&vac) - 2.0).abs() < 1e-12);
        assert!((specificity(&vac) - 4.0).abs() < 1e-12);
    }
}
