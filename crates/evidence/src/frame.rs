//! Frames of discernment (attribute domains).

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A finite frame of discernment Ω — the set of mutually exclusive,
/// exhaustive values an attribute may take (the paper's `Ω_A`).
///
/// Elements are identified by their position (`0..len()`); labels are
/// kept for presentation and lookup. The order of elements is
/// significant: the relational layer maps it to the domain's natural
/// value ordering, which θ-predicates rely on.
#[derive(Debug, Clone)]
pub struct Frame {
    name: Arc<str>,
    labels: Vec<Arc<str>>,
    index: HashMap<Arc<str>, usize>,
}

impl Frame {
    /// Build a frame from a name and an ordered list of labels.
    ///
    /// Duplicate labels are collapsed (first occurrence wins), matching
    /// set semantics. This is a one-shot [`crate::FrameInterner`]: each
    /// label's position is its bit position in every [`FocalSet`] built
    /// against this frame. Domains discovered incrementally should use
    /// the interner directly and [`crate::FrameInterner::freeze`] when
    /// done.
    pub fn new<N, I, L>(name: N, labels: I) -> Frame
    where
        N: Into<Arc<str>>,
        I: IntoIterator<Item = L>,
        L: Into<Arc<str>>,
    {
        crate::interner::FrameInterner::with_labels(name, labels).into_frame()
    }

    /// Assemble a frame from an interner's parts (the single
    /// construction path; see [`crate::FrameInterner::freeze`]).
    pub(crate) fn from_parts(
        name: Arc<str>,
        labels: Vec<Arc<str>>,
        index: HashMap<Arc<str>, usize>,
    ) -> Frame {
        Frame {
            name,
            labels,
            index,
        }
    }

    /// Re-open this frame's label-to-bit mapping as a mutable
    /// [`crate::FrameInterner`] (e.g. to extend the domain with values
    /// from a newly integrated source, then freeze a wider frame).
    pub fn interner(&self) -> crate::interner::FrameInterner {
        crate::interner::FrameInterner::from_frame(self)
    }

    /// The frame's name (e.g. `"speciality"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements |Ω|.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the frame has no elements.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of element `i`.
    ///
    /// # Errors
    /// [`EvidenceError::IndexOutOfBounds`] if `i >= len()`.
    pub fn label(&self, i: usize) -> Result<&str, EvidenceError> {
        self.labels
            .get(i)
            .map(|l| &**l)
            .ok_or(EvidenceError::IndexOutOfBounds {
                index: i,
                frame_size: self.len(),
            })
    }

    /// Index of `label`.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] if the label is not in the frame.
    pub fn index_of(&self, label: &str) -> Result<usize, EvidenceError> {
        self.index
            .get(label)
            .copied()
            .ok_or_else(|| EvidenceError::UnknownLabel {
                label: label.to_owned(),
                frame: self.name.to_string(),
            })
    }

    /// Iterate over the labels in element order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(|l| &**l)
    }

    /// Build a [`FocalSet`] from labels.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] for any label missing from the frame.
    pub fn subset<I, L>(&self, labels: I) -> Result<FocalSet, EvidenceError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<str>,
    {
        let mut indices = Vec::new();
        for l in labels {
            indices.push(self.index_of(l.as_ref())?);
        }
        Ok(FocalSet::from_indices(indices))
    }

    /// The full set Ω.
    pub fn omega(&self) -> FocalSet {
        FocalSet::full(self.len())
    }

    /// The singleton `{label}`.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] if the label is not in the frame.
    pub fn singleton(&self, label: &str) -> Result<FocalSet, EvidenceError> {
        Ok(FocalSet::singleton(self.index_of(label)?))
    }

    /// Render a focal set with this frame's labels, in element order,
    /// e.g. `{hunan, sichuan}`; Ω renders as `Ω`.
    pub fn render(&self, set: &FocalSet) -> String {
        if set.len() == self.len() && !self.is_empty() {
            return "Ω".to_owned();
        }
        let mut out = String::from("{");
        let mut first = true;
        for i in set.iter() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(self.labels.get(i).map(|l| &**l).unwrap_or("?"));
        }
        out.push('}');
        out
    }
}

impl PartialEq for Frame {
    /// Frames are equal when they have the same name and the same
    /// labels in the same order. (Combination across equal-but-distinct
    /// `Arc`s is permitted.)
    fn eq(&self, other: &Frame) -> bool {
        self.name == other.name && self.labels == other.labels
    }
}

impl Eq for Frame {}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} elements)", self.name, self.len())
    }
}

/// Convenience: build a frame of the integers `lo..=hi` (used by
/// numeric θ-predicate tests and workload generators).
pub fn int_frame(name: &str, lo: i64, hi: i64) -> Frame {
    Frame::new(name, (lo..=hi).map(|v| v.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speciality() -> Frame {
        Frame::new(
            "speciality",
            [
                "american",
                "hunan",
                "sichuan",
                "cantonese",
                "mughalai",
                "italian",
            ],
        )
    }

    #[test]
    fn construction_and_lookup() {
        let f = speciality();
        assert_eq!(f.len(), 6);
        assert_eq!(f.name(), "speciality");
        assert_eq!(f.index_of("hunan").unwrap(), 1);
        assert_eq!(f.label(3).unwrap(), "cantonese");
        assert!(f.index_of("thai").is_err());
        assert!(f.label(6).is_err());
    }

    #[test]
    fn duplicate_labels_collapse() {
        let f = Frame::new("f", ["a", "b", "a"]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.index_of("a").unwrap(), 0);
    }

    #[test]
    fn subsets_and_omega() {
        let f = speciality();
        let s = f.subset(["hunan", "sichuan"]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(1) && s.contains(2));
        assert_eq!(f.omega().len(), 6);
        assert_eq!(f.singleton("cantonese").unwrap().len(), 1);
        assert!(f.subset(["nope"]).is_err());
    }

    #[test]
    fn rendering() {
        let f = speciality();
        let s = f.subset(["hunan", "sichuan"]).unwrap();
        assert_eq!(f.render(&s), "{hunan, sichuan}");
        assert_eq!(f.render(&f.omega()), "Ω");
        assert_eq!(f.render(&f.singleton("american").unwrap()), "{american}");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(speciality(), speciality());
        let other = Frame::new("speciality", ["a", "b"]);
        assert_ne!(speciality(), other);
    }

    #[test]
    fn int_frames() {
        let f = int_frame("votes", 1, 6);
        assert_eq!(f.len(), 6);
        assert_eq!(f.index_of("4").unwrap(), 3);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new("empty", Vec::<String>::new());
        assert!(f.is_empty());
        assert_eq!(f.omega().len(), 0);
    }
}
