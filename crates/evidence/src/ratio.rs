//! Exact rational arithmetic over `i128`.
//!
//! The paper's worked examples print exact fractions (κ = 1/8,
//! `m1⊕m2({cantonese}) = 3/7`, `m1⊕m2(Ω) = 1/21`, …). To verify our
//! implementation reproduces them *exactly* — rather than merely to
//! within floating-point tolerance — the combination machinery is
//! generic over [`crate::weight::Weight`], and this module provides the
//! exact implementation.
//!
//! `Ratio` is always kept in canonical form: the denominator is
//! positive and `gcd(|num|, den) == 1`. Arithmetic uses checked `i128`
//! operations and reduces eagerly, which is ample for the magnitudes
//! produced by evidence combination over realistic mass assignments.

use crate::error::EvidenceError;
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num / den` in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Construct `num / den`, reducing to canonical form.
    ///
    /// # Errors
    /// Returns [`EvidenceError::RatioDivisionByZero`] if `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Ratio, EvidenceError> {
        if den == 0 {
            return Err(EvidenceError::RatioDivisionByZero);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Ok(Ratio::ZERO);
        }
        Ok(Ratio {
            num: sign * num / g,
            den: (den / g).abs(),
        })
    }

    /// Construct from an integer.
    pub fn from_int(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The numerator of the canonical form.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator of the canonical form (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Ratio) -> Result<Ratio, EvidenceError> {
        let g = gcd(self.den, other.den);
        let lcm_part = other.den / g;
        let lhs = self
            .num
            .checked_mul(lcm_part)
            .ok_or(EvidenceError::RatioOverflow)?;
        let rhs = other
            .num
            .checked_mul(self.den / g)
            .ok_or(EvidenceError::RatioOverflow)?;
        let num = lhs.checked_add(rhs).ok_or(EvidenceError::RatioOverflow)?;
        let den = self
            .den
            .checked_mul(lcm_part)
            .ok_or(EvidenceError::RatioOverflow)?;
        Ratio::new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Ratio) -> Result<Ratio, EvidenceError> {
        self.checked_add(&Ratio {
            num: -other.num,
            den: other.den,
        })
    }

    /// Checked multiplication (cross-reduces before multiplying to
    /// keep intermediates small).
    pub fn checked_mul(&self, other: &Ratio) -> Result<Ratio, EvidenceError> {
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(EvidenceError::RatioOverflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(EvidenceError::RatioOverflow)?;
        Ratio::new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Ratio) -> Result<Ratio, EvidenceError> {
        if other.num == 0 {
            return Err(EvidenceError::RatioDivisionByZero);
        }
        self.checked_mul(&Ratio {
            num: other.den,
            den: other.num,
        })
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b (b, d > 0). Use i128 checked
        // math; fall back to f64 on (unrealistic) overflow.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Ratio {
    /// Renders `n` when the denominator is 1 and `n/d` otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn canonical_form_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Ratio::ZERO);
    }

    #[test]
    fn zero_denominator_is_error() {
        assert_eq!(Ratio::new(1, 0), Err(EvidenceError::RatioDivisionByZero));
    }

    #[test]
    fn addition() {
        assert_eq!(r(1, 2).checked_add(&r(1, 3)).unwrap(), r(5, 6));
        assert_eq!(r(1, 2).checked_add(&r(-1, 2)).unwrap(), Ratio::ZERO);
    }

    #[test]
    fn subtraction() {
        assert_eq!(r(1, 2).checked_sub(&r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(Ratio::ONE.checked_sub(&r(1, 8)).unwrap(), r(7, 8));
    }

    #[test]
    fn multiplication() {
        assert_eq!(r(2, 3).checked_mul(&r(3, 4)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).checked_mul(&Ratio::ZERO).unwrap(), Ratio::ZERO);
    }

    #[test]
    fn division() {
        assert_eq!(r(1, 2).checked_div(&r(1, 4)).unwrap(), r(2, 1));
        assert_eq!(
            r(1, 2).checked_div(&Ratio::ZERO),
            Err(EvidenceError::RatioDivisionByZero)
        );
    }

    #[test]
    fn paper_normalization_example() {
        // §2.2: (1/4 + 1/8) / (1 - 1/8) = 3/7
        let raw = r(1, 4).checked_add(&r(1, 8)).unwrap();
        let norm = Ratio::ONE.checked_sub(&r(1, 8)).unwrap();
        assert_eq!(raw.checked_div(&norm).unwrap(), r(3, 7));
        // (1/6 + 1/12 + 1/24) / (7/8) = 1/3
        let raw = r(1, 6)
            .checked_add(&r(1, 12))
            .unwrap()
            .checked_add(&r(1, 24))
            .unwrap();
        assert_eq!(raw.checked_div(&norm).unwrap(), r(1, 3));
        // (1/12) / (7/8) = 2/21 ; (1/24) / (7/8) = 1/21
        assert_eq!(r(1, 12).checked_div(&norm).unwrap(), r(2, 21));
        assert_eq!(r(1, 24).checked_div(&norm).unwrap(), r(1, 21));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Ratio::ZERO);
        assert!(r(7, 8) < Ratio::ONE);
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 7).to_string(), "3/7");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(Ratio::ZERO.to_string(), "0");
    }

    #[test]
    fn to_f64_matches() {
        assert!((r(3, 7).to_f64() - 3.0 / 7.0).abs() < 1e-15);
    }
}
