//! The pre-bitset reference implementation of §2, kept on purpose.
//!
//! Before the interned-bitset rework, focal elements were plain sorted
//! integer sets and every operation was written directly off the
//! paper's definitions. This module preserves that implementation over
//! `BTreeSet<usize>` — quadratic loops, per-pair allocations and all —
//! as an *executable specification*:
//!
//! * it is trivially auditable against §2 of the paper;
//! * the property suite (`tests/bitset_reference.rs`) pits the
//!   optimized engine in [`crate::combine`] and the measures on
//!   [`MassFunction`] against it over random frames, including frames
//!   wider than 128 values that exercise the boxed-words
//!   [`crate::FocalSet`] representation.
//!
//! Nothing here is reachable from the production hot path; if you are
//! not writing an equivalence test, you want [`crate::combine`].

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::mass::MassFunction;
use crate::weight::Weight;
use std::collections::BTreeSet;

/// A focal element as a plain ordered set of element indices.
pub type RefSet = BTreeSet<usize>;

/// Convert a bitset focal element to the reference representation.
pub fn to_ref_set(set: &FocalSet) -> RefSet {
    set.iter().collect()
}

/// Convert a reference set back to the bitset representation.
pub fn from_ref_set(set: &RefSet) -> FocalSet {
    FocalSet::from_indices(set.iter().copied())
}

/// A mass function in the reference representation: an association
/// list of `(focal element, mass)` pairs with no canonical order.
pub struct RefMass<W> {
    entries: Vec<(RefSet, W)>,
}

impl<W: Weight> RefMass<W> {
    /// Snapshot a production mass function into the reference form.
    pub fn of(m: &MassFunction<W>) -> RefMass<W> {
        RefMass {
            entries: m.iter().map(|(s, w)| (to_ref_set(s), w.clone())).collect(),
        }
    }

    /// `Bel(A) = Σ_{X ⊆ A} m(X)`, by definition.
    pub fn bel(&self, a: &RefSet) -> Result<W, EvidenceError> {
        self.sum_where(|x| x.is_subset(a))
    }

    /// `Pls(A) = Σ_{X ∩ A ≠ ∅} m(X)`, by definition.
    pub fn pls(&self, a: &RefSet) -> Result<W, EvidenceError> {
        self.sum_where(|x| x.intersection(a).next().is_some())
    }

    /// `Q(A) = Σ_{A ⊆ X} m(X)`, by definition.
    pub fn commonality(&self, a: &RefSet) -> Result<W, EvidenceError> {
        self.sum_where(|x| a.is_subset(x))
    }

    fn sum_where(&self, mut pred: impl FnMut(&RefSet) -> bool) -> Result<W, EvidenceError> {
        let mut acc = W::zero();
        for (s, w) in &self.entries {
            if pred(s) {
                acc = acc.add(w)?;
            }
        }
        Ok(acc)
    }
}

/// Dempster's rule exactly as §2.2 states it: the full pairwise loop
/// with `BTreeSet` intersections, normalized by `1 − κ`. Returns the
/// combined entries (unsorted, unvalidated) and the conflict κ.
///
/// # Errors
/// * [`EvidenceError::TotalConflict`] if κ = 1;
/// * arithmetic errors from the weight type.
pub fn dempster_raw<W: Weight>(
    a: &RefMass<W>,
    b: &RefMass<W>,
) -> Result<(Vec<(RefSet, W)>, W), EvidenceError> {
    let mut acc: Vec<(RefSet, W)> = Vec::new();
    let mut conflict = W::zero();
    for (x, wx) in &a.entries {
        for (y, wy) in &b.entries {
            let product = wx.mul(wy)?;
            if product.is_zero() {
                continue;
            }
            let z: RefSet = x.intersection(y).copied().collect();
            if z.is_empty() {
                conflict = conflict.add(&product)?;
            } else {
                match acc.iter_mut().find(|(s, _)| *s == z) {
                    Some((_, w)) => *w = w.add(&product)?,
                    None => acc.push((z, product)),
                }
            }
        }
    }
    if acc.is_empty() || conflict.approx_eq(&W::one()) {
        return Err(EvidenceError::TotalConflict);
    }
    let denom = W::one().sub(&conflict)?;
    for (_, w) in &mut acc {
        *w = w.div(&denom)?;
    }
    Ok((acc, conflict))
}

/// Dempster's rule via the reference representation, returned as a
/// production [`MassFunction`] (validated by the public builder) plus
/// the conflict κ, so equivalence tests can compare it directly
/// against [`crate::combine::dempster`].
///
/// # Errors
/// As [`dempster_raw`], plus frame-mismatch and validation errors.
pub fn dempster<W: Weight>(
    a: &MassFunction<W>,
    b: &MassFunction<W>,
) -> Result<(MassFunction<W>, W), EvidenceError> {
    if a.frame() != b.frame() {
        return Err(EvidenceError::FrameMismatch {
            left: a.frame().name().to_owned(),
            right: b.frame().name().to_owned(),
        });
    }
    let (entries, conflict) = dempster_raw(&RefMass::of(a), &RefMass::of(b))?;
    let mass = MassFunction::from_entries(
        a.frame().clone(),
        entries.into_iter().map(|(s, w)| (from_ref_set(&s), w)),
    )?;
    Ok((mass, conflict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine;
    use crate::frame::Frame;
    use crate::ratio::Ratio;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c"]))
    }

    #[test]
    fn round_trip_sets() {
        let s = FocalSet::from_indices([0, 2]);
        assert_eq!(from_ref_set(&to_ref_set(&s)), s);
    }

    #[test]
    fn reference_matches_paper_example_exactly() {
        let r = |n, d| Ratio::new(n, d).unwrap();
        let m1 = MassFunction::builder(frame())
            .add(["c"], r(1, 2))
            .unwrap()
            .add(["a", "b"], r(1, 3))
            .unwrap()
            .add_omega(r(1, 6))
            .build()
            .unwrap();
        let m2 = MassFunction::builder(frame())
            .add(["c", "a"], r(1, 2))
            .unwrap()
            .add(["a"], r(1, 4))
            .unwrap()
            .add_omega(r(1, 4))
            .build()
            .unwrap();
        let (ref_mass, ref_kappa) = dempster(&m1, &m2).unwrap();
        let fast = combine::dempster(&m1, &m2).unwrap();
        assert_eq!(ref_mass, fast.mass);
        assert_eq!(ref_kappa, fast.conflict);
        assert_eq!(ref_kappa, r(1, 8));
    }

    #[test]
    fn reference_measures_match_by_definition() {
        let m = MassFunction::<f64>::builder(frame())
            .add(["a"], 0.5)
            .unwrap()
            .add(["b", "c"], 0.3)
            .unwrap()
            .add_omega(0.2)
            .build()
            .unwrap();
        let r = RefMass::of(&m);
        let a: RefSet = [0].into_iter().collect();
        let fa = FocalSet::singleton(0);
        assert!((r.bel(&a).unwrap() - m.bel(&fa)).abs() < 1e-12);
        assert!((r.pls(&a).unwrap() - m.pls(&fa)).abs() < 1e-12);
        assert!((r.commonality(&a).unwrap() - m.commonality(&fa)).abs() < 1e-12);
    }

    #[test]
    fn reference_total_conflict() {
        let a = MassFunction::<f64>::certain(frame(), "a").unwrap();
        let b = MassFunction::<f64>::certain(frame(), "b").unwrap();
        assert_eq!(dempster(&a, &b), Err(EvidenceError::TotalConflict));
    }
}
