//! Source discounting and Dempster conditioning.
//!
//! **Extensions** beyond the 1994 paper, both standard Shaferian
//! operations that slot directly into the integration story:
//!
//! * [`discount`] — Shafer's discounting: a source believed reliable
//!   with probability `α` has its masses scaled by `α`, the remainder
//!   `1 − α` going to Ω. This is how an integrator encodes "DB_B's
//!   survey panel is sloppier than DB_A's" *before* combination, and
//!   it provably reduces the conflict κ between discounted sources.
//! * [`condition`] — Dempster conditioning `m(· | B)`: combination
//!   with the categorical mass `m_B(B) = 1`, i.e. revising an evidence
//!   set after learning that the value definitely lies in `B` (e.g. a
//!   query-time constraint).

use crate::combine::dempster;
use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::mass::MassFunction;
use crate::weight::Weight;

/// Discount `m` by reliability `alpha` ∈ [0, 1]: every focal mass is
/// multiplied by `alpha` and `1 − alpha` is added to Ω. `alpha = 1` is
/// the identity; `alpha = 0` yields the vacuous function.
///
/// # Errors
/// [`EvidenceError::InvalidMass`] when `alpha` is outside [0, 1].
pub fn discount<W: Weight>(
    m: &MassFunction<W>,
    alpha: &W,
) -> Result<MassFunction<W>, EvidenceError> {
    if !alpha.is_valid_mass() || *alpha > W::one() {
        return Err(EvidenceError::InvalidMass {
            mass: alpha.to_string(),
        });
    }
    if alpha.approx_eq(&W::one()) {
        return Ok(m.clone());
    }
    let frame = m.frame().clone();
    let omega = frame.omega();
    if alpha.is_zero() {
        return MassFunction::vacuous(frame);
    }
    let mut entries: Vec<(FocalSet, W)> = Vec::with_capacity(m.focal_count() + 1);
    let mut omega_mass = W::one().sub(alpha)?;
    for (set, w) in m.iter() {
        let scaled = w.mul(alpha)?;
        if *set == omega {
            omega_mass = omega_mass.add(&scaled)?;
        } else {
            entries.push((set.clone(), scaled));
        }
    }
    entries.push((omega, omega_mass));
    // Entries are distinct by construction (Ω folded above) and the
    // total is α·1 + (1 − α) = 1, so the trusted combination
    // constructor applies.
    MassFunction::from_combination(frame, entries)
}

/// Dempster conditioning: `m(· | b)` — combine `m` with the
/// categorical evidence "the value is in `b`".
///
/// # Errors
/// * [`EvidenceError::EmptyFocalElement`] if `b` is empty;
/// * [`EvidenceError::TotalConflict`] if `Pls(b) = 0` (conditioning on
///   something the evidence rules out).
pub fn condition<W: Weight>(
    m: &MassFunction<W>,
    b: &FocalSet,
) -> Result<MassFunction<W>, EvidenceError> {
    if b.is_empty() {
        return Err(EvidenceError::EmptyFocalElement);
    }
    let categorical = MassFunction::from_entries(m.frame().clone(), [(b.clone(), W::one())])?;
    Ok(dempster(m, &categorical)?.mass)
}

/// Shafer's *weight of conflict* `log(1 / (1 − κ))` — an additive
/// measure of how much normalization a combination required. Infinite
/// at total conflict.
pub fn weight_of_conflict(kappa: f64) -> f64 {
    if kappa >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - kappa).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine;
    use crate::frame::Frame;
    use crate::ratio::Ratio;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c"]))
    }

    fn m(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
        let mut b = MassFunction::<f64>::builder(frame());
        for (labels, w) in entries {
            b = b.add(labels.iter().copied(), *w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn discount_scales_and_fills_omega() {
        let d = discount(&m(&[(&["a"], 0.6), (&["b"], 0.4)]), &0.5).unwrap();
        let a = frame().subset(["a"]).unwrap();
        assert!(d.mass_of(&a).approx_eq(&0.3));
        assert!(d.mass_of(&frame().omega()).approx_eq(&0.5));
    }

    #[test]
    fn discount_identities() {
        let orig = m(&[(&["a"], 1.0)]);
        assert_eq!(discount(&orig, &1.0).unwrap(), orig);
        assert!(discount(&orig, &0.0).unwrap().is_vacuous());
        assert!(discount(&orig, &1.5).is_err());
        assert!(discount(&orig, &-0.1).is_err());
    }

    #[test]
    fn discount_merges_existing_omega() {
        let orig = m(&[(&["a"], 0.8), (&["a", "b", "c"], 0.2)]);
        let d = discount(&orig, &0.5).unwrap();
        // Ω gets 0.5 (unreliability) + 0.1 (scaled old Ω).
        assert!(d.mass_of(&frame().omega()).approx_eq(&0.6));
        assert_eq!(d.focal_count(), 2);
    }

    #[test]
    fn discounting_reduces_conflict() {
        let a = m(&[(&["a"], 1.0)]);
        let b = m(&[(&["b"], 1.0)]);
        assert!(combine::dempster(&a, &b).is_err()); // κ = 1
        let da = discount(&a, &0.9).unwrap();
        let db = discount(&b, &0.9).unwrap();
        let c = combine::dempster(&da, &db).unwrap();
        assert!(c.conflict < 1.0);
        assert!(c.conflict > 0.5);
    }

    #[test]
    fn discount_exact_rationals() {
        let orig = MassFunction::<Ratio>::builder(frame())
            .add(["a"], Ratio::new(2, 3).unwrap())
            .unwrap()
            .add_omega(Ratio::new(1, 3).unwrap())
            .build()
            .unwrap();
        let d = discount(&orig, &Ratio::new(1, 2).unwrap()).unwrap();
        let a = frame().subset(["a"]).unwrap();
        assert_eq!(d.mass_of(&a), Ratio::new(1, 3).unwrap());
        assert_eq!(d.mass_of(&frame().omega()), Ratio::new(2, 3).unwrap());
    }

    #[test]
    fn conditioning_restricts_to_b() {
        let orig = m(&[(&["a"], 0.5), (&["b", "c"], 0.3), (&["a", "b", "c"], 0.2)]);
        let b_set = frame().subset(["b", "c"]).unwrap();
        let c = condition(&orig, &b_set).unwrap();
        // Focal elements are intersected with {b,c}; mass on {a}
        // conflicts away.
        assert!(c.core().is_subset_of(&b_set));
        assert!(c.mass_of(&b_set).approx_eq(&1.0));
    }

    #[test]
    fn conditioning_on_excluded_set_conflicts() {
        let orig = m(&[(&["a"], 1.0)]);
        let b_set = frame().subset(["b"]).unwrap();
        assert_eq!(condition(&orig, &b_set), Err(EvidenceError::TotalConflict));
        assert!(condition(&orig, &FocalSet::empty()).is_err());
    }

    #[test]
    fn conditioning_on_core_is_bayes_like() {
        let orig = m(&[(&["a"], 0.6), (&["b"], 0.2), (&["c"], 0.2)]);
        let ab = frame().subset(["a", "b"]).unwrap();
        let c = condition(&orig, &ab).unwrap();
        let a = frame().subset(["a"]).unwrap();
        // 0.6 / 0.8 = 0.75 — Bayesian conditioning on point masses.
        assert!(c.mass_of(&a).approx_eq(&0.75));
    }

    #[test]
    fn weight_of_conflict_behaviour() {
        assert_eq!(weight_of_conflict(0.0), 0.0);
        assert!(weight_of_conflict(0.5) > 0.0);
        assert!(weight_of_conflict(1.0).is_infinite());
        // Additivity over independent combinations: w(κ₁) + w(κ₂) =
        // w(1 − (1−κ₁)(1−κ₂)).
        let k1 = 0.3;
        let k2 = 0.6;
        let combined = 1.0 - (1.0 - k1) * (1.0 - k2);
        assert!(
            (weight_of_conflict(k1) + weight_of_conflict(k2) - weight_of_conflict(combined)).abs()
                < 1e-12
        );
    }
}
