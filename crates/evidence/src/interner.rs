//! Interning of domain values to bit positions.
//!
//! Every [`crate::FocalSet`] is a bitset, so somebody has to
//! decide which *bit position* each domain value occupies. For frames
//! known up front, [`Frame::new`] does that in one shot. Integration
//! pipelines, however, often discover an attribute's domain
//! *incrementally* — while scanning source databases, survey files, or
//! streamed tuples — and need a stable value → bit mapping **before**
//! the frame is complete. [`FrameInterner`] is that mutable mapping:
//! values are interned in first-seen order, each new value taking the
//! next free bit, and the finished interner freezes into an immutable
//! [`Frame`] that the mass machinery combines over.
//!
//! Positions handed out by an interner are stable for its lifetime, so
//! focal sets built mid-scan remain valid against the frozen frame.
//! [`Frame::new`] itself is implemented on top of this type, so there
//! is exactly one label-to-bit assignment path in the crate.

use crate::error::EvidenceError;
use crate::focal::FocalSet;
use crate::frame::Frame;
use std::collections::HashMap;
use std::sync::Arc;

/// An incremental map from domain values (labels) to bit positions,
/// growable until frozen into a [`Frame`].
///
/// # Examples
///
/// Discover a domain while streaming source values, building focal
/// sets as you go, then freeze the frame and combine:
///
/// ```
/// use evirel_evidence::{combine, FrameInterner, MassFunction};
/// use std::sync::Arc;
///
/// let mut interner = FrameInterner::new("speciality");
///
/// // Values arrive in stream order; each first occurrence takes the
/// // next bit position.
/// assert_eq!(interner.intern("cantonese"), 0);
/// assert_eq!(interner.intern("hunan"), 1);
/// assert_eq!(interner.intern("cantonese"), 0); // already interned
/// assert_eq!(interner.intern("sichuan"), 2);
///
/// // Focal sets built mid-scan stay valid against the frozen frame.
/// let hunan_or_sichuan = interner.set_of(["hunan", "sichuan"]);
/// assert_eq!(hunan_or_sichuan.len(), 2);
///
/// let frame = Arc::new(interner.freeze());
/// assert_eq!(frame.len(), 3);
///
/// let m1 = MassFunction::<f64>::builder(Arc::clone(&frame))
///     .add_set(hunan_or_sichuan, 0.5).unwrap()
///     .add_omega(0.5)
///     .build().unwrap();
/// let m2 = MassFunction::<f64>::certain(Arc::clone(&frame), "hunan").unwrap();
/// let combined = combine::dempster(&m1, &m2).unwrap();
/// let hunan = frame.singleton("hunan").unwrap();
/// assert!((combined.mass.mass_of(&hunan) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameInterner {
    name: Arc<str>,
    labels: Vec<Arc<str>>,
    index: HashMap<Arc<str>, usize>,
}

impl FrameInterner {
    /// An empty interner for a frame named `name`.
    pub fn new(name: impl Into<Arc<str>>) -> FrameInterner {
        FrameInterner {
            name: name.into(),
            labels: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// An interner pre-seeded with `labels` in order (duplicates
    /// collapse to their first occurrence, like [`Frame::new`]).
    pub fn with_labels<I, L>(name: impl Into<Arc<str>>, labels: I) -> FrameInterner
    where
        I: IntoIterator<Item = L>,
        L: Into<Arc<str>>,
    {
        let mut interner = FrameInterner::new(name);
        for label in labels {
            interner.intern_arc(label.into());
        }
        interner
    }

    /// Re-open a frozen [`Frame`]'s mapping, e.g. to extend a stored
    /// domain with values discovered in a newly integrated source.
    pub fn from_frame(frame: &Frame) -> FrameInterner {
        FrameInterner::with_labels(
            frame.name().to_owned(),
            frame.labels().map(Arc::<str>::from),
        )
    }

    /// The frame name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of interned values so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The bit position of `label`, interning it if new.
    pub fn intern(&mut self, label: &str) -> usize {
        match self.index.get(label) {
            Some(&i) => i,
            None => self.intern_arc(Arc::from(label)),
        }
    }

    /// [`FrameInterner::intern`] for an already-shared label (avoids
    /// the copy on first occurrence).
    pub fn intern_arc(&mut self, label: Arc<str>) -> usize {
        match self.index.get(&label) {
            Some(&i) => i,
            None => {
                let i = self.labels.len();
                self.index.insert(Arc::clone(&label), i);
                self.labels.push(label);
                i
            }
        }
    }

    /// The bit position of `label`, if already interned.
    pub fn position(&self, label: &str) -> Option<usize> {
        self.index.get(label).copied()
    }

    /// The label at bit position `i`, if assigned.
    pub fn label(&self, i: usize) -> Option<&str> {
        self.labels.get(i).map(|l| &**l)
    }

    /// Iterate over the interned labels in bit-position order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(|l| &**l)
    }

    /// The singleton focal set for `label`, interning it if new.
    pub fn singleton(&mut self, label: &str) -> FocalSet {
        FocalSet::singleton(self.intern(label))
    }

    /// The focal set of `labels`, interning each as needed.
    pub fn set_of<I, L>(&mut self, labels: I) -> FocalSet
    where
        I: IntoIterator<Item = L>,
        L: AsRef<str>,
    {
        FocalSet::from_indices(labels.into_iter().map(|l| self.intern(l.as_ref())))
    }

    /// The focal set of already-interned `labels`, without interning.
    ///
    /// # Errors
    /// [`EvidenceError::UnknownLabel`] for any label not yet interned.
    pub fn subset<I, L>(&self, labels: I) -> Result<FocalSet, EvidenceError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<str>,
    {
        let mut indices = Vec::new();
        for l in labels {
            indices.push(
                self.position(l.as_ref())
                    .ok_or_else(|| EvidenceError::UnknownLabel {
                        label: l.as_ref().to_owned(),
                        frame: self.name.to_string(),
                    })?,
            );
        }
        Ok(FocalSet::from_indices(indices))
    }

    /// Freeze into an immutable [`Frame`] with the interned ordering.
    /// The interner remains usable (e.g. to keep interning and freeze
    /// a wider frame later); positions already handed out are stable.
    pub fn freeze(&self) -> Frame {
        self.clone().into_frame()
    }

    /// Consuming [`FrameInterner::freeze`]: hands the label table and
    /// index to the [`Frame`] without copying them — the zero-copy
    /// path for one-shot construction ([`Frame::new`]).
    pub fn into_frame(self) -> Frame {
        Frame::from_parts(self.name, self.labels, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_first_seen_order() {
        let mut it = FrameInterner::new("f");
        assert_eq!(it.intern("b"), 0);
        assert_eq!(it.intern("a"), 1);
        assert_eq!(it.intern("b"), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.position("a"), Some(1));
        assert_eq!(it.position("zzz"), None);
        assert_eq!(it.label(0), Some("b"));
        assert_eq!(it.labels().collect::<Vec<_>>(), vec!["b", "a"]);
    }

    #[test]
    fn focal_set_construction() {
        let mut it = FrameInterner::new("f");
        let s = it.set_of(["x", "y", "x"]);
        assert_eq!(s.len(), 2);
        assert_eq!(it.singleton("x").as_singleton(), Some(0));
        assert_eq!(it.subset(["y"]).unwrap().as_singleton(), Some(1));
        assert!(it.subset(["nope"]).is_err());
    }

    #[test]
    fn freeze_matches_frame_construction() {
        let direct = Frame::new("spec", ["a", "b", "c"]);
        let mut it = FrameInterner::new("spec");
        for l in ["a", "b", "c"] {
            it.intern(l);
        }
        assert_eq!(it.freeze(), direct);
        // Frozen frames agree with interner positions.
        assert_eq!(
            it.freeze().index_of("b").unwrap(),
            it.position("b").unwrap()
        );
    }

    #[test]
    fn positions_stable_across_freezes() {
        let mut it = FrameInterner::with_labels("grow", ["a", "b"]);
        let narrow = it.freeze();
        let early = it.set_of(["b"]);
        it.intern("c");
        let wide = it.freeze();
        assert_eq!(narrow.len(), 2);
        assert_eq!(wide.len(), 3);
        // The set built against the narrow frame is still {b} in the
        // wide one.
        assert_eq!(wide.render(&early), "{b}");
    }

    #[test]
    fn from_frame_round_trip() {
        let f = Frame::new("f", ["x", "y"]);
        let mut it = FrameInterner::from_frame(&f);
        assert_eq!(it.position("y"), Some(1));
        it.intern("z");
        assert_eq!(it.freeze().len(), 3);
    }
}
