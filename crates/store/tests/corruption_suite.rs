//! Decoder-hardening suite: random byte flips and truncations over
//! encoded segments must always surface as typed [`StoreError`]s —
//! never a panic, never an abort-by-OOM from a corrupted count, and
//! (for v3 segments, where every byte is under some checksum) never
//! silently wrong data.

use evirel_store::{Segment, StoreError};
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("evirel-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{label}-{}.evb",
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Encode one deterministic segment, returning its bytes.
fn encoded_segment(seed: u64, tuples: usize) -> Vec<u8> {
    let rel = generate(
        "C",
        &GeneratorConfig {
            tuples,
            domain_size: 6,
            evidential_attrs: 2,
            max_focal: 3,
            max_focal_size: 3,
            omega_mass: 0.1,
            uncertain_membership: 0.3,
            seed,
        },
    )
    .expect("generator config is valid");
    let path = tmp("base");
    evirel_store::write_segment(&rel, &path, 256).expect("segment writes");
    let bytes = std::fs::read(&path).expect("segment readable");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Open + full scan; any `Err` is fine (it is typed by construction),
/// a panic fails the property. Returns whether everything succeeded.
fn try_full_scan(path: &PathBuf) -> Result<u64, StoreError> {
    let seg = Segment::open(path)?;
    let mut decoded = 0u64;
    for p in 0..seg.page_count() {
        let bytes = seg.read_page(p)?;
        decoded += seg.decode_page(&bytes)?.len() as u64;
    }
    Ok(decoded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flip one bit anywhere in a v3 segment: the checksum chain
    /// (preamble → schema/table → pages) must catch it — a flipped
    /// segment never scans successfully, and never panics.
    #[test]
    fn single_bit_flip_is_always_detected(
        seed in 0u64..1000,
        tuples in 1usize..60,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = encoded_segment(seed, tuples);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1u8 << bit;
        let path = tmp("flip");
        std::fs::write(&path, &bytes).unwrap();
        let outcome = try_full_scan(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            outcome.is_err(),
            "bit flip at byte {pos} bit {bit} scanned {} tuples undetected",
            outcome.unwrap_or(0)
        );
    }

    /// Truncate a segment at every kind of boundary: a typed error,
    /// never a panic or an attempt to allocate from a phantom count.
    #[test]
    fn truncation_is_a_typed_error(
        seed in 0u64..1000,
        tuples in 1usize..60,
        keep_frac in 0.0f64..1.0,
    ) {
        let bytes = encoded_segment(seed, tuples);
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        let path = tmp("trunc");
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let outcome = try_full_scan(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(outcome.is_err(), "truncation to {keep} bytes undetected");
    }

    /// Heavier damage: corrupt a whole random window. Still typed.
    #[test]
    fn garbage_windows_are_typed_errors(
        seed in 0u64..1000,
        tuples in 1usize..40,
        start_frac in 0.0f64..1.0,
        len in 1usize..64,
        fill in 0u8..=255,
    ) {
        let mut bytes = encoded_segment(seed, tuples);
        let start = ((bytes.len() - 1) as f64 * start_frac) as usize;
        let end = (start + len).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b = fill;
        }
        let path = tmp("window");
        std::fs::write(&path, &bytes).unwrap();
        // Result may be Ok only if the window happened to rewrite
        // identical bytes; otherwise an error. Either way: no panic.
        let outcome = try_full_scan(&path);
        std::fs::remove_file(&path).ok();
        if outcome.is_ok() {
            prop_assert!(
                bytes == encoded_segment(seed, tuples),
                "non-identical damage scanned successfully"
            );
        }
    }

    /// The decoder itself (below the checksum layer) must survive
    /// arbitrary page bytes: `decode_page` / `decode_record` on
    /// mutated pages return `Result`, never panic — this is what
    /// protects v2 segments, which have no checksums.
    #[test]
    fn decode_page_survives_arbitrary_bytes(
        seed in 0u64..1000,
        tuples in 1usize..40,
        flips in proptest::collection::vec((0.0f64..1.0, 0u32..8), 1..6),
        slot in 0u32..64,
    ) {
        let rel = generate("D", &GeneratorConfig {
            tuples,
            domain_size: 5,
            evidential_attrs: 1,
            max_focal: 2,
            max_focal_size: 2,
            omega_mass: 0.2,
            uncertain_membership: 0.3,
            seed,
        }).expect("generator config is valid");
        let path = tmp("decode");
        evirel_store::write_segment(&rel, &path, 256).expect("segment writes");
        let seg = Segment::open(&path).expect("segment opens");
        let mut page = seg.read_page(0).expect("page reads");
        for (frac, bit) in flips {
            let pos = ((page.len() - 1) as f64 * frac) as usize;
            page[pos] ^= 1u8 << bit;
        }
        // Both full-page decode and point lookup: Result, no panic.
        let _ = seg.decode_page(&page);
        let _ = seg.decode_record(&page, slot);
        std::fs::remove_file(&path).ok();
    }
}
