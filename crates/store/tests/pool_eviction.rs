//! Buffer-pool behaviour under pressure: pinned pages are never
//! evicted, the byte budget holds under concurrent exchange-style
//! workers, and deliberately tiny budgets (≈ 2 pages) still produce
//! correct scan results — the satellite coverage the storage-engine
//! issue calls out.

use evirel_store::{BufferPool, Segment, StoredRelation};
use evirel_workload::generator::{generate, GeneratorConfig};
use std::path::PathBuf;
use std::sync::Arc;

const PAGE: usize = 512;

fn make_stored(tuples: usize, budget: usize, label: &str) -> StoredRelation {
    let rel = generate(
        "P",
        &GeneratorConfig {
            tuples,
            seed: 0xBEEF,
            ..Default::default()
        },
    )
    .unwrap();
    let dir: PathBuf = std::env::temp_dir().join(format!("evirel-evict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{label}.evb"));
    evirel_store::write_segment(&rel, &path, PAGE).unwrap();
    let stored = StoredRelation::open(&path, Arc::new(BufferPool::new(budget))).unwrap();
    std::fs::remove_file(&path).ok();
    stored
}

#[test]
fn pinned_pages_never_evicted_under_flood() {
    let stored = make_stored(400, 2 * PAGE, "pinflood");
    let seg = Arc::clone(stored.segment());
    let pool = Arc::clone(stored.pool());
    assert!(seg.page_count() > 10);

    let pinned = pool.get(&seg, 3).unwrap();
    let pinned_bytes: Vec<u8> = pinned.to_vec();
    for round in 0..3 {
        for p in 0..seg.page_count() {
            if p == 3 {
                continue;
            }
            let _ = pool.get(&seg, p).unwrap();
        }
        // After each flood the pinned page re-get is a cache hit.
        let hits = pool.stats().hits;
        let again = pool.get(&seg, 3).unwrap();
        assert_eq!(
            pool.stats().hits,
            hits + 1,
            "pinned page evicted on round {round}"
        );
        assert_eq!(&*again, &pinned_bytes[..]);
    }
    let stats = pool.stats();
    assert!(stats.evictions > 0, "{stats:?}");
    // The guard still reads the original bytes.
    assert_eq!(&*pinned, &pinned_bytes[..]);
}

#[test]
fn budget_respected_under_concurrent_workers() {
    let stored = Arc::new(make_stored(1200, 4 * PAGE, "workers"));
    let baseline = stored.to_relation().unwrap();

    // 8 exchange-style workers scan interleaved page ranges through
    // ONE shared pool, holding one pin each at a time.
    let worker_sums: Vec<usize> = std::thread::scope(|scope| {
        (0..8usize)
            .map(|w| {
                let stored = Arc::clone(&stored);
                scope.spawn(move || {
                    let mut decoded = 0usize;
                    for p in 0..stored.segment().page_count() {
                        if (p as usize) % 8 != w {
                            continue;
                        }
                        decoded += stored.page_tuples(p).unwrap().len();
                    }
                    decoded
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(worker_sums.iter().sum::<usize>(), baseline.len());

    let stats = stored.pool().stats();
    assert!(stats.evictions > 0, "{stats:?}");
    // One pin per worker at a time: the pool may overshoot its budget
    // by at most the workers' concurrently-pinned pages (oversized
    // jumbo pages aside, which this workload does not produce).
    let slack = 8 * (PAGE + 64);
    assert!(
        stats.bytes_cached <= stored.pool().budget_bytes() + slack,
        "{stats:?}"
    );
}

#[test]
fn two_page_budget_scan_is_still_correct() {
    // Budget ≈ 2 pages — nearly every page fill evicts another.
    let stored = make_stored(600, 2 * PAGE, "tiny");
    let seg = stored.segment();
    assert!(seg.page_count() > 10);

    // Reference: a fresh big-budget read of the same segment.
    let reference =
        StoredRelation::from_segment(Arc::clone(seg), Arc::new(BufferPool::new(1 << 24)))
            .to_relation()
            .unwrap();
    let tiny = stored.to_relation().unwrap();
    assert_eq!(tiny.len(), reference.len());
    for (a, b) in tiny.iter().zip(reference.iter()) {
        assert_eq!(a.values(), b.values());
        assert_eq!(a.membership().sn().to_bits(), b.membership().sn().to_bits());
    }
    let stats = stored.pool().stats();
    assert!(stats.evictions > 0, "tiny budget must evict: {stats:?}");
    assert!(
        stats.bytes_cached <= stored.pool().budget_bytes(),
        "{stats:?}"
    );
    // A second full scan under the tiny budget misses (pages were
    // evicted) but stays correct.
    let again = stored.to_relation().unwrap();
    assert!(again.approx_eq(&tiny));
}

#[test]
fn repeated_scans_with_ample_budget_hit_cache() {
    let stored = make_stored(300, 1 << 22, "warm");
    let first = stored.to_relation().unwrap();
    let misses_after_first = stored.pool().stats().misses;
    let second = stored.to_relation().unwrap();
    let stats = stored.pool().stats();
    assert_eq!(
        stats.misses, misses_after_first,
        "warm rescan must not touch disk: {stats:?}"
    );
    assert!(stats.hits >= stored.segment().page_count());
    assert_eq!(stats.evictions, 0);
    assert!(first.approx_eq(&second));
}

/// The same segment shared by two pools is independent: stats and
/// budgets do not interfere (regression guard for the cache key
/// namespace being per segment id, not per path).
#[test]
fn segment_identity_keys_the_cache() {
    let stored = make_stored(100, 1 << 20, "ident");
    let seg = Arc::clone(stored.segment());
    let other_pool = Arc::new(BufferPool::new(1 << 20));
    let _a = stored.pool().get(&seg, 0).unwrap();
    let _b = other_pool.get(&seg, 0).unwrap();
    assert_eq!(other_pool.stats().misses, 1);
    assert_eq!(other_pool.stats().hits, 0);

    // Re-opening the same bytes as a fresh Segment gets a fresh id —
    // no stale cross-talk even within one pool.
    let reopened = {
        let dir = std::env::temp_dir().join(format!("evirel-evict-{}", std::process::id()));
        let path = dir.join("ident2.evb");
        let rel = stored.to_relation().unwrap();
        evirel_store::write_segment(&rel, &path, PAGE).unwrap();
        let seg2 = Arc::new(Segment::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        seg2
    };
    assert_ne!(reopened.id(), seg.id());
}
