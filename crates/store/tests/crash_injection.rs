//! Crash-injection harness over the full durable write sequence:
//! `FailpointFs` kills the process-under-simulation after N cost
//! units (every byte boundary of every write, plus each fsync /
//! rename / create / truncate), and recovery must land on **exactly**
//! a committed prefix of the mutation history — bit-for-bit equal to
//! the in-memory oracle at that generation, never a torn or
//! half-applied state.
//!
//! The sequence under test is the one `DurableCatalog` performs per
//! mutation: write a checksummed segment (temp + fsync + rename),
//! append + fsync a journal record, and periodically checkpoint
//! (manifest swap + journal truncate + GC). The proptest loop varies
//! the mutation history; an inner sweep visits every kill point.

use evirel_store::checkpoint::checkpoint;
use evirel_store::failpoint::FailpointFs;
use evirel_store::{Journal, JournalRecord, Manifest, ManifestEntry, Segment, StoredRelation};
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-crash-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One scripted catalog mutation.
#[derive(Debug, Clone)]
enum Op {
    /// Bind `name` to a relation generated from `seed` with `tuples`
    /// tuples.
    Bind {
        name: String,
        seed: u64,
        tuples: usize,
    },
    /// Drop `name` (a no-op if absent — mirrored by the oracle).
    Drop { name: String },
    /// Checkpoint: fold the journal into the manifest.
    Checkpoint,
}

/// The in-memory oracle: name → (seed, tuples) at each generation.
/// Generations count *mutations* (Bind/Drop), not checkpoints.
type OracleState = BTreeMap<String, (u64, usize)>;

fn oracle_history(ops: &[Op]) -> Vec<OracleState> {
    let mut states = vec![OracleState::new()];
    let mut current = OracleState::new();
    for op in ops {
        match op {
            Op::Bind { name, seed, tuples } => {
                current.insert(name.clone(), (*seed, *tuples));
                states.push(current.clone());
            }
            Op::Drop { name } => {
                current.remove(name);
                states.push(current.clone());
            }
            Op::Checkpoint => {} // not a generation
        }
    }
    states
}

fn gen_relation(seed: u64, tuples: usize) -> evirel_relation::ExtendedRelation {
    generate(
        "R",
        &GeneratorConfig {
            tuples,
            domain_size: 4,
            evidential_attrs: 1,
            max_focal: 2,
            max_focal_size: 2,
            omega_mass: 0.2,
            uncertain_membership: 0.3,
            seed,
        },
    )
    .expect("generator config is valid")
}

/// Run the scripted ops against `dir` with durable-layer primitives,
/// stopping at the first injected failure. Returns how many
/// *mutations* (generations) were fully acknowledged.
fn run_script(dir: &Path, ops: &[Op]) -> u64 {
    let Ok((mut journal, replayed)) = Journal::open_or_create(dir) else {
        return 0;
    };
    let manifest = Manifest::load(dir).ok().flatten().unwrap_or_default();
    let mut generation = replayed
        .iter()
        .map(JournalRecord::generation)
        .max()
        .unwrap_or(manifest.generation);
    let mut entries: BTreeMap<String, ManifestEntry> = manifest
        .entries
        .iter()
        .map(|e| (e.name.clone(), e.clone()))
        .collect();
    for record in &replayed {
        apply(&mut entries, record);
    }
    let mut acked = 0u64;
    let mut seg_counter = 1_000u64; // distinct from recovery runs
    for op in ops {
        match op {
            Op::Bind { name, seed, tuples } => {
                let rel = gen_relation(*seed, *tuples);
                seg_counter += 1;
                let file = format!("seg-{seg_counter:06}.evb");
                let Ok(meta) = evirel_store::write_segment_meta(&rel, dir.join(&file), 256) else {
                    return acked;
                };
                generation += 1;
                let record = JournalRecord::Bind {
                    name: name.clone(),
                    file,
                    format_version: 3,
                    checksum: meta.checksum,
                    tuple_count: meta.tuple_count,
                    generation,
                };
                if journal.append(&record).is_err() {
                    return acked;
                }
                apply(&mut entries, &record);
                acked += 1;
            }
            Op::Drop { name } => {
                generation += 1;
                let record = JournalRecord::Drop {
                    name: name.clone(),
                    generation,
                };
                if journal.append(&record).is_err() {
                    return acked;
                }
                apply(&mut entries, &record);
                acked += 1;
            }
            Op::Checkpoint => {
                let manifest = Manifest {
                    generation,
                    entries: entries.values().cloned().collect(),
                };
                if checkpoint(dir, &manifest, &mut journal).is_err() {
                    return acked;
                }
            }
        }
    }
    acked
}

fn apply(entries: &mut BTreeMap<String, ManifestEntry>, record: &JournalRecord) {
    match record {
        JournalRecord::Bind {
            name,
            file,
            format_version,
            checksum,
            tuple_count,
            generation,
        } => {
            entries.insert(
                name.clone(),
                ManifestEntry {
                    name: name.clone(),
                    file: file.clone(),
                    format_version: *format_version,
                    checksum: *checksum,
                    tuple_count: *tuple_count,
                    generation: *generation,
                },
            );
        }
        JournalRecord::Drop { name, .. } => {
            entries.remove(name);
        }
    }
}

/// Recover the directory the way `DurableCatalog::open` does:
/// manifest + journal records above the manifest generation, then
/// open and fully materialize every referenced segment.
fn recover(dir: &Path) -> (u64, BTreeMap<String, evirel_relation::ExtendedRelation>) {
    let manifest = Manifest::load(dir)
        .expect("manifest must never be torn")
        .unwrap_or_default();
    let (_, replayed) = Journal::open_or_create(dir).expect("journal must recover");
    let mut entries: BTreeMap<String, ManifestEntry> = manifest
        .entries
        .iter()
        .map(|e| (e.name.clone(), e.clone()))
        .collect();
    let mut generation = manifest.generation;
    for record in &replayed {
        if record.generation() <= manifest.generation {
            continue; // crash between manifest swap and journal truncate
        }
        apply(&mut entries, record);
        generation = generation.max(record.generation());
    }
    let pool = Arc::new(evirel_store::BufferPool::new(64 * 1024));
    let mut relations = BTreeMap::new();
    for (name, entry) in entries {
        let seg = Segment::open(dir.join(&entry.file)).expect("committed segment opens");
        assert_eq!(
            seg.content_checksum(),
            Some(entry.checksum),
            "committed segment checksum must match its journal/manifest record"
        );
        let rel = StoredRelation::from_segment(Arc::new(seg), Arc::clone(&pool))
            .to_relation()
            .expect("committed segment decodes");
        relations.insert(name, rel);
    }
    (generation, relations)
}

fn assert_matches_oracle(
    state: &OracleState,
    recovered: &BTreeMap<String, evirel_relation::ExtendedRelation>,
) {
    assert_eq!(
        recovered.keys().collect::<Vec<_>>(),
        state.keys().collect::<Vec<_>>(),
        "recovered binding set differs from oracle"
    );
    for (name, (seed, tuples)) in state {
        let expected = gen_relation(*seed, *tuples);
        let got = &recovered[name];
        assert_eq!(got.len(), expected.len(), "{name}: tuple count");
        for (i, (a, b)) in expected.iter().zip(got.iter()).enumerate() {
            // Bit-for-bit: values and raw membership bits.
            assert_eq!(a.values(), b.values(), "{name}[{i}]: values");
            assert_eq!(
                a.membership().sn().to_bits(),
                b.membership().sn().to_bits(),
                "{name}[{i}]: sn bits"
            );
            assert_eq!(
                a.membership().sp().to_bits(),
                b.membership().sp().to_bits(),
                "{name}[{i}]: sp bits"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random mutation script and EVERY kill point in its
    /// durable write sequence: recovery lands on a committed prefix —
    /// at least everything acknowledged before the kill, at most one
    /// fully-written-but-unacknowledged record beyond it — and the
    /// recovered relations are bit-for-bit the oracle's.
    #[test]
    fn every_kill_point_recovers_a_committed_prefix(
        script in proptest::collection::vec(
            prop_oneof![
                (0u64..50, 1usize..12).prop_map(|(seed, tuples)| {
                    let name = format!("r{}", seed % 3);
                    Op::Bind { name, seed, tuples }
                }),
                (0u64..3).prop_map(|n| Op::Drop { name: format!("r{n}") }),
                Just(Op::Checkpoint),
            ],
            2..6,
        ),
    ) {
        // Pass 1: total cost of the full script, no kills.
        let dir = fresh_dir("observe");
        let total = {
            let fp = FailpointFs::observe();
            run_script(&dir, &script);
            let t = fp.units();
            drop(fp);
            t
        };
        std::fs::remove_dir_all(&dir).ok();
        let history = oracle_history(&script);

        // Pass 2: kill everywhere. Stride keeps the sweep dense at
        // small boundaries without being O(bytes) per case; 0 and
        // total are always included.
        let stride = (total / 160).max(1);
        let mut kill_points: Vec<u64> = (0..=total).step_by(stride as usize).collect();
        if kill_points.last() != Some(&total) {
            kill_points.push(total);
        }
        for kill_at in kill_points {
            let dir = fresh_dir("kill");
            let acked = {
                let fp = FailpointFs::kill_after(kill_at);
                let acked = run_script(&dir, &script);
                drop(fp);
                acked
            };
            let (generation, recovered) = recover(&dir);
            // The recovered generation is at least everything acked
            // (journal fsync'd before ack) and at most one mutation
            // beyond (a record fully written but killed at its fsync
            // legitimately replays).
            prop_assert!(
                generation >= acked && generation <= acked + 1,
                "kill at {kill_at}/{total}: acked {acked}, recovered generation {generation}"
            );
            assert_matches_oracle(&history[generation as usize], &recovered);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Crash *during recovery* (while truncating a torn tail) must also
/// be recoverable: recovery is idempotent.
#[test]
fn recovery_is_idempotent_after_torn_tail() {
    let dir = fresh_dir("idempotent");
    let ops = vec![
        Op::Bind {
            name: "a".into(),
            seed: 1,
            tuples: 5,
        },
        Op::Bind {
            name: "b".into(),
            seed: 2,
            tuples: 7,
        },
    ];
    // Kill mid-way through the second bind's journal append.
    let total = {
        let fp = FailpointFs::observe();
        run_script(&dir, &ops);
        let t = fp.units();
        drop(fp);
        t
    };
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    {
        let fp = FailpointFs::kill_after(total - 2);
        run_script(&dir, &ops);
        drop(fp);
    }
    let first = recover(&dir);
    let second = recover(&dir);
    assert_eq!(first.0, second.0);
    assert_eq!(
        first.1.keys().collect::<Vec<_>>(),
        second.1.keys().collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}
