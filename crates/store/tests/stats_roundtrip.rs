//! Property suite for the segment stats section: the `RelStats`
//! block a `SegmentWriter` accumulates incrementally while appending
//! tuples must be **byte-identical** to the stats recomputed from the
//! decoded relation after a round-trip — across random shapes, page
//! sizes, and domains wider than 128 values (boxed focal words). The
//! cost model's determinism contract rests on this: planning from a
//! stored segment and planning from the same relation in memory see
//! the same numbers, so they build the same plan.

use evirel_store::{compute_stats, BufferPool, StoredRelation};
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("evirel-statsrt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{label}-{}.evb",
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Write `rel` to a segment, reopen it, and compare the persisted
/// stats block against stats recomputed from the decoded relation —
/// on the encoded bytes, so every sketch register, histogram bucket,
/// and f64 bit pattern must agree exactly.
fn assert_stats_roundtrip(
    rel: &evirel_relation::ExtendedRelation,
    page_size: usize,
) -> Result<(), String> {
    let path = tmp("rt");
    evirel_store::write_segment(rel, &path, page_size).map_err(|e| format!("write: {e}"))?;
    let pool = Arc::new(BufferPool::new(8192));
    let stored = StoredRelation::open(&path, pool).map_err(|e| format!("open: {e}"))?;
    let persisted = stored
        .stats()
        .ok_or("v3 segment is missing its stats section")?;
    let decoded = stored.to_relation().map_err(|e| format!("decode: {e}"))?;
    std::fs::remove_file(&path).ok();
    let recomputed = compute_stats(&decoded);
    let mut a = Vec::new();
    let mut b = Vec::new();
    persisted.encode(&mut a);
    recomputed.encode(&mut b);
    if a != b {
        return Err(format!(
            "persisted stats diverge from recomputed:\n  persisted:  {persisted:?}\n  recomputed: {recomputed:?}"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write-time stats ≡ recomputed stats over random relations.
    #[test]
    fn write_time_stats_equal_recomputed(
        seed in 0u64..1_000_000,
        tuples in 1usize..200,
        domain_size in 2usize..20,
        attrs in 1usize..4,
        max_focal in 1usize..5,
        page_shift in 6u32..13, // page sizes 64..8192
    ) {
        let rel = generate("G", &GeneratorConfig {
            tuples,
            domain_size,
            evidential_attrs: attrs,
            max_focal,
            max_focal_size: 3,
            omega_mass: 0.1,
            uncertain_membership: 0.4,
            seed,
        }).expect("generator config is valid");
        let outcome = assert_stats_roundtrip(&rel, 1usize << page_shift);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Frames wider than 128 values exercise the boxed-word focal
    /// encoding in the per-attribute histograms too.
    #[test]
    fn wide_domain_stats_equal_recomputed(
        seed in 0u64..1_000_000,
        tuples in 1usize..40,
    ) {
        let rel = generate("W", &GeneratorConfig {
            tuples,
            domain_size: 200,
            evidential_attrs: 1,
            max_focal: 3,
            max_focal_size: 180, // sets reaching past bit 128
            omega_mass: 0.1,
            uncertain_membership: 0.2,
            seed,
        }).expect("generator config is valid");
        let outcome = assert_stats_roundtrip(&rel, 1024);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}

/// The committed v2 fixture (written before the stats section
/// existed) reads as "no stats" — never an error — so the planner
/// falls back to heuristics for it.
#[test]
fn v2_segment_reads_as_no_stats() {
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2-restaurants.evb");
    let stored = StoredRelation::open(fixture, Arc::new(BufferPool::new(4096))).unwrap();
    assert!(stored.stats().is_none(), "v2 carries no stats section");
    assert_eq!(stored.len(), 40, "and still decodes fine");
}

/// An empty relation still writes (and round-trips) a stats block.
#[test]
fn empty_relation_stats_roundtrip() {
    let rel = generate(
        "E",
        &GeneratorConfig {
            tuples: 0,
            ..Default::default()
        },
    )
    .unwrap();
    assert_stats_roundtrip(&rel, 512).unwrap();
}
