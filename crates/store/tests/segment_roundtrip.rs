//! Property suite: random extended relations → binary segment → read
//! back ≡ original. The binary format stores `f64` payloads as raw
//! IEEE-754 bits, so the round-trip is *exact* (bitwise value
//! equality), not merely within tolerance — and the suite asserts
//! exactly that, plus preserved insertion order, across random
//! shapes, page sizes, and domains wider than 128 values (boxed focal
//! words).

use evirel_store::{BufferPool, Segment, StoredRelation};
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("evirel-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{label}-{}.evb",
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Exact comparison: same schema, same insertion order, bitwise-equal
/// values and membership.
fn assert_exact(
    original: &evirel_relation::ExtendedRelation,
    stored: &StoredRelation,
) -> Result<(), String> {
    original
        .schema()
        .check_union_compatible(stored.schema())
        .map_err(|e| format!("schemas incompatible after round-trip: {e}"))?;
    let decoded: Result<Vec<_>, _> = stored.iter().collect();
    let decoded = decoded.map_err(|e| format!("decode failed: {e}"))?;
    if decoded.len() != original.len() {
        return Err(format!(
            "tuple count: {} stored vs {} original",
            decoded.len(),
            original.len()
        ));
    }
    for (i, (orig, back)) in original.iter().zip(decoded.iter()).enumerate() {
        if orig.values() != back.values() {
            return Err(format!("values differ at insertion position {i}"));
        }
        if orig.membership().sn().to_bits() != back.membership().sn().to_bits()
            || orig.membership().sp().to_bits() != back.membership().sp().to_bits()
        {
            return Err(format!("membership bits differ at position {i}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binary_segment_roundtrip_is_exact(
        seed in 0u64..1_000_000,
        tuples in 1usize..200,
        domain_size in 2usize..20,
        attrs in 1usize..4,
        max_focal in 1usize..5,
        page_shift in 6u32..13, // page sizes 64..8192
    ) {
        let rel = generate("G", &GeneratorConfig {
            tuples,
            domain_size,
            evidential_attrs: attrs,
            max_focal,
            max_focal_size: 3,
            omega_mass: 0.1,
            uncertain_membership: 0.4,
            seed,
        }).expect("generator config is valid");
        let path = tmp("gen");
        evirel_store::write_segment(&rel, &path, 1usize << page_shift)
            .expect("segment writes");
        let pool = Arc::new(BufferPool::new(4096));
        let stored = StoredRelation::open(&path, pool).expect("segment opens");
        let outcome = assert_exact(&rel, &stored);
        std::fs::remove_file(&path).ok();
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Frames wider than 128 values exercise the boxed-word focal
    /// encoding (word count > 2).
    #[test]
    fn wide_domain_roundtrip_is_exact(
        seed in 0u64..1_000_000,
        tuples in 1usize..40,
    ) {
        let rel = generate("W", &GeneratorConfig {
            tuples,
            domain_size: 200,
            evidential_attrs: 1,
            max_focal: 3,
            max_focal_size: 180, // sets reaching past bit 128
            omega_mass: 0.1,
            uncertain_membership: 0.2,
            seed,
        }).expect("generator config is valid");
        let path = tmp("wide");
        evirel_store::write_segment(&rel, &path, 1024).expect("segment writes");
        let pool = Arc::new(BufferPool::new(8192));
        let stored = StoredRelation::open(&path, pool).expect("segment opens");
        let outcome = assert_exact(&rel, &stored);
        std::fs::remove_file(&path).ok();
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}

/// The materialized bridge reproduces the original relation through
/// `ExtendedRelation` equality machinery too (key index rebuilt).
#[test]
fn to_relation_round_trips() {
    let rel = generate(
        "M",
        &GeneratorConfig {
            tuples: 500,
            ..Default::default()
        },
    )
    .unwrap();
    let path = tmp("mat");
    evirel_store::write_segment(&rel, &path, 2048).unwrap();
    let stored = StoredRelation::open(&path, Arc::new(BufferPool::new(4096))).unwrap();
    let back = stored.to_relation().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(rel.approx_eq(&back));
    assert_eq!(
        rel.keys().collect::<Vec<_>>(),
        back.keys().collect::<Vec<_>>()
    );
}

/// A segment reopened cold (fresh `Segment::open`, schema rebuilt
/// from the header) still decodes identically — no dependence on the
/// writing process's in-memory state.
#[test]
fn cold_reopen_is_identical() {
    let rel = generate(
        "C",
        &GeneratorConfig {
            tuples: 120,
            seed: 99,
            ..Default::default()
        },
    )
    .unwrap();
    let path = tmp("cold");
    evirel_store::write_segment(&rel, &path, 512).unwrap();
    let a = Arc::new(Segment::open(&path).unwrap());
    let b = Arc::new(Segment::open(&path).unwrap());
    std::fs::remove_file(&path).ok();
    for page in 0..a.page_count() {
        let pa = a.read_page(page).unwrap();
        let pb = b.read_page(page).unwrap();
        assert_eq!(pa, pb);
        let ta = a.decode_page(&pa).unwrap();
        let tb = b.decode_page(&pb).unwrap();
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(tb.iter()) {
            assert_eq!(x.values(), y.values());
        }
    }
}
