//! Format-compat suite: the committed v2 fixture segment (written by
//! the previous, checksum-free format) must keep loading forever, and
//! unknown versions must fail with a typed error naming the version —
//! the compatibility policy ARCHITECTURE.md documents.

use evirel_store::{Segment, StoreError};
use std::path::PathBuf;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2-restaurants.evb")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evirel-compat-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The fixture was generated with the v2 writer before the format
/// moved to v3: 40 deterministic restaurant tuples over schema
/// `RA(rname key, bldg int, rating float, spec evidential over
/// {siam, hunan, canton})`, page size 512.
#[test]
fn v2_fixture_still_loads_and_decodes() {
    let seg = Segment::open(fixture()).unwrap();
    assert_eq!(seg.version(), 2);
    assert_eq!(seg.content_checksum(), None, "v2 carries no checksum");
    assert_eq!(seg.tuple_count(), 40);
    assert!(seg.page_count() > 1, "512-byte pages must paginate");
    assert_eq!(seg.schema().name(), "RA");
    assert_eq!(seg.schema().arity(), 4);

    let mut tuples = Vec::new();
    for p in 0..seg.page_count() {
        let bytes = seg.read_page(p).unwrap();
        tuples.extend(seg.decode_page(&bytes).unwrap());
    }
    assert_eq!(tuples.len(), 40);
    for (i, t) in tuples.iter().enumerate() {
        // Exact values the generator wrote — if decode drifts, this
        // catches it bit for bit.
        assert_eq!(
            t.value(0).as_definite().unwrap(),
            &evirel_relation::Value::str(format!("rest-{i:03}"))
        );
        assert_eq!(
            t.value(1).as_definite().unwrap(),
            &evirel_relation::Value::int(i as i64 * 7 - 3)
        );
        assert_eq!(
            t.value(2).as_definite().unwrap(),
            &evirel_relation::Value::float(i as f64 * 0.125 + 0.015625)
        );
        let m = t.value(3).as_evidential().unwrap();
        assert_eq!(m.focal_count(), 3);
        assert_eq!(t.membership().sn(), 0.5 + i as f64 / 128.0);
        assert_eq!(t.membership().sp(), 1.0);
    }
}

/// The v2 fixture streams through the buffer pool like any segment.
#[test]
fn v2_fixture_attaches_as_stored_relation() {
    let pool = std::sync::Arc::new(evirel_store::BufferPool::new(2048));
    let stored = evirel_store::StoredRelation::open(fixture(), pool).unwrap();
    let rel = stored.to_relation().unwrap();
    assert_eq!(rel.len(), 40);
}

/// An unknown (future or never-released) version is a typed
/// `Corrupt` error that names the version and what this build reads.
#[test]
fn unknown_versions_rejected_with_typed_error() {
    let mut bytes = std::fs::read(fixture()).unwrap();
    for bad_version in [0u16, 1, 4, 9, u16::MAX] {
        bytes[4..6].copy_from_slice(&bad_version.to_le_bytes());
        let path = tmp(&format!("v{bad_version}.evb"));
        std::fs::write(&path, &bytes).unwrap();
        match Segment::open(&path) {
            Err(StoreError::Corrupt { context }) => {
                assert!(
                    context.contains(&format!("unsupported segment version {bad_version}")),
                    "error must name the version: {context}"
                );
                assert!(
                    context.contains("versions 2 and 3"),
                    "error must say what IS readable: {context}"
                );
            }
            other => panic!("expected Corrupt for version {bad_version}, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Segments written today are v3 and carry a content checksum — and
/// a byte-identical rewrite carries the *same* checksum
/// (deterministic format, no timestamps).
#[test]
fn current_writer_produces_checksummed_v3() {
    let pool = std::sync::Arc::new(evirel_store::BufferPool::new(4096));
    let stored = evirel_store::StoredRelation::open(fixture(), pool).unwrap();
    let rel = stored.to_relation().unwrap();

    let a = tmp("rewrite-a.evb");
    let b = tmp("rewrite-b.evb");
    let meta_a = evirel_store::write_segment_meta(&rel, &a, 512).unwrap();
    let meta_b = evirel_store::write_segment_meta(&rel, &b, 512).unwrap();
    assert_eq!(meta_a.checksum, meta_b.checksum, "deterministic checksum");
    assert_eq!(meta_a.tuple_count, 40);

    let seg = Segment::open(&a).unwrap();
    assert_eq!(seg.version(), 3);
    assert_eq!(seg.content_checksum(), Some(meta_a.checksum));
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
