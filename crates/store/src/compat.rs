//! Format-version compatibility for segment files.
//!
//! This build reads two on-disk formats:
//!
//! * **v3** (current, written by [`crate::segment::SegmentWriter`]) —
//!   a 52-byte preamble carrying three CRC-32s that transitively
//!   authenticate the whole file: `preamble_crc` covers the first 48
//!   preamble bytes (which include `schema_crc` and `table_crc`),
//!   `table_crc` covers the page table (which carries a per-page
//!   `crc`), and each page `crc` covers that page's bytes. A single
//!   `u32` — the `preamble_crc`, surfaced as the segment's *content
//!   checksum* — therefore commits to every byte of the segment, and
//!   is what the catalog manifest records per binding.
//! * **v2** (previous) — the 40-byte checksum-free preamble and
//!   12-byte page-table entries. Loads read-only for compatibility;
//!   committed fixtures under `tests/fixtures/` pin this forever.
//!
//! Unknown versions (and v1, which no released writer ever produced)
//! are rejected with a typed [`StoreError::Corrupt`] naming the
//! version — never a panic, never a misparse. All header fields are
//! validated against the actual file length before any allocation is
//! sized from them, so a corrupted `page_count` of `u64::MAX` is an
//! error, not an OOM.

use crate::crc::crc32;
use crate::error::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Segment magic: "EVRS".
pub const MAGIC: u32 = 0x4556_5253;
/// The previous format: no checksums, 40-byte preamble.
pub const VERSION_V2: u16 = 2;
/// The current format: per-page CRCs + transitive preamble CRC.
pub const VERSION_V3: u16 = 3;
/// Preamble length of v2 files.
pub const PREAMBLE_V2: usize = 40;
/// Preamble length of v3 files (v2 + schema_crc + table_crc +
/// preamble_crc).
pub const PREAMBLE_V3: usize = 52;
/// Page-table entry size: v2 `(offset u64, len u32)`.
pub const TABLE_ENTRY_V2: usize = 12;
/// Page-table entry size: v3 `(offset u64, len u32, crc u32)`.
pub const TABLE_ENTRY_V3: usize = 16;
/// Preamble flag bit: the file carries a statistics section
/// (`[u32 len | RelStats payload | u32 crc]`) immediately after the
/// page table. Older v3 files have a zero flags word and simply read
/// as "no stats"; v2 files have no flags word at all.
pub const FLAG_STATS: u16 = 0x0001;

/// A parsed, validated segment preamble — version-independent view.
#[derive(Debug, Clone)]
pub struct SegmentHeader {
    /// On-disk format version ([`VERSION_V2`] or [`VERSION_V3`]).
    pub version: u16,
    /// Preamble flags ([`FLAG_STATS`]); always zero for v2. The
    /// flags word sits inside the CRC-covered preamble prefix, so a
    /// flipped flag bit fails the preamble checksum rather than
    /// silently changing how the tail of the file is parsed.
    pub flags: u16,
    /// Target page size the writer used.
    pub page_size: usize,
    /// Length of the schema block that follows the preamble.
    pub schema_len: usize,
    /// File offset of the page table.
    pub table_offset: u64,
    /// Number of data pages.
    pub page_count: usize,
    /// Number of stored tuples.
    pub tuple_count: u64,
    /// CRC of the schema block (v3 only).
    pub schema_crc: Option<u32>,
    /// CRC of the page-table bytes (v3 only).
    pub table_crc: Option<u32>,
    /// CRC of the first 48 preamble bytes — the segment's content
    /// checksum (v3 only).
    pub content_checksum: Option<u32>,
}

impl SegmentHeader {
    /// Bytes of preamble for this header's version.
    pub fn preamble_len(&self) -> usize {
        match self.version {
            VERSION_V2 => PREAMBLE_V2,
            _ => PREAMBLE_V3,
        }
    }

    fn table_entry_len(&self) -> usize {
        match self.version {
            VERSION_V2 => TABLE_ENTRY_V2,
            _ => TABLE_ENTRY_V3,
        }
    }
}

/// One page's location (and, for v3, its checksum).
#[derive(Debug, Clone, Copy)]
pub struct PageEntry {
    /// File offset of the page.
    pub offset: u64,
    /// On-disk byte length of the page.
    pub len: u32,
    /// CRC-32 of the page bytes (v3 only).
    pub crc: Option<u32>,
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::corrupt(what)
}

/// Read and validate the preamble of an open segment file.
///
/// Dispatches on the version field: v2 and v3 parse (v3 additionally
/// verifies `preamble_crc`); anything else is a typed error naming
/// the version. Every offset/length field is checked against
/// `file_len` with overflow-safe arithmetic.
///
/// # Errors
/// [`StoreError::Io`] on read failures; [`StoreError::Corrupt`] on
/// bad magic, unknown versions, checksum mismatches, or fields
/// inconsistent with the file length.
pub fn read_header(file: &mut File, file_len: u64) -> Result<SegmentHeader, StoreError> {
    if file_len < PREAMBLE_V2 as u64 {
        return Err(corrupt(format!(
            "truncated segment: {file_len} bytes is shorter than any preamble"
        )));
    }
    let mut fixed = [0u8; PREAMBLE_V2];
    file.seek(SeekFrom::Start(0))
        .and_then(|_| file.read_exact(&mut fixed))
        .map_err(|e| StoreError::io("read preamble", &e))?;
    let mut cur = crate::codec::Cursor::new(&fixed, "preamble");
    if cur.u32()? != MAGIC {
        return Err(corrupt("bad magic (not an evirel segment)"));
    }
    let version = cur.u16()?;
    if version != VERSION_V2 && version != VERSION_V3 {
        return Err(corrupt(format!(
            "unsupported segment version {version} (this build reads versions \
             {VERSION_V2} and {VERSION_V3})"
        )));
    }
    let flags = if version == VERSION_V3 {
        cur.u16()?
    } else {
        cur.u16()?;
        0
    };
    let page_size = cur.u32()? as usize;
    let schema_len = cur.u32()? as usize;
    let table_offset = cur.u64()?;
    let page_count_raw = cur.u64()?;
    let tuple_count = cur.u64()?;

    let (schema_crc, table_crc, content_checksum) = if version == VERSION_V3 {
        if file_len < PREAMBLE_V3 as u64 {
            return Err(corrupt("truncated v3 preamble"));
        }
        let mut tail = [0u8; PREAMBLE_V3 - PREAMBLE_V2];
        file.read_exact(&mut tail)
            .map_err(|e| StoreError::io("read preamble checksums", &e))?;
        let mut cur = crate::codec::Cursor::new(&tail, "preamble checksums");
        let schema_crc = cur.u32()?;
        let table_crc = cur.u32()?;
        let preamble_crc = cur.u32()?;
        let mut covered = [0u8; PREAMBLE_V3 - 4];
        covered[..PREAMBLE_V2].copy_from_slice(&fixed);
        covered[PREAMBLE_V2..].copy_from_slice(&tail[..8]);
        let actual = crc32(&covered);
        if actual != preamble_crc {
            return Err(corrupt(format!(
                "preamble checksum mismatch (stored {preamble_crc:#010x}, \
                 computed {actual:#010x})"
            )));
        }
        (Some(schema_crc), Some(table_crc), Some(preamble_crc))
    } else {
        (None, None, None)
    };

    let header = SegmentHeader {
        version,
        flags,
        page_size,
        schema_len,
        table_offset,
        page_count: 0, // validated + set below
        tuple_count,
        schema_crc,
        table_crc,
        content_checksum,
    };

    // Bounds: preamble + schema ≤ table_offset ≤ file_len, and the
    // whole page table must fit in the file. Checked arithmetic
    // throughout — these fields are untrusted input.
    let data_start = (header.preamble_len() as u64)
        .checked_add(schema_len as u64)
        .ok_or_else(|| corrupt("schema length overflows"))?;
    if table_offset < data_start || table_offset > file_len {
        return Err(corrupt(format!(
            "page-table offset {table_offset} outside file (data starts at \
             {data_start}, file is {file_len} bytes)"
        )));
    }
    let entry = header.table_entry_len() as u64;
    let table_len = page_count_raw
        .checked_mul(entry)
        .ok_or_else(|| corrupt("page count overflows"))?;
    let table_end = table_offset
        .checked_add(table_len)
        .ok_or_else(|| corrupt("page table extends past u64"))?;
    if table_end > file_len {
        return Err(corrupt(format!(
            "page table ({page_count_raw} pages) extends past end of file"
        )));
    }
    Ok(SegmentHeader {
        page_count: page_count_raw as usize,
        ..header
    })
}

/// Read, verify (v3: `table_crc`), and parse the page table.
///
/// Each entry is range-checked: pages must live entirely inside
/// `[data_start, table_offset)`.
///
/// # Errors
/// [`StoreError::Io`] on read failures; [`StoreError::Corrupt`] on
/// checksum mismatch or out-of-range entries.
pub fn read_page_table(
    file: &mut File,
    header: &SegmentHeader,
) -> Result<Vec<PageEntry>, StoreError> {
    let entry = header.table_entry_len();
    // Bounded by read_header's table_end ≤ file_len check.
    let mut table = vec![0u8; header.page_count * entry];
    file.seek(SeekFrom::Start(header.table_offset))
        .and_then(|_| file.read_exact(&mut table))
        .map_err(|e| StoreError::io("read page table", &e))?;
    if let Some(expected) = header.table_crc {
        let actual = crc32(&table);
        if actual != expected {
            return Err(corrupt(format!(
                "page-table checksum mismatch (stored {expected:#010x}, \
                 computed {actual:#010x})"
            )));
        }
    }
    let data_start = (header.preamble_len() + header.schema_len) as u64;
    let mut cur = crate::codec::Cursor::new(&table, "page table");
    let mut pages = Vec::with_capacity(header.page_count);
    for i in 0..header.page_count {
        let offset = cur.u64()?;
        let len = cur.u32()?;
        let crc = if header.version == VERSION_V3 {
            Some(cur.u32()?)
        } else {
            None
        };
        let end = offset
            .checked_add(u64::from(len))
            .ok_or_else(|| corrupt(format!("page {i} extent overflows")))?;
        if offset < data_start || end > header.table_offset {
            return Err(corrupt(format!(
                "page {i} [{offset}, {end}) outside data region \
                 [{data_start}, {})",
                header.table_offset
            )));
        }
        pages.push(PageEntry { offset, len, crc });
    }
    Ok(pages)
}
