//! # evirel-store — the paged binary storage engine
//!
//! The layer *under* the streaming executor: extended relations
//! serialized into an on-disk segment format (fixed-target-size pages
//! of length-prefixed tuple records, interned frame dictionaries in a
//! header block, focal sets as their canonical bit patterns, raw-bit
//! `f64` / exact `Ratio` weights, `(sn, sp)` membership pairs), a
//! byte-budgeted [`BufferPool`] with pin/unpin reference counting and
//! clock (second-chance) eviction, and the [`StoredRelation`] handle
//! the plan layer's spill scan streams pages through.
//!
//! Three guarantees the layers above build on:
//!
//! * **Determinism.** `f64` payloads are stored as raw IEEE-754 bits
//!   and records keep insertion order, so a stored scan reproduces
//!   the in-memory scan *bit for bit* — the plan layer's equivalence
//!   property suite checks stored execution against the in-memory
//!   reference oracle.
//! * **Bounded memory.** Readers hold one pinned page at a time; the
//!   pool keeps total cached bytes under `EVIREL_BUFFER_BYTES`
//!   (pinned pages excepted, counted as overcommits), so relations
//!   arbitrarily larger than memory scan, filter, and ∪̃-merge.
//! * **No tuple is too large.** Pages target a fixed size but are
//!   located through an explicit page table, so a jumbo record gets
//!   its own oversized page instead of an error.
//!
//! The sibling `evirel-storage` crate remains the *text* notation
//! (the paper's own syntax, for humans and examples); this crate is
//! the binary engine for data that outgrows memory.

pub mod checkpoint;
pub mod codec;
pub mod compat;
pub mod crc;
pub mod error;
pub mod failpoint;
pub mod journal;
pub mod manifest;
pub mod pool;
pub mod replica;
pub mod segment;
pub mod stats;
pub mod stored;

pub use checkpoint::CheckpointOutcome;
pub use error::StoreError;
pub use journal::{Journal, JournalRecord, JOURNAL_FILE};
pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE};
pub use pool::{
    BufferPool, PageGuard, PoolStats, BUFFER_BYTES_ENV, DEFAULT_BUFFER_BYTES, PARANOID_ENV,
};
pub use replica::{stage_chunk, valid_segment_file_name, verify_segment};
pub use segment::{
    write_segment, write_segment_meta, RecordId, Segment, SegmentMeta, SegmentWriter,
    DEFAULT_PAGE_SIZE,
};
pub use stats::{compute_stats, AttrStats, DistinctSketch, KappaSummary, RelStats, StatsBuilder};
pub use stored::{StoredIter, StoredRelation};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// A process-unique temporary file path for spill segments, under
/// `EVIREL_SPILL_DIR` when set (else the system temp directory). The
/// caller owns deletion; the plan layer's spill path unlinks the file
/// as soon as the segment is open, so the kernel reclaims it when the
/// last handle drops.
pub fn spill_path(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::var_os("EVIREL_SPILL_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "evirel-spill-{}-{n}-{label}.evb",
        std::process::id()
    ))
}
