//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! checksum every durable artifact of the store carries: segment
//! pages, the segment preamble/schema/page-table, journal records,
//! and the catalog manifest.
//!
//! Dependency-free by construction (the build environment has no
//! registry access): the 256-entry table is computed at compile time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"evirel durable segment page".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
