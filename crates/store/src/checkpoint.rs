//! Checkpointing: folding the journal into the manifest.
//!
//! A checkpoint makes three moves, in an order that is safe to crash
//! out of at any point:
//!
//! 1. **Write the manifest** atomically ([`crate::manifest`]) with
//!    the current committed generation and entry set. A crash before
//!    the rename leaves the old manifest; after it, the new one.
//! 2. **Truncate the journal.** A crash *between* 1 and 2 leaves
//!    journal records the new manifest already absorbed — harmless,
//!    because recovery replays only records with `generation >
//!    manifest.generation`.
//! 3. **Garbage-collect** segment files no manifest entry references
//!    (best-effort; on POSIX an open handle keeps a just-unlinked
//!    segment readable, so GC never races readers).

use crate::error::StoreError;
use crate::journal::Journal;
use crate::manifest::Manifest;
use std::collections::HashSet;
use std::path::Path;

/// What [`checkpoint`] did, for STATS and logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOutcome {
    /// Journal records the manifest absorbed.
    pub records_absorbed: u64,
    /// Unreferenced segment/temp files removed by GC.
    pub files_removed: u64,
}

/// Run a checkpoint in `dir`: durably write `manifest`, truncate
/// `journal`, then GC unreferenced `seg-*.evb` and stale `*.tmp-*`
/// files.
///
/// # Errors
/// [`StoreError::Io`] if the manifest write or journal truncation
/// fails (GC failures are swallowed — leaking a file is harmless and
/// the next checkpoint retries).
pub fn checkpoint(
    dir: &Path,
    manifest: &Manifest,
    journal: &mut Journal,
) -> Result<CheckpointOutcome, StoreError> {
    let records_absorbed = journal.records_since_checkpoint();
    manifest.write(dir)?;
    journal.truncate()?;
    let files_removed = gc(dir, manifest);
    Ok(CheckpointOutcome {
        records_absorbed,
        files_removed,
    })
}

/// Remove segment files the manifest no longer references, plus
/// leftover temp files from interrupted writes. Best-effort.
fn gc(dir: &Path, manifest: &Manifest) -> u64 {
    let referenced: HashSet<&str> = manifest.entries.iter().map(|e| e.file.as_str()).collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_segment =
            name.starts_with("seg-") && name.ends_with(".evb") && !referenced.contains(name);
        let stale_temp = name.contains(".tmp-");
        if (stale_segment || stale_temp) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalRecord;
    use crate::manifest::ManifestEntry;

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evirel-checkpoint-test-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_absorbs_journal_and_gcs() {
        let d = dir("basic");
        let (mut journal, _) = Journal::open_or_create(&d).unwrap();
        journal
            .append(&JournalRecord::Bind {
                name: "m0".into(),
                file: "seg-000002.evb".into(),
                format_version: 3,
                checksum: 7,
                tuple_count: 5,
                generation: 1,
            })
            .unwrap();
        // A referenced segment, an orphan, and a stale temp file.
        std::fs::write(d.join("seg-000002.evb"), b"live").unwrap();
        std::fs::write(d.join("seg-000001.evb"), b"orphan").unwrap();
        std::fs::write(d.join("x.evb.tmp-123-4"), b"stale").unwrap();
        let manifest = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                name: "m0".into(),
                file: "seg-000002.evb".into(),
                format_version: 3,
                checksum: 7,
                tuple_count: 5,
                generation: 1,
            }],
        };
        let outcome = checkpoint(&d, &manifest, &mut journal).unwrap();
        assert_eq!(outcome.records_absorbed, 1);
        assert_eq!(outcome.files_removed, 2);
        assert!(d.join("seg-000002.evb").exists());
        assert!(!d.join("seg-000001.evb").exists());
        assert!(!d.join("x.evb.tmp-123-4").exists());
        // Journal is empty; manifest carries the state.
        drop(journal);
        let (j, replayed) = Journal::open_or_create(&d).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(j.records_since_checkpoint(), 0);
        assert_eq!(Manifest::load(&d).unwrap().unwrap(), manifest);
        std::fs::remove_dir_all(&d).ok();
    }
}
