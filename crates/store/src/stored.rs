//! Disk-backed relations: a segment plus the buffer pool it pages
//! through.

use crate::error::StoreError;
use crate::pool::BufferPool;
use crate::segment::{write_segment, Segment, DEFAULT_PAGE_SIZE};
use evirel_relation::{ExtendedRelation, Schema, Tuple};
use std::path::Path;
use std::sync::Arc;

/// A relation whose extension lives in an on-disk segment. Scans pull
/// one page at a time through the shared [`BufferPool`], so a stored
/// relation can be arbitrarily larger than memory; the plan layer's
/// `SpillScanOp` streams it through the same `Operator` interface as
/// an in-memory scan, with bit-identical results.
#[derive(Debug)]
pub struct StoredRelation {
    segment: Arc<Segment>,
    pool: Arc<BufferPool>,
}

impl StoredRelation {
    /// Open a stored relation, paging through `pool`.
    ///
    /// # Errors
    /// As [`Segment::open`].
    pub fn open(
        path: impl AsRef<Path>,
        pool: Arc<BufferPool>,
    ) -> Result<StoredRelation, StoreError> {
        Ok(StoredRelation {
            segment: Arc::new(Segment::open(path)?),
            pool,
        })
    }

    /// Write `rel` to a segment at `path` and open it.
    ///
    /// # Errors
    /// Write or open failures.
    pub fn store(
        rel: &ExtendedRelation,
        path: impl AsRef<Path>,
        pool: Arc<BufferPool>,
    ) -> Result<StoredRelation, StoreError> {
        write_segment(rel, path.as_ref(), DEFAULT_PAGE_SIZE)?;
        StoredRelation::open(path, pool)
    }

    /// Wrap an already-open segment.
    pub fn from_segment(segment: Arc<Segment>, pool: Arc<BufferPool>) -> StoredRelation {
        StoredRelation { segment, pool }
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.segment.schema()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.segment.tuple_count() as usize
    }

    /// `true` when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.segment.tuple_count() == 0
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Arc<Segment> {
        &self.segment
    }

    /// The pool this relation pages through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The segment's persisted statistics, when it carries a stats
    /// section (`None` for v2 / pre-stats files — never an error).
    pub fn stats(&self) -> Option<Arc<crate::stats::RelStats>> {
        self.segment.stats().cloned()
    }

    /// Decode all tuples of one page (pinning it only for the decode).
    ///
    /// # Errors
    /// Page read/decode failures.
    pub fn page_tuples(&self, page: u64) -> Result<Vec<Tuple>, StoreError> {
        let guard = self.pool.get(&self.segment, page)?;
        self.segment.decode_page(&guard)
    }

    /// Stream every tuple in insertion order, holding at most one
    /// decoded page in memory.
    pub fn iter(&self) -> StoredIter<'_> {
        StoredIter {
            stored: self,
            page: 0,
            buf: Vec::new().into_iter(),
        }
    }

    /// Materialize the whole relation in memory — the bridge back to
    /// the in-memory executor (and the reference oracle in tests).
    ///
    /// # Errors
    /// Decode failures; insertion errors for corrupt duplicate keys.
    pub fn to_relation(&self) -> Result<ExtendedRelation, StoreError> {
        let mut out = ExtendedRelation::new(Arc::clone(self.schema()));
        for tuple in self.iter() {
            out.insert(tuple?).map_err(StoreError::from)?;
        }
        Ok(out)
    }
}

/// Streaming iterator over a stored relation (see
/// [`StoredRelation::iter`]).
pub struct StoredIter<'a> {
    stored: &'a StoredRelation,
    page: u64,
    buf: std::vec::IntoIter<Tuple>,
}

impl Iterator for StoredIter<'_> {
    type Item = Result<Tuple, StoreError>;

    fn next(&mut self) -> Option<Result<Tuple, StoreError>> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(Ok(t));
            }
            if self.page >= self.stored.segment.page_count() {
                return None;
            }
            match self.stored.page_tuples(self.page) {
                Ok(tuples) => {
                    self.page += 1;
                    self.buf = tuples.into_iter();
                }
                Err(e) => {
                    self.page = self.stored.segment.page_count();
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder};

    #[test]
    fn store_iter_materialize() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("S")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..64 {
            b = b
                .tuple(|t| {
                    t.set_str("k", format!("k{i}"))
                        .set_evidence_with_omega("d", [(&["x"][..], 0.5)], 0.5)
                        .membership_pair(0.25 + 0.5 * ((i % 2) as f64), 1.0)
                })
                .unwrap();
        }
        let rel = b.build();
        let dir = std::env::temp_dir().join(format!("evirel-stored-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.evb");
        let pool = Arc::new(BufferPool::new(1024));
        let stored = StoredRelation::store(&rel, &path, pool).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(stored.len(), 64);
        assert!(!stored.is_empty());
        let back = stored.to_relation().unwrap();
        assert_eq!(back.len(), rel.len());
        // Insertion order preserved, values bit-exact.
        for (orig, dec) in rel.iter().zip(back.iter()) {
            assert_eq!(orig.values(), dec.values());
            assert_eq!(orig.membership().sn(), dec.membership().sn());
        }
    }
}
