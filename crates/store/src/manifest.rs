//! The catalog manifest: the durable root of a data directory.
//!
//! `MANIFEST.evm` records the last *checkpointed* catalog state — the
//! committed generation number plus, per binding, the segment file
//! name, its on-disk format version, its content checksum, and the
//! generation that produced it. Mutations after the checkpoint live
//! in the write-ahead journal ([`crate::journal`]); recovery is
//! "load manifest, then replay journal records with a higher
//! generation".
//!
//! ```text
//! ┌───────────────────────────────────────────────┐
//! │ magic "EVMF" (u32) ∣ version (u16) ∣ pad (u16)│
//! │ generation (u64)                              │
//! │ entry_count (u32)                             │
//! │ entries: name ∣ file ∣ format_version (u16) ∣ │
//! │          checksum (u32) ∣ tuple_count (u64) ∣ │
//! │          generation (u64)                     │
//! │ crc32 of everything above (u32)               │
//! └───────────────────────────────────────────────┘
//! ```
//!
//! The manifest is replaced only by write-temp → fsync → rename →
//! fsync(dir): a crash mid-checkpoint leaves the previous manifest
//! intact, and the trailing CRC rejects a torn or bit-rotted file
//! with a typed [`StoreError::Corrupt`].

use crate::codec::{self, Cursor};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::failpoint::{fp_create, fp_rename, fp_sync, fp_sync_parent_dir, fp_write_all};
use std::path::Path;

/// Manifest magic: "EVMF".
const MAGIC: u32 = 0x4556_4D46;
/// Manifest format version.
const VERSION: u16 = 1;

/// File name of the manifest inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST.evm";

/// One catalog binding recorded in the manifest (or journaled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Catalog binding name.
    pub name: String,
    /// Segment file name, relative to the data directory.
    pub file: String,
    /// On-disk segment format version.
    pub format_version: u16,
    /// The segment's content checksum (0 for v2 segments, which
    /// carry none).
    pub checksum: u32,
    /// Stored tuple count (informational; STATS reports it).
    pub tuple_count: u64,
    /// Generation of the mutation that produced this binding.
    pub generation: u64,
}

impl ManifestEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.name);
        codec::put_str(out, &self.file);
        codec::put_u16(out, self.format_version);
        codec::put_u32(out, self.checksum);
        codec::put_u64(out, self.tuple_count);
        codec::put_u64(out, self.generation);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<ManifestEntry, StoreError> {
        Ok(ManifestEntry {
            name: cur.str()?.to_owned(),
            file: cur.str()?.to_owned(),
            format_version: cur.u16()?,
            checksum: cur.u32()?,
            tuple_count: cur.u64()?,
            generation: cur.u64()?,
        })
    }
}

/// A loaded (or about-to-be-written) manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The committed generation this manifest checkpoints.
    pub generation: u64,
    /// Bindings in name order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u32(&mut out, MAGIC);
        codec::put_u16(&mut out, VERSION);
        codec::put_u16(&mut out, 0); // pad
        codec::put_u64(&mut out, self.generation);
        codec::put_u32(&mut out, self.entries.len() as u32);
        for entry in &self.entries {
            entry.encode(&mut out);
        }
        let crc = crc32(&out);
        codec::put_u32(&mut out, crc);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() < 4 {
            return Err(StoreError::corrupt("manifest shorter than its checksum"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        let actual = crc32(body);
        if stored != actual {
            return Err(StoreError::corrupt(format!(
                "manifest checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut cur = Cursor::new(body, "manifest");
        if cur.u32()? != MAGIC {
            return Err(StoreError::corrupt("bad manifest magic"));
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(StoreError::corrupt(format!(
                "unsupported manifest version {version} (this build reads version {VERSION})"
            )));
        }
        let _pad = cur.u16()?;
        let generation = cur.u64()?;
        let count = cur.u32()? as usize;
        // Each entry costs ≥ 30 bytes — cap against the untrusted count.
        let mut entries = Vec::with_capacity(count.min(cur.remaining() / 30));
        for _ in 0..count {
            entries.push(ManifestEntry::decode(&mut cur)?);
        }
        if !cur.is_exhausted() {
            return Err(StoreError::corrupt("trailing bytes after manifest entries"));
        }
        Ok(Manifest {
            generation,
            entries,
        })
    }

    /// Load the manifest from `dir`, `None` when the directory has
    /// never been checkpointed (no manifest file).
    ///
    /// # Errors
    /// [`StoreError::Io`] on read failures; [`StoreError::Corrupt`]
    /// on checksum or format violations — a torn manifest is an
    /// error, never silently treated as empty, because a data
    /// directory that *has* a manifest losing it means losing the
    /// committed state.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(format!("read {path:?}"), &e)),
        };
        Manifest::decode(&bytes).map(Some)
    }

    /// Atomically replace the manifest in `dir`: write a sibling temp
    /// file, fsync it, rename over [`MANIFEST_FILE`], fsync the
    /// directory. A crash at any point leaves either the old or the
    /// new manifest, both checksum-valid.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let final_path = dir.join(MANIFEST_FILE);
        let tmp_path = dir.join(format!("{MANIFEST_FILE}.tmp-{}", std::process::id()));
        let bytes = self.encode();
        let result = (|| {
            let mut file = fp_create(&tmp_path)
                .map_err(|e| StoreError::io(format!("create {tmp_path:?}"), &e))?;
            fp_write_all(&mut file, &bytes).map_err(|e| StoreError::io("write manifest", &e))?;
            fp_sync(&file).map_err(|e| StoreError::io("fsync manifest", &e))?;
            fp_rename(&tmp_path, &final_path)
                .map_err(|e| StoreError::io("rename manifest into place", &e))?;
            fp_sync_parent_dir(&final_path)
                .map_err(|e| StoreError::io("fsync data directory", &e))?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp_path).ok();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointFs;

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "evirel-manifest-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Manifest {
        Manifest {
            generation: 42,
            entries: vec![
                ManifestEntry {
                    name: "ra".into(),
                    file: "seg-000001.evb".into(),
                    format_version: 3,
                    checksum: 0xDEAD_BEEF,
                    tuple_count: 120,
                    generation: 17,
                },
                ManifestEntry {
                    name: "m0".into(),
                    file: "seg-000002.evb".into(),
                    format_version: 3,
                    checksum: 0x1234_5678,
                    tuple_count: 240,
                    generation: 42,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let d = dir("roundtrip");
        assert_eq!(Manifest::load(&d).unwrap(), None);
        let m = sample();
        m.write(&d).unwrap();
        assert_eq!(Manifest::load(&d).unwrap(), Some(m));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corruption_is_typed_not_empty() {
        let d = dir("corrupt");
        sample().write(&d).unwrap();
        let path = d.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&d),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(matches!(
            Manifest::load(&d),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn replace_is_atomic_under_crash_sweep() {
        let d = dir("atomic");
        let old = sample();
        old.write(&d).unwrap();
        let new = Manifest {
            generation: 99,
            entries: vec![],
        };
        let total = {
            let fp = FailpointFs::observe();
            new.write(&d).unwrap();
            let t = fp.units();
            drop(fp);
            old.write(&d).unwrap();
            t
        };
        for kill_at in 0..=total {
            let fp = FailpointFs::kill_after(kill_at);
            let result = new.write(&d);
            drop(fp);
            // Whatever happened, a checksum-valid manifest survives —
            // either the old or the new one, never a torn mix.
            let loaded = Manifest::load(&d).unwrap().unwrap();
            assert!(loaded == old || loaded == new, "kill at {kill_at}");
            if result.is_ok() {
                assert_eq!(loaded, new);
            }
            old.write(&d).unwrap();
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
