//! The write-ahead journal of catalog mutations.
//!
//! Between checkpoints, every catalog mutation (bind via
//! attach/load/merge, or drop) appends one record to `journal.evj`
//! and fsyncs it **before** the in-memory `SharedCatalog` publishes
//! the new generation — a generation a client has seen is therefore
//! always recoverable. At checkpoint the manifest absorbs the
//! journal's effects and the journal truncates back to its header.
//!
//! ```text
//! header (8 B): magic "EVJL" (u32) ∣ version (u16) ∣ pad (u16)
//! record*:      body_len (u32) ∣ crc32(body) (u32) ∣ body
//! ```
//!
//! Record bodies are self-describing (a kind tag, then fields). A
//! record is **committed** iff its full frame is present and the CRC
//! matches; [`Journal::open_or_create`] replays the longest valid
//! prefix and truncates any torn tail — a crash mid-append loses at
//! most the record being written, which by the fsync ordering was
//! never acknowledged to any client. A record whose CRC matches but
//! whose body does not decode is a typed [`StoreError::Corrupt`]
//! (that is damage, not a torn write).

use crate::codec::{self, Cursor};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::failpoint::{fp_set_len, fp_sync, fp_write_all};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Journal magic: "EVJL".
const MAGIC: u32 = 0x4556_4A4C;
/// Journal format version.
const VERSION: u16 = 1;
/// Bytes of journal header.
const HEADER_LEN: u64 = 8;
/// Sanity cap on one record body — a journal record is a few strings
/// and integers; anything claiming megabytes is corruption.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// File name of the journal inside a data directory.
pub const JOURNAL_FILE: &str = "journal.evj";

const KIND_BIND: u8 = 1;
const KIND_DROP: u8 = 2;

/// One journaled catalog mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A binding appeared or was replaced: `name` now maps to
    /// segment `file` (relative to the data directory).
    Bind {
        /// Catalog binding name.
        name: String,
        /// Segment file name, relative to the data directory.
        file: String,
        /// On-disk segment format version.
        format_version: u16,
        /// The segment's content checksum (0 for v2 segments).
        checksum: u32,
        /// Stored tuple count.
        tuple_count: u64,
        /// Generation this mutation published.
        generation: u64,
    },
    /// A binding was removed.
    Drop {
        /// Catalog binding name.
        name: String,
        /// Generation this mutation published.
        generation: u64,
    },
}

impl JournalRecord {
    /// The generation this mutation published.
    pub fn generation(&self) -> u64 {
        match self {
            JournalRecord::Bind { generation, .. } | JournalRecord::Drop { generation, .. } => {
                *generation
            }
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Bind {
                name,
                file,
                format_version,
                checksum,
                tuple_count,
                generation,
            } => {
                out.push(KIND_BIND);
                codec::put_str(out, name);
                codec::put_str(out, file);
                codec::put_u16(out, *format_version);
                codec::put_u32(out, *checksum);
                codec::put_u64(out, *tuple_count);
                codec::put_u64(out, *generation);
            }
            JournalRecord::Drop { name, generation } => {
                out.push(KIND_DROP);
                codec::put_str(out, name);
                codec::put_u64(out, *generation);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<JournalRecord, StoreError> {
        match cur.u8()? {
            KIND_BIND => Ok(JournalRecord::Bind {
                name: cur.str()?.to_owned(),
                file: cur.str()?.to_owned(),
                format_version: cur.u16()?,
                checksum: cur.u32()?,
                tuple_count: cur.u64()?,
                generation: cur.u64()?,
            }),
            KIND_DROP => Ok(JournalRecord::Drop {
                name: cur.str()?.to_owned(),
                generation: cur.u64()?,
            }),
            kind => Err(StoreError::corrupt(format!(
                "unknown journal record kind {kind}"
            ))),
        }
    }
}

/// Iterate `records` from a generation cursor: every record stamped
/// **strictly after** `generation`, in order. This is the replication
/// sender's resume primitive — a follower that says "I have applied
/// through G" is streamed exactly `since(&history, G)`, so a record
/// is never re-sent and never skipped as long as generations are
/// totally ordered (which the journal's single-writer append
/// discipline guarantees).
pub fn since(records: &[JournalRecord], generation: u64) -> impl Iterator<Item = &JournalRecord> {
    records.iter().filter(move |r| r.generation() > generation)
}

/// An open journal file, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Committed records appended (or replayed) since open/truncate.
    records_since_checkpoint: u64,
}

impl Journal {
    /// Open (or create) the journal in `dir`, replaying its committed
    /// records. A torn tail — an incomplete frame or a CRC mismatch
    /// on the *last* frame — is truncated away; damage earlier in the
    /// file is a typed error.
    ///
    /// # Errors
    /// [`StoreError::Io`] on file failures; [`StoreError::Corrupt`]
    /// on a bad header or mid-file damage.
    pub fn open_or_create(dir: &Path) -> Result<(Journal, Vec<JournalRecord>), StoreError> {
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::io(format!("open {path:?}"), &e))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::io("stat journal", &e))?
            .len();

        if len < HEADER_LEN {
            // Brand new (or torn before the tiny header finished):
            // (re)write the header.
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            codec::put_u32(&mut header, MAGIC);
            codec::put_u16(&mut header, VERSION);
            codec::put_u16(&mut header, 0);
            file.set_len(0)
                .and_then(|_| file.seek(SeekFrom::Start(0)))
                .map_err(|e| StoreError::io("reset journal", &e))?;
            fp_write_all(&mut file, &header)
                .map_err(|e| StoreError::io("write journal header", &e))?;
            fp_sync(&file).map_err(|e| StoreError::io("fsync journal header", &e))?;
            return Ok((
                Journal {
                    file,
                    path,
                    records_since_checkpoint: 0,
                },
                Vec::new(),
            ));
        }

        let mut bytes = Vec::with_capacity(len.min(64 * 1024 * 1024) as usize);
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io("read journal", &e))?;
        {
            let mut cur = Cursor::new(&bytes[..HEADER_LEN as usize], "journal header");
            if cur.u32()? != MAGIC {
                return Err(StoreError::corrupt("bad journal magic"));
            }
            let version = cur.u16()?;
            if version != VERSION {
                return Err(StoreError::corrupt(format!(
                    "unsupported journal version {version} (this build reads version {VERSION})"
                )));
            }
        }

        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let valid_end = loop {
            if pos == bytes.len() {
                break pos; // clean end
            }
            if bytes.len() - pos < 8 {
                break pos; // torn frame header
            }
            let body_len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if body_len as u64 > u64::from(MAX_RECORD) {
                // An absurd length: treat as a torn/garbage tail only
                // if nothing follows it would be unreachable anyway —
                // it IS the tail by construction (we stop here).
                break pos;
            }
            let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
            let body_start = pos + 8;
            let Some(body_end) = body_start.checked_add(body_len) else {
                break pos;
            };
            if body_end > bytes.len() {
                break pos; // torn body
            }
            let body = &bytes[body_start..body_end];
            if crc32(body) != stored_crc {
                // CRC mismatch: a torn tail if this is the last frame,
                // damage otherwise.
                if body_end == bytes.len() {
                    break pos;
                }
                return Err(StoreError::corrupt(format!(
                    "journal record at offset {pos} fails its checksum with records after it"
                )));
            }
            let mut cur = Cursor::new(body, "journal record");
            let record = JournalRecord::decode(&mut cur)?;
            if !cur.is_exhausted() {
                return Err(StoreError::corrupt(format!(
                    "trailing bytes in journal record at offset {pos}"
                )));
            }
            records.push(record);
            pos = body_end;
        };

        if valid_end < bytes.len() {
            // Drop the torn tail so the next append starts clean.
            file.set_len(valid_end as u64)
                .and_then(|_| file.sync_all())
                .map_err(|e| StoreError::io("truncate torn journal tail", &e))?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))
            .map_err(|e| StoreError::io("seek journal end", &e))?;
        let count = records.len() as u64;
        Ok((
            Journal {
                file,
                path,
                records_since_checkpoint: count,
            },
            records,
        ))
    }

    /// Append one record and fsync — on return the mutation is
    /// durable and may be published to readers.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures. After an error the
    /// journal file may hold a torn frame; the next
    /// [`Journal::open_or_create`] truncates it.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        let mut body = Vec::new();
        record.encode(&mut body);
        let mut frame = Vec::with_capacity(8 + body.len());
        codec::put_u32(&mut frame, body.len() as u32);
        codec::put_u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);
        fp_write_all(&mut self.file, &frame)
            .map_err(|e| StoreError::io("append journal record", &e))?;
        fp_sync(&self.file).map_err(|e| StoreError::io("fsync journal", &e))?;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    /// Truncate back to the header — the checkpoint's last step,
    /// after the manifest that absorbs these records is durably in
    /// place.
    ///
    /// # Errors
    /// [`StoreError::Io`] on failures.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        fp_set_len(&self.file, HEADER_LEN).map_err(|e| StoreError::io("truncate journal", &e))?;
        fp_sync(&self.file).map_err(|e| StoreError::io("fsync truncated journal", &e))?;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(|e| StoreError::io("seek journal start", &e))?;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    /// Committed records appended or replayed since the last
    /// checkpoint (STATS reports this).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointFs;

    fn dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("evirel-journal-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn bind(n: u64) -> JournalRecord {
        JournalRecord::Bind {
            name: format!("m{n}"),
            file: format!("seg-{n:06}.evb"),
            format_version: 3,
            checksum: 0x1111 * n as u32,
            tuple_count: n * 10,
            generation: n,
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let d = dir("roundtrip");
        let (mut j, replayed) = Journal::open_or_create(&d).unwrap();
        assert!(replayed.is_empty());
        let records = vec![
            bind(1),
            JournalRecord::Drop {
                name: "m1".into(),
                generation: 2,
            },
            bind(3),
        ];
        for r in &records {
            j.append(r).unwrap();
        }
        drop(j);
        let (j, replayed) = Journal::open_or_create(&d).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(j.records_since_checkpoint(), 3);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_truncated_committed_prefix_kept() {
        let d = dir("torn");
        let (mut j, _) = Journal::open_or_create(&d).unwrap();
        j.append(&bind(1)).unwrap();
        j.append(&bind(2)).unwrap();
        drop(j);
        // Simulate a crash mid-append: an incomplete third frame.
        let path = d.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[42, 0, 0, 0, 7, 7]); // len=42, half a crc
        std::fs::write(&path, &torn).unwrap();
        let (_, replayed) = Journal::open_or_create(&d).unwrap();
        assert_eq!(replayed, vec![bind(1), bind(2)]);
        // And the file itself was repaired.
        assert_eq!(std::fs::read(&path).unwrap(), full);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn mid_file_damage_is_typed_error() {
        let d = dir("damage");
        let (mut j, _) = Journal::open_or_create(&d).unwrap();
        j.append(&bind(1)).unwrap();
        j.append(&bind(2)).unwrap();
        drop(j);
        let path = d.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside record 1's body (not the tail record).
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::open_or_create(&d),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn truncate_resets() {
        let d = dir("trunc");
        let (mut j, _) = Journal::open_or_create(&d).unwrap();
        j.append(&bind(1)).unwrap();
        j.truncate().unwrap();
        assert_eq!(j.records_since_checkpoint(), 0);
        j.append(&bind(9)).unwrap();
        drop(j);
        let (_, replayed) = Journal::open_or_create(&d).unwrap();
        assert_eq!(replayed, vec![bind(9)]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_sweep_every_kill_point_recovers_a_prefix() {
        let d = dir("sweep");
        let records: Vec<JournalRecord> = (1..=4).map(bind).collect();
        let total = {
            let (mut j, _) = Journal::open_or_create(&d).unwrap();
            let fp = FailpointFs::observe();
            for r in &records {
                j.append(r).unwrap();
            }
            let t = fp.units();
            drop(fp);
            t
        };
        for kill_at in 0..=total {
            std::fs::remove_dir_all(&d).ok();
            std::fs::create_dir_all(&d).unwrap();
            let (mut j, _) = Journal::open_or_create(&d).unwrap();
            let mut acked = 0u64;
            {
                let fp = FailpointFs::kill_after(kill_at);
                for r in &records {
                    match j.append(r) {
                        Ok(()) => acked += 1,
                        Err(_) => break,
                    }
                }
                drop(fp);
            }
            drop(j);
            let (_, replayed) = Journal::open_or_create(&d).unwrap();
            // Every acked record must replay; a final unacked record
            // may legitimately replay too if its bytes all landed
            // before the failing fsync.
            assert!(
                replayed.len() as u64 >= acked && replayed.len() as u64 <= acked + 1,
                "kill at {kill_at}: acked {acked}, replayed {}",
                replayed.len()
            );
            assert_eq!(replayed, records[..replayed.len()], "kill at {kill_at}");
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
