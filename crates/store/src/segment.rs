//! On-disk segments: a header with the interned schema block, then
//! fixed-target-size data pages of length-prefixed tuple records.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ preamble (40 B): magic ∣ version ∣ flags ∣ page_size ∣       │
//! │                  schema_len ∣ table_offset ∣ page_count ∣    │
//! │                  tuple_count                                 │
//! ├──────────────────────────────────────────────────────────────┤
//! │ schema block (codec::encode_schema — interned frame dicts)   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ page 0: [u32 record_count] [u32 len ∣ record]*               │
//! │ page 1: …                                                    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ page table: page_count × (u64 offset ∣ u32 len)              │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Pages *target* `page_size` bytes but are located through the
//! explicit page table, so a single record larger than the target
//! simply gets its own oversized page — no record ever spans pages,
//! and no tuple is ever too large to store. Records are appended in
//! insertion order; a full-segment scan therefore reproduces the
//! source relation's iteration order exactly.

use crate::codec::{self, Cursor};
use crate::error::StoreError;
use evirel_relation::{AttrDomain, ExtendedRelation, Schema, Tuple};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: u32 = 0x4556_5253; // "EVRS"
                                // v2: focal-set word counts widened from u8 to checked u16.
const VERSION: u16 = 2;
const PREAMBLE_LEN: usize = 40;
/// Bytes of page header: the record count.
const PAGE_HEADER: usize = 4;

/// Default target page size (bytes).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// The location of one record inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordId {
    /// Page number.
    pub page: u64,
    /// Record slot within the page.
    pub slot: u32,
}

/// Process-unique segment ids — the buffer pool's cache key namespace.
static NEXT_SEGMENT_ID: AtomicU64 = AtomicU64::new(1);

// ------------------------------------------------------------- writer

/// Streams tuples into a new segment file. Records accumulate in one
/// in-memory page buffer; full pages flush to disk, so peak writer
/// memory is a single page regardless of relation size.
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    page_size: usize,
    schema_len: usize,
    /// Current page payload (after the record-count header).
    page_buf: Vec<u8>,
    page_records: u32,
    pages: Vec<(u64, u32)>,
    next_offset: u64,
    tuple_count: u64,
    scratch: Vec<u8>,
}

impl SegmentWriter {
    /// Create a segment at `path` for relations over `schema`, with
    /// the given target page size (≥ 64 bytes enforced).
    ///
    /// # Errors
    /// [`StoreError::Io`] on file-creation failures.
    pub fn create(
        path: impl AsRef<Path>,
        schema: &Schema,
        page_size: usize,
    ) -> Result<SegmentWriter, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            File::create(&path).map_err(|e| StoreError::io(format!("create {path:?}"), &e))?;
        let mut header = vec![0u8; PREAMBLE_LEN];
        codec::encode_schema(schema, &mut header);
        let schema_len = header.len() - PREAMBLE_LEN;
        file.write_all(&header)
            .map_err(|e| StoreError::io("write segment header", &e))?;
        let page_size = page_size.max(64);
        Ok(SegmentWriter {
            file,
            path,
            page_size,
            schema_len,
            page_buf: Vec::with_capacity(page_size),
            page_records: 0,
            pages: Vec::new(),
            next_offset: (PREAMBLE_LEN + schema_len) as u64,
            tuple_count: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one tuple, returning where it landed. Tuples must be
    /// valid for the schema the writer was created with (the reader
    /// revalidates on decode).
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn append(&mut self, tuple: &Tuple) -> Result<RecordId, StoreError> {
        self.scratch.clear();
        codec::encode_record(tuple, &mut self.scratch);
        let framed = 4 + self.scratch.len();
        // Flush the current page when this record would overflow the
        // target — unless the page is empty (a jumbo record gets its
        // own oversized page).
        if !self.page_buf.is_empty() && PAGE_HEADER + self.page_buf.len() + framed > self.page_size
        {
            self.flush_page()?;
        }
        let id = RecordId {
            page: self.pages.len() as u64,
            slot: self.page_records,
        };
        codec::put_u32(&mut self.page_buf, self.scratch.len() as u32);
        self.page_buf.extend_from_slice(&self.scratch);
        self.page_records += 1;
        self.tuple_count += 1;
        Ok(id)
    }

    fn flush_page(&mut self) -> Result<(), StoreError> {
        if self.page_buf.is_empty() {
            return Ok(());
        }
        let len = (PAGE_HEADER + self.page_buf.len()) as u32;
        let mut header = [0u8; PAGE_HEADER];
        header.copy_from_slice(&self.page_records.to_le_bytes());
        self.file
            .write_all(&header)
            .and_then(|()| self.file.write_all(&self.page_buf))
            .map_err(|e| StoreError::io("write page", &e))?;
        self.pages.push((self.next_offset, len));
        self.next_offset += u64::from(len);
        self.page_buf.clear();
        self.page_records = 0;
        Ok(())
    }

    /// Flush the final page, write the page table, and patch the
    /// preamble. Returns the path the segment was written to.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn finish(mut self) -> Result<PathBuf, StoreError> {
        self.flush_page()?;
        let table_offset = self.next_offset;
        let mut table = Vec::with_capacity(self.pages.len() * 12);
        for (offset, len) in &self.pages {
            codec::put_u64(&mut table, *offset);
            codec::put_u32(&mut table, *len);
        }
        self.file
            .write_all(&table)
            .map_err(|e| StoreError::io("write page table", &e))?;
        let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
        codec::put_u32(&mut preamble, MAGIC);
        codec::put_u16(&mut preamble, VERSION);
        codec::put_u16(&mut preamble, 0); // flags
        codec::put_u32(&mut preamble, self.page_size as u32);
        codec::put_u32(&mut preamble, self.schema_len as u32);
        codec::put_u64(&mut preamble, table_offset);
        codec::put_u64(&mut preamble, self.pages.len() as u64);
        codec::put_u64(&mut preamble, self.tuple_count);
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.write_all(&preamble))
            .and_then(|()| self.file.flush())
            .map_err(|e| StoreError::io("patch preamble", &e))?;
        Ok(self.path)
    }
}

/// Write a whole relation to a segment at `path` (insertion order).
///
/// # Errors
/// As [`SegmentWriter`].
pub fn write_segment(
    rel: &ExtendedRelation,
    path: impl AsRef<Path>,
    page_size: usize,
) -> Result<(), StoreError> {
    let mut writer = SegmentWriter::create(path, rel.schema(), page_size)?;
    for tuple in rel.iter() {
        writer.append(tuple)?;
    }
    writer.finish()?;
    Ok(())
}

// ------------------------------------------------------------- reader

/// An open segment: the parsed header (schema + domains + page table)
/// plus the file handle pages are read through. Cheap to share behind
/// an [`Arc`]; all reads are interior-mutex, so exchange workers can
/// page through one segment concurrently.
#[derive(Debug)]
pub struct Segment {
    id: u64,
    file: Mutex<File>,
    schema: Arc<Schema>,
    domains: Vec<Option<Arc<AttrDomain>>>,
    pages: Vec<(u64, u32)>,
    tuple_count: u64,
    page_size: usize,
}

impl Segment {
    /// Open a segment, rebuilding its schema (and interned domain
    /// dictionary) from the header.
    ///
    /// # Errors
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] on unreadable or
    /// malformed files.
    pub fn open(path: impl AsRef<Path>) -> Result<Segment, StoreError> {
        Segment::open_impl(path.as_ref(), None)
    }

    /// Open a segment using a caller-supplied schema instead of
    /// rebuilding one from the header — the spill path uses this so
    /// decoded tuples share the executor's own domain `Arc`s (frames
    /// stay pointer-identical; no structural re-interning). The
    /// stored header is still parsed for the page table.
    ///
    /// # Errors
    /// As [`Segment::open`].
    pub fn open_with_schema(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
    ) -> Result<Segment, StoreError> {
        Segment::open_impl(path.as_ref(), Some(schema))
    }

    fn open_impl(path: &Path, schema: Option<Arc<Schema>>) -> Result<Segment, StoreError> {
        let mut file =
            File::open(path).map_err(|e| StoreError::io(format!("open {path:?}"), &e))?;
        let mut preamble = [0u8; PREAMBLE_LEN];
        file.read_exact(&mut preamble)
            .map_err(|e| StoreError::io("read preamble", &e))?;
        let mut cur = Cursor::new(&preamble, "preamble");
        if cur.u32()? != MAGIC {
            return Err(StoreError::corrupt("bad magic (not an evirel segment)"));
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(StoreError::corrupt(format!(
                "unsupported segment version {version}"
            )));
        }
        let _flags = cur.u16()?;
        let page_size = cur.u32()? as usize;
        let schema_len = cur.u32()? as usize;
        let table_offset = cur.u64()?;
        let page_count = cur.u64()? as usize;
        let tuple_count = cur.u64()?;

        let mut schema_bytes = vec![0u8; schema_len];
        file.read_exact(&mut schema_bytes)
            .map_err(|e| StoreError::io("read schema block", &e))?;
        let (schema, domains) = match schema {
            Some(live) => {
                let domains = codec::domains_of(&live);
                (live, domains)
            }
            None => {
                let mut cur = Cursor::new(&schema_bytes, "schema block");
                codec::decode_schema(&mut cur)?
            }
        };

        file.seek(SeekFrom::Start(table_offset))
            .map_err(|e| StoreError::io("seek page table", &e))?;
        let mut table = vec![0u8; page_count * 12];
        file.read_exact(&mut table)
            .map_err(|e| StoreError::io("read page table", &e))?;
        let mut cur = Cursor::new(&table, "page table");
        let mut pages = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            let offset = cur.u64()?;
            let len = cur.u32()?;
            pages.push((offset, len));
        }

        Ok(Segment {
            id: NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed),
            file: Mutex::new(file),
            schema,
            domains,
            pages,
            tuple_count,
            page_size,
        })
    }

    /// The process-unique segment id (the buffer pool's cache key
    /// namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of data pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of stored tuples.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Target page size the segment was written with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// On-disk byte length of page `page`.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] for out-of-range page numbers.
    pub fn page_len(&self, page: u64) -> Result<usize, StoreError> {
        self.pages
            .get(page as usize)
            .map(|(_, len)| *len as usize)
            .ok_or_else(|| StoreError::corrupt(format!("page {page} out of range")))
    }

    /// Read raw page bytes from disk — the buffer pool's fill path.
    /// Prefer [`crate::pool::BufferPool::get`], which caches.
    ///
    /// # Errors
    /// [`StoreError::Io`] / [`StoreError::Corrupt`].
    pub fn read_page(&self, page: u64) -> Result<Vec<u8>, StoreError> {
        let (offset, len) = *self
            .pages
            .get(page as usize)
            .ok_or_else(|| StoreError::corrupt(format!("page {page} out of range")))?;
        let mut buf = vec![0u8; len as usize];
        let mut file = self.file.lock().expect("segment file lock");
        file.seek(SeekFrom::Start(offset))
            .and_then(|_| file.read_exact(&mut buf))
            .map_err(|e| StoreError::io(format!("read page {page}"), &e))?;
        Ok(buf)
    }

    /// Decode every record of a page (bytes from [`Segment::read_page`]
    /// or the buffer pool) into tuples, in slot order.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on malformed pages; validation errors
    /// from tuple reconstruction.
    pub fn decode_page(&self, bytes: &[u8]) -> Result<Vec<Tuple>, StoreError> {
        let mut cur = Cursor::new(bytes, "page");
        let count = cur.u32()? as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let len = cur.u32()? as usize;
            let record = cur.bytes(len)?;
            let mut rcur = Cursor::new(record, "record");
            out.push(codec::decode_record(
                &mut rcur,
                &self.schema,
                &self.domains,
            )?);
        }
        Ok(out)
    }

    /// Decode only record `slot` of a page — the point-lookup path
    /// spilled merge probes use. Skips preceding records by their
    /// length prefixes without decoding them.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] for out-of-range slots or malformed
    /// pages.
    pub fn decode_record(&self, bytes: &[u8], slot: u32) -> Result<Tuple, StoreError> {
        let mut cur = Cursor::new(bytes, "page");
        let count = cur.u32()?;
        if slot >= count {
            return Err(StoreError::corrupt(format!(
                "slot {slot} out of range (page has {count} records)"
            )));
        }
        for _ in 0..slot {
            let len = cur.u32()? as usize;
            cur.bytes(len)?;
        }
        let len = cur.u32()? as usize;
        let record = cur.bytes(len)?;
        let mut rcur = Cursor::new(record, "record");
        codec::decode_record(&mut rcur, &self.schema, &self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{RelationBuilder, Value};

    fn sample(n: usize) -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("spec", ["si", "hu", "ca"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg", evirel_relation::ValueKind::Int)
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..n {
            b = b
                .tuple(|t| {
                    t.set_str("rname", format!("r-{i}"))
                        .set_int("bldg", i as i64)
                        .set_evidence_with_omega(
                            "spec",
                            [(&["si"][..], 1.0 / 3.0), (&["hu", "ca"][..], 1.0 / 3.0)],
                            1.0 / 3.0,
                        )
                        .membership_pair(0.5 + (i as f64) / (2.0 * n as f64), 1.0)
                })
                .unwrap();
        }
        b.build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evirel-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_roundtrip_exact() {
        let rel = sample(100);
        let path = tmp("roundtrip.evb");
        write_segment(&rel, &path, 512).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.tuple_count(), 100);
        assert!(seg.page_count() > 1, "512-byte pages must paginate");
        rel.schema().check_union_compatible(seg.schema()).unwrap();
        let mut decoded = Vec::new();
        for p in 0..seg.page_count() {
            let bytes = seg.read_page(p).unwrap();
            decoded.extend(seg.decode_page(&bytes).unwrap());
        }
        assert_eq!(decoded.len(), rel.len());
        for (orig, back) in rel.iter().zip(decoded.iter()) {
            // EXACT equality — raw f64 bits round-trip.
            assert_eq!(orig.values(), back.values());
            assert_eq!(orig.membership().sn(), back.membership().sn());
            assert_eq!(orig.membership().sp(), back.membership().sp());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_ids_and_point_lookup() {
        let rel = sample(50);
        let path = tmp("points.evb");
        let mut writer = SegmentWriter::create(&path, rel.schema(), 256).unwrap();
        let ids: Vec<RecordId> = rel.iter().map(|t| writer.append(t).unwrap()).collect();
        writer.finish().unwrap();
        let seg = Segment::open(&path).unwrap();
        for (tuple, id) in rel.iter().zip(&ids) {
            let bytes = seg.read_page(id.page).unwrap();
            let back = seg.decode_record(&bytes, id.slot).unwrap();
            assert_eq!(back.values(), tuple.values());
        }
        // Out-of-range slot is an error, not UB.
        let bytes = seg.read_page(0).unwrap();
        assert!(seg.decode_record(&bytes, 10_000).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jumbo_records_get_oversized_pages() {
        let d = Arc::new(AttrDomain::categorical("spec", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("J")
                .key_str("k")
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let big_key = "k".repeat(5000);
        let rel = RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", big_key.clone())
                    .set_evidence("spec", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "small")
                    .set_evidence("spec", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .build();
        let path = tmp("jumbo.evb");
        write_segment(&rel, &path, 64).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.tuple_count(), 2);
        assert!(seg.page_len(0).unwrap() > 5000, "jumbo page is oversized");
        let first = &seg.decode_page(&seg.read_page(0).unwrap()).unwrap()[0];
        assert_eq!(
            first.value(0).as_definite().unwrap(),
            &Value::str(big_key.clone())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_with_live_schema_shares_domain_arcs() {
        let rel = sample(5);
        let path = tmp("live.evb");
        write_segment(&rel, &path, 512).unwrap();
        let seg = Segment::open_with_schema(&path, Arc::clone(rel.schema())).unwrap();
        assert!(Arc::ptr_eq(seg.schema(), rel.schema()));
        let decoded = seg.decode_page(&seg.read_page(0).unwrap()).unwrap();
        // Decoded frames are pointer-identical to the live schema's.
        let live = rel.schema().attr(2).ty().domain().unwrap();
        let m = decoded[0].value(2).as_evidential().unwrap();
        assert!(Arc::ptr_eq(m.frame(), live.frame()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let path = tmp("corrupt.evb");
        std::fs::write(&path, b"this is not a segment file at all!!!!!!!!").unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::write(&path, b"xx").unwrap();
        assert!(matches!(Segment::open(&path), Err(StoreError::Io { .. })));
        assert!(Segment::open("/nonexistent/nope.evb").is_err());
        std::fs::remove_file(&path).ok();
    }
}
