//! On-disk segments: a header with the interned schema block, then
//! fixed-target-size data pages of length-prefixed tuple records.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ preamble (52 B): magic ∣ version ∣ flags ∣ page_size ∣       │
//! │                  schema_len ∣ table_offset ∣ page_count ∣    │
//! │                  tuple_count ∣ schema_crc ∣ table_crc ∣      │
//! │                  preamble_crc                                │
//! ├──────────────────────────────────────────────────────────────┤
//! │ schema block (codec::encode_schema — interned frame dicts)   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ page 0: [u32 record_count] [u32 len ∣ record]*               │
//! │ page 1: …                                                    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ page table: page_count × (u64 offset ∣ u32 len ∣ u32 crc)    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ stats section (flag 0x0001): u32 len ∣ RelStats ∣ u32 crc    │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Pages *target* `page_size` bytes but are located through the
//! explicit page table, so a single record larger than the target
//! simply gets its own oversized page — no record ever spans pages,
//! and no tuple is ever too large to store. Records are appended in
//! insertion order; a full-segment scan therefore reproduces the
//! source relation's iteration order exactly.
//!
//! **Durability.** Since format v3 a segment is written to a sibling
//! temporary file and only *renamed* into place after its final bytes
//! (page table + backpatched preamble) are written and fsync'd — an
//! interrupted write leaves at worst an orphaned `*.tmp-*` file,
//! never a torn `.evb`. The checksums chain: `preamble_crc` covers
//! the preamble (which records `schema_crc` and `table_crc`), the
//! table covers per-page CRCs, and each page CRC covers its bytes —
//! so the single `preamble_crc` (the segment's *content checksum*,
//! recorded in the catalog manifest) commits to the entire file.
//! Readers verify page checksums on every disk read and surface any
//! mismatch as a typed [`StoreError::Corrupt`]. The previous v2
//! format (no checksums) still loads via [`crate::compat`].
//!
//! **Statistics.** The writer folds every appended tuple into a
//! [`crate::stats::StatsBuilder`] and, when the preamble's
//! [`compat::FLAG_STATS`] bit is set, persists the finished
//! [`RelStats`] block in a self-checksummed section after the page
//! table. The flag lives inside the CRC-covered preamble prefix;
//! the section carries its own CRC (verified at open — a corrupt
//! stats block is a loud [`StoreError::Corrupt`], never a silently
//! wrong estimate). Files without the flag — v2 segments and
//! pre-stats v3 segments — read as "no stats": the plan layer then
//! falls back to its size heuristics. Stats never affect query
//! results, only cost estimates.

use crate::codec::{self, Cursor};
use crate::compat::{self, PageEntry, MAGIC, PREAMBLE_V3, VERSION_V3};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::failpoint::{fp_create, fp_rename, fp_sync, fp_sync_parent_dir, fp_write_all};
use crate::stats::{RelStats, StatsBuilder};
use evirel_relation::{AttrDomain, ExtendedRelation, Schema, Tuple};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bytes of page header: the record count.
const PAGE_HEADER: usize = 4;

/// Default target page size (bytes).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// The location of one record inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordId {
    /// Page number.
    pub page: u64,
    /// Record slot within the page.
    pub slot: u32,
}

/// Process-unique segment ids — the buffer pool's cache key namespace.
static NEXT_SEGMENT_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique suffix counter for sibling temp files.
static NEXT_TMP_ID: AtomicU64 = AtomicU64::new(1);

fn temp_sibling(path: &Path) -> PathBuf {
    let n = NEXT_TMP_ID.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_else(|| "segment".into());
    name.push(format!(".tmp-{}-{n}", std::process::id()));
    path.with_file_name(name)
}

// ------------------------------------------------------------- writer

/// What [`SegmentWriter::finish_meta`] reports about a completed
/// segment — everything the catalog manifest records per binding.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Final path the segment was renamed to.
    pub path: PathBuf,
    /// The segment's content checksum (the v3 `preamble_crc`, which
    /// transitively covers every byte of the file).
    pub checksum: u32,
    /// Number of stored tuples.
    pub tuple_count: u64,
}

/// Streams tuples into a new segment file. Records accumulate in one
/// in-memory page buffer; full pages flush to disk, so peak writer
/// memory is a single page regardless of relation size.
///
/// The writer targets a sibling `*.tmp-*` file and atomically renames
/// it to the requested path in [`SegmentWriter::finish`] (after an
/// fsync), so the destination either keeps its old contents or gains
/// a complete, checksummed segment — never a torn intermediate. An
/// unfinished writer removes its temp file on drop.
pub struct SegmentWriter {
    file: File,
    /// The requested destination.
    path: PathBuf,
    /// The sibling temp file actually being written.
    tmp_path: PathBuf,
    finished: bool,
    page_size: usize,
    schema_len: usize,
    schema_crc: u32,
    /// Current page payload (after the record-count header).
    page_buf: Vec<u8>,
    /// Reused full-page assembly buffer (header + payload).
    page_out: Vec<u8>,
    page_records: u32,
    pages: Vec<PageEntry>,
    next_offset: u64,
    tuple_count: u64,
    scratch: Vec<u8>,
    /// Running statistics over every appended tuple — persisted as
    /// the stats section by [`SegmentWriter::finish_meta`].
    stats: StatsBuilder,
}

impl SegmentWriter {
    /// Create a segment that will land at `path` once finished, for
    /// relations over `schema`, with the given target page size
    /// (≥ 64 bytes enforced).
    ///
    /// # Errors
    /// [`StoreError::Io`] on file-creation failures.
    pub fn create(
        path: impl AsRef<Path>,
        schema: &Schema,
        page_size: usize,
    ) -> Result<SegmentWriter, StoreError> {
        let path = path.as_ref().to_path_buf();
        let tmp_path = temp_sibling(&path);
        let mut file =
            fp_create(&tmp_path).map_err(|e| StoreError::io(format!("create {tmp_path:?}"), &e))?;
        let mut header = vec![0u8; PREAMBLE_V3];
        codec::encode_schema(schema, &mut header);
        let schema_len = header.len() - PREAMBLE_V3;
        let schema_crc = crc32(&header[PREAMBLE_V3..]);
        if let Err(e) = fp_write_all(&mut file, &header) {
            // No writer exists yet to clean up on drop.
            std::fs::remove_file(&tmp_path).ok();
            return Err(StoreError::io("write segment header", &e));
        }
        let page_size = page_size.max(64);
        Ok(SegmentWriter {
            file,
            path,
            tmp_path,
            finished: false,
            page_size,
            schema_len,
            schema_crc,
            page_buf: Vec::with_capacity(page_size),
            page_out: Vec::with_capacity(page_size + PAGE_HEADER),
            page_records: 0,
            pages: Vec::new(),
            next_offset: (PREAMBLE_V3 + schema_len) as u64,
            tuple_count: 0,
            scratch: Vec::new(),
            stats: StatsBuilder::new(schema),
        })
    }

    /// Append one tuple, returning where it landed. Tuples must be
    /// valid for the schema the writer was created with (the reader
    /// revalidates on decode).
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn append(&mut self, tuple: &Tuple) -> Result<RecordId, StoreError> {
        self.stats.observe(tuple);
        self.scratch.clear();
        codec::encode_record(tuple, &mut self.scratch);
        let framed = 4 + self.scratch.len();
        // Flush the current page when this record would overflow the
        // target — unless the page is empty (a jumbo record gets its
        // own oversized page).
        if !self.page_buf.is_empty() && PAGE_HEADER + self.page_buf.len() + framed > self.page_size
        {
            self.flush_page()?;
        }
        let id = RecordId {
            page: self.pages.len() as u64,
            slot: self.page_records,
        };
        codec::put_u32(&mut self.page_buf, self.scratch.len() as u32);
        self.page_buf.extend_from_slice(&self.scratch);
        self.page_records += 1;
        self.tuple_count += 1;
        Ok(id)
    }

    fn flush_page(&mut self) -> Result<(), StoreError> {
        if self.page_buf.is_empty() {
            return Ok(());
        }
        self.page_out.clear();
        self.page_out
            .extend_from_slice(&self.page_records.to_le_bytes());
        self.page_out.extend_from_slice(&self.page_buf);
        let len = self.page_out.len() as u32;
        let crc = crc32(&self.page_out);
        fp_write_all(&mut self.file, &self.page_out)
            .map_err(|e| StoreError::io("write page", &e))?;
        self.pages.push(PageEntry {
            offset: self.next_offset,
            len,
            crc: Some(crc),
        });
        self.next_offset += u64::from(len);
        self.page_buf.clear();
        self.page_records = 0;
        Ok(())
    }

    /// Flush the final page, write the checksummed page table, patch
    /// the preamble, fsync, and atomically rename the temp file to
    /// the destination path (returned).
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn finish(self) -> Result<PathBuf, StoreError> {
        Ok(self.finish_meta()?.path)
    }

    /// As [`SegmentWriter::finish`], additionally reporting the
    /// content checksum and tuple count the catalog manifest records.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write failures.
    pub fn finish_meta(mut self) -> Result<SegmentMeta, StoreError> {
        self.flush_page()?;
        let table_offset = self.next_offset;
        let mut table = Vec::with_capacity(self.pages.len() * compat::TABLE_ENTRY_V3);
        for entry in &self.pages {
            codec::put_u64(&mut table, entry.offset);
            codec::put_u32(&mut table, entry.len);
            codec::put_u32(&mut table, entry.crc.unwrap_or(0));
        }
        let table_crc = crc32(&table);
        fp_write_all(&mut self.file, &table).map_err(|e| StoreError::io("write page table", &e))?;
        // Stats section: [u32 len | RelStats payload | u32 crc],
        // after the page table (readers locate it from table_end).
        let rel_stats = self.stats.clone().finish();
        self.scratch.clear();
        rel_stats.encode(&mut self.scratch);
        let mut section = Vec::with_capacity(self.scratch.len() + 8);
        codec::put_u32(&mut section, self.scratch.len() as u32);
        section.extend_from_slice(&self.scratch);
        codec::put_u32(&mut section, crc32(&self.scratch));
        fp_write_all(&mut self.file, &section)
            .map_err(|e| StoreError::io("write stats section", &e))?;
        let mut preamble = Vec::with_capacity(PREAMBLE_V3);
        codec::put_u32(&mut preamble, MAGIC);
        codec::put_u16(&mut preamble, VERSION_V3);
        codec::put_u16(&mut preamble, compat::FLAG_STATS);
        codec::put_u32(&mut preamble, self.page_size as u32);
        codec::put_u32(&mut preamble, self.schema_len as u32);
        codec::put_u64(&mut preamble, table_offset);
        codec::put_u64(&mut preamble, self.pages.len() as u64);
        codec::put_u64(&mut preamble, self.tuple_count);
        codec::put_u32(&mut preamble, self.schema_crc);
        codec::put_u32(&mut preamble, table_crc);
        let preamble_crc = crc32(&preamble);
        codec::put_u32(&mut preamble, preamble_crc);
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io("seek preamble", &e))?;
        fp_write_all(&mut self.file, &preamble)
            .map_err(|e| StoreError::io("patch preamble", &e))?;
        fp_sync(&self.file).map_err(|e| StoreError::io("fsync segment", &e))?;
        fp_rename(&self.tmp_path, &self.path)
            .map_err(|e| StoreError::io(format!("rename into {:?}", self.path), &e))?;
        self.finished = true;
        fp_sync_parent_dir(&self.path)
            .map_err(|e| StoreError::io("fsync segment directory", &e))?;
        Ok(SegmentMeta {
            path: self.path.clone(),
            checksum: preamble_crc,
            tuple_count: self.tuple_count,
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Abandoned mid-write (error or crash-injection): the
            // destination was never touched, only the temp file.
            std::fs::remove_file(&self.tmp_path).ok();
        }
    }
}

/// Write a whole relation to a segment at `path` (insertion order).
///
/// # Errors
/// As [`SegmentWriter`].
pub fn write_segment(
    rel: &ExtendedRelation,
    path: impl AsRef<Path>,
    page_size: usize,
) -> Result<(), StoreError> {
    write_segment_meta(rel, path, page_size).map(|_| ())
}

/// As [`write_segment`], reporting the finished segment's manifest
/// metadata (content checksum, tuple count).
///
/// # Errors
/// As [`SegmentWriter`].
pub fn write_segment_meta(
    rel: &ExtendedRelation,
    path: impl AsRef<Path>,
    page_size: usize,
) -> Result<SegmentMeta, StoreError> {
    let mut writer = SegmentWriter::create(path, rel.schema(), page_size)?;
    for tuple in rel.iter() {
        writer.append(tuple)?;
    }
    writer.finish_meta()
}

/// Read and verify the stats section at `offset`: `[u32 len |
/// payload | u32 crc]`. The flag promised a section, so truncation
/// or a checksum mismatch here is corruption, not absence.
fn read_stats_section(file: &mut File, offset: u64, file_len: u64) -> Result<RelStats, StoreError> {
    let mut len_buf = [0u8; 4];
    let min_end = offset
        .checked_add(8)
        .ok_or_else(|| StoreError::corrupt("stats section offset overflows"))?;
    if min_end > file_len {
        return Err(StoreError::corrupt(
            "stats section promised by preamble flag but file ends before it",
        ));
    }
    file.seek(SeekFrom::Start(offset))
        .and_then(|_| file.read_exact(&mut len_buf))
        .map_err(|e| StoreError::io("read stats length", &e))?;
    let len = u64::from(u32::from_le_bytes(len_buf));
    if min_end + len > file_len {
        return Err(StoreError::corrupt(format!(
            "stats section ({len} bytes) extends past end of file"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let mut crc_buf = [0u8; 4];
    file.read_exact(&mut payload)
        .and_then(|_| file.read_exact(&mut crc_buf))
        .map_err(|e| StoreError::io("read stats section", &e))?;
    let expected = u32::from_le_bytes(crc_buf);
    let actual = crc32(&payload);
    if actual != expected {
        return Err(StoreError::corrupt(format!(
            "stats section checksum mismatch (stored {expected:#010x}, \
             computed {actual:#010x})"
        )));
    }
    RelStats::decode(&payload)
}

// ------------------------------------------------------------- reader

/// An open segment: the parsed header (schema + domains + page table)
/// plus the file handle pages are read through. Cheap to share behind
/// an [`Arc`]; all reads are interior-mutex, so exchange workers can
/// page through one segment concurrently.
#[derive(Debug)]
pub struct Segment {
    id: u64,
    file: Mutex<File>,
    schema: Arc<Schema>,
    domains: Vec<Option<Arc<AttrDomain>>>,
    pages: Vec<PageEntry>,
    tuple_count: u64,
    page_size: usize,
    version: u16,
    content_checksum: Option<u32>,
    /// Persisted relation statistics, when the segment carries the
    /// stats flag. `None` for v2 and pre-stats v3 files.
    stats: Option<Arc<RelStats>>,
}

impl Segment {
    /// Open a segment, rebuilding its schema (and interned domain
    /// dictionary) from the header.
    ///
    /// # Errors
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] on unreadable or
    /// malformed files.
    pub fn open(path: impl AsRef<Path>) -> Result<Segment, StoreError> {
        Segment::open_impl(path.as_ref(), None)
    }

    /// Open a segment using a caller-supplied schema instead of
    /// rebuilding one from the header — the spill path uses this so
    /// decoded tuples share the executor's own domain `Arc`s (frames
    /// stay pointer-identical; no structural re-interning). The
    /// stored header is still parsed for the page table.
    ///
    /// # Errors
    /// As [`Segment::open`].
    pub fn open_with_schema(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
    ) -> Result<Segment, StoreError> {
        Segment::open_impl(path.as_ref(), Some(schema))
    }

    fn open_impl(path: &Path, schema: Option<Arc<Schema>>) -> Result<Segment, StoreError> {
        let mut file =
            File::open(path).map_err(|e| StoreError::io(format!("open {path:?}"), &e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StoreError::io(format!("stat {path:?}"), &e))?
            .len();
        let header = compat::read_header(&mut file, file_len)?;

        let mut schema_bytes = vec![0u8; header.schema_len];
        file.seek(SeekFrom::Start(header.preamble_len() as u64))
            .and_then(|_| file.read_exact(&mut schema_bytes))
            .map_err(|e| StoreError::io("read schema block", &e))?;
        if let Some(expected) = header.schema_crc {
            let actual = crc32(&schema_bytes);
            if actual != expected {
                return Err(StoreError::corrupt(format!(
                    "schema block checksum mismatch (stored {expected:#010x}, \
                     computed {actual:#010x})"
                )));
            }
        }
        let (schema, domains) = match schema {
            Some(live) => {
                let domains = codec::domains_of(&live);
                (live, domains)
            }
            None => {
                let mut cur = Cursor::new(&schema_bytes, "schema block");
                codec::decode_schema(&mut cur)?
            }
        };

        let pages = compat::read_page_table(&mut file, &header)?;

        let stats = if header.flags & compat::FLAG_STATS != 0 {
            let table_len = (header.page_count * compat::TABLE_ENTRY_V3) as u64;
            let stats_offset = header.table_offset + table_len;
            Some(Arc::new(read_stats_section(
                &mut file,
                stats_offset,
                file_len,
            )?))
        } else {
            None
        };

        Ok(Segment {
            id: NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed),
            file: Mutex::new(file),
            schema,
            domains,
            pages,
            tuple_count: header.tuple_count,
            page_size: header.page_size,
            version: header.version,
            content_checksum: header.content_checksum,
            stats,
        })
    }

    /// The process-unique segment id (the buffer pool's cache key
    /// namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of data pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of stored tuples.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Target page size the segment was written with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// On-disk format version this segment was read as.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The segment's content checksum (v3 `preamble_crc`, which
    /// transitively covers the whole file); `None` for v2 segments.
    pub fn content_checksum(&self) -> Option<u32> {
        self.content_checksum
    }

    /// The persisted relation statistics, when this segment was
    /// written with a stats section ([`compat::FLAG_STATS`]); `None`
    /// for v2 and pre-stats v3 files — never an error.
    pub fn stats(&self) -> Option<&Arc<RelStats>> {
        self.stats.as_ref()
    }

    /// On-disk byte length of page `page`.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] for out-of-range page numbers.
    pub fn page_len(&self, page: u64) -> Result<usize, StoreError> {
        self.pages
            .get(page as usize)
            .map(|entry| entry.len as usize)
            .ok_or_else(|| StoreError::corrupt(format!("page {page} out of range")))
    }

    /// Verify `bytes` against page `page`'s recorded length and (for
    /// v3 segments) checksum. The read path calls this on every disk
    /// read; the buffer pool re-calls it on cache hits when
    /// `EVIREL_PARANOID_CHECKSUMS` is set.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on any mismatch.
    pub fn verify_page(&self, page: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let entry = self
            .pages
            .get(page as usize)
            .ok_or_else(|| StoreError::corrupt(format!("page {page} out of range")))?;
        if bytes.len() != entry.len as usize {
            return Err(StoreError::corrupt(format!(
                "page {page} length mismatch ({} bytes, expected {})",
                bytes.len(),
                entry.len
            )));
        }
        if let Some(expected) = entry.crc {
            let actual = crc32(bytes);
            if actual != expected {
                return Err(StoreError::corrupt(format!(
                    "page {page} checksum mismatch (stored {expected:#010x}, \
                     computed {actual:#010x})"
                )));
            }
        }
        Ok(())
    }

    /// Read raw page bytes from disk, verifying the page checksum —
    /// the buffer pool's fill path. Prefer
    /// [`crate::pool::BufferPool::get`], which caches.
    ///
    /// # Errors
    /// [`StoreError::Io`] / [`StoreError::Corrupt`].
    pub fn read_page(&self, page: u64) -> Result<Vec<u8>, StoreError> {
        let entry = *self
            .pages
            .get(page as usize)
            .ok_or_else(|| StoreError::corrupt(format!("page {page} out of range")))?;
        let mut buf = vec![0u8; entry.len as usize];
        {
            let mut file = self.file.lock().expect("segment file lock");
            file.seek(SeekFrom::Start(entry.offset))
                .and_then(|_| file.read_exact(&mut buf))
                .map_err(|e| StoreError::io(format!("read page {page}"), &e))?;
        }
        self.verify_page(page, &buf)?;
        Ok(buf)
    }

    /// Decode every record of a page (bytes from [`Segment::read_page`]
    /// or the buffer pool) into tuples, in slot order.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on malformed pages; validation errors
    /// from tuple reconstruction.
    pub fn decode_page(&self, bytes: &[u8]) -> Result<Vec<Tuple>, StoreError> {
        let mut cur = Cursor::new(bytes, "page");
        let count = cur.u32()? as usize;
        // A record costs at least its 4-byte length prefix — cap the
        // pre-allocation so a corrupted count can't request gigabytes.
        let mut out = Vec::with_capacity(count.min(bytes.len() / 4));
        for _ in 0..count {
            let len = cur.u32()? as usize;
            let record = cur.bytes(len)?;
            let mut rcur = Cursor::new(record, "record");
            out.push(codec::decode_record(
                &mut rcur,
                &self.schema,
                &self.domains,
            )?);
        }
        Ok(out)
    }

    /// Decode only record `slot` of a page — the point-lookup path
    /// spilled merge probes use. Skips preceding records by their
    /// length prefixes without decoding them.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] for out-of-range slots or malformed
    /// pages.
    pub fn decode_record(&self, bytes: &[u8], slot: u32) -> Result<Tuple, StoreError> {
        let mut cur = Cursor::new(bytes, "page");
        let count = cur.u32()?;
        if slot >= count {
            return Err(StoreError::corrupt(format!(
                "slot {slot} out of range (page has {count} records)"
            )));
        }
        for _ in 0..slot {
            let len = cur.u32()? as usize;
            cur.bytes(len)?;
        }
        let len = cur.u32()? as usize;
        let record = cur.bytes(len)?;
        let mut rcur = Cursor::new(record, "record");
        codec::decode_record(&mut rcur, &self.schema, &self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointFs;
    use evirel_relation::{RelationBuilder, Value};

    fn sample(n: usize) -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("spec", ["si", "hu", "ca"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg", evirel_relation::ValueKind::Int)
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..n {
            b = b
                .tuple(|t| {
                    t.set_str("rname", format!("r-{i}"))
                        .set_int("bldg", i as i64)
                        .set_evidence_with_omega(
                            "spec",
                            [(&["si"][..], 1.0 / 3.0), (&["hu", "ca"][..], 1.0 / 3.0)],
                            1.0 / 3.0,
                        )
                        .membership_pair(0.5 + (i as f64) / (2.0 * n as f64), 1.0)
                })
                .unwrap();
        }
        b.build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evirel-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_roundtrip_exact() {
        let rel = sample(100);
        let path = tmp("roundtrip.evb");
        write_segment(&rel, &path, 512).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.tuple_count(), 100);
        assert_eq!(seg.version(), VERSION_V3);
        assert!(seg.content_checksum().is_some());
        assert!(seg.page_count() > 1, "512-byte pages must paginate");
        rel.schema().check_union_compatible(seg.schema()).unwrap();
        let mut decoded = Vec::new();
        for p in 0..seg.page_count() {
            let bytes = seg.read_page(p).unwrap();
            decoded.extend(seg.decode_page(&bytes).unwrap());
        }
        assert_eq!(decoded.len(), rel.len());
        for (orig, back) in rel.iter().zip(decoded.iter()) {
            // EXACT equality — raw f64 bits round-trip.
            assert_eq!(orig.values(), back.values());
            assert_eq!(orig.membership().sn(), back.membership().sn());
            assert_eq!(orig.membership().sp(), back.membership().sp());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_ids_and_point_lookup() {
        let rel = sample(50);
        let path = tmp("points.evb");
        let mut writer = SegmentWriter::create(&path, rel.schema(), 256).unwrap();
        let ids: Vec<RecordId> = rel.iter().map(|t| writer.append(t).unwrap()).collect();
        writer.finish().unwrap();
        let seg = Segment::open(&path).unwrap();
        for (tuple, id) in rel.iter().zip(&ids) {
            let bytes = seg.read_page(id.page).unwrap();
            let back = seg.decode_record(&bytes, id.slot).unwrap();
            assert_eq!(back.values(), tuple.values());
        }
        // Out-of-range slot is an error, not UB.
        let bytes = seg.read_page(0).unwrap();
        assert!(seg.decode_record(&bytes, 10_000).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jumbo_records_get_oversized_pages() {
        let d = Arc::new(AttrDomain::categorical("spec", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("J")
                .key_str("k")
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let big_key = "k".repeat(5000);
        let rel = RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", big_key.clone())
                    .set_evidence("spec", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "small")
                    .set_evidence("spec", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .build();
        let path = tmp("jumbo.evb");
        write_segment(&rel, &path, 64).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.tuple_count(), 2);
        assert!(seg.page_len(0).unwrap() > 5000, "jumbo page is oversized");
        let first = &seg.decode_page(&seg.read_page(0).unwrap()).unwrap()[0];
        assert_eq!(
            first.value(0).as_definite().unwrap(),
            &Value::str(big_key.clone())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_with_live_schema_shares_domain_arcs() {
        let rel = sample(5);
        let path = tmp("live.evb");
        write_segment(&rel, &path, 512).unwrap();
        let seg = Segment::open_with_schema(&path, Arc::clone(rel.schema())).unwrap();
        assert!(Arc::ptr_eq(seg.schema(), rel.schema()));
        let decoded = seg.decode_page(&seg.read_page(0).unwrap()).unwrap();
        // Decoded frames are pointer-identical to the live schema's.
        let live = rel.schema().attr(2).ty().domain().unwrap();
        let m = decoded[0].value(2).as_evidential().unwrap();
        assert!(Arc::ptr_eq(m.frame(), live.frame()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let path = tmp("corrupt.evb");
        std::fs::write(&path, b"this is not a segment file at all!!!!!!!!").unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // A file shorter than any preamble is corrupt, not an I/O
        // error — the length check runs before any read.
        std::fs::write(&path, b"xx").unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(Segment::open("/nonexistent/nope.evb").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_checksum_catches_bit_rot() {
        let rel = sample(30);
        let path = tmp("bitrot.evb");
        write_segment(&rel, &path, 512).unwrap();
        // Flip one bit in the middle of page 0's data region.
        let mut bytes = std::fs::read(&path).unwrap();
        let seg = Segment::open(&path).unwrap();
        drop(seg);
        let target = PREAMBLE_V3 + 200; // somewhere in page data
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path);
        // Either the schema block was hit (open fails) or a page was
        // hit (read_page fails) — never a silent wrong answer.
        if let Ok(seg) = seg {
            let mut saw_corrupt = false;
            for p in 0..seg.page_count() {
                match seg.read_page(p) {
                    Ok(_) => {}
                    Err(StoreError::Corrupt { .. }) => saw_corrupt = true,
                    Err(e) => panic!("unexpected error kind: {e}"),
                }
            }
            assert!(saw_corrupt, "bit flip must surface as Corrupt");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_write_leaves_existing_segment_readable() {
        let rel = sample(20);
        let path = tmp("atomic.evb");
        write_segment(&rel, &path, 512).unwrap();
        let original = std::fs::read(&path).unwrap();

        // Sweep every kill point of a rewrite over the same path:
        // the destination must stay byte-identical until the rename.
        let bigger = sample(40);
        let total = {
            let fp = FailpointFs::observe();
            write_segment(&bigger, &path, 512).unwrap();
            let t = fp.units();
            drop(fp);
            // Restore the original for the sweep.
            write_segment(&rel, &path, 512).unwrap();
            t
        };
        let mut failures = 0;
        for kill_at in (0..total).step_by(97) {
            let fp = FailpointFs::kill_after(kill_at);
            let result = write_segment(&bigger, &path, 512);
            drop(fp);
            if result.is_err() {
                failures += 1;
                // Original still fully readable, bit for bit.
                assert_eq!(std::fs::read(&path).unwrap(), original);
                let seg = Segment::open(&path).unwrap();
                assert_eq!(seg.tuple_count(), 20);
            }
        }
        assert!(failures > 0, "sweep must hit mid-write kill points");
        // No leaked temp files.
        let dir = path.parent().unwrap();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(
                !name.starts_with("atomic.evb.tmp-"),
                "leaked temp file {name}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
