//! Crash injection for the durability layer: [`FailpointFs`], a
//! test-support write layer that simulates the process dying partway
//! through a durable write sequence.
//!
//! Every write the durability subsystem performs — segment pages,
//! journal records, manifest swaps, fsyncs, renames — routes through
//! the `fp_*` helpers in this module. When no failpoint is armed they
//! are plain `std::fs` calls (one thread-local read of overhead).
//! When a test arms one, the helpers charge each operation against a
//! **cost budget** (writes cost their byte length; fsync, rename,
//! create, and truncate cost one unit each) and, once the budget is
//! exhausted, the in-flight write lands only its affordable *prefix*
//! (a genuinely torn write on disk) and every subsequent operation
//! fails — exactly what a `kill -9` mid-sequence leaves behind.
//! Sweeping the budget over `0..=total` therefore visits every
//! interleaving: before, inside, and after each write, fsync, and
//! rename of the sequence.
//!
//! State is **thread-local**: the arming test kills only its own
//! writes, so unrelated tests (and their spill segments) in the same
//! process are untouched, and no cross-test locking is needed.
//!
//! ```
//! use evirel_store::failpoint::FailpointFs;
//!
//! // Pass 1: count the cost of the sequence under test.
//! let observe = FailpointFs::observe();
//! // ... run the durable write sequence ...
//! let total = observe.units();
//! drop(observe);
//! // Pass 2: kill at every point.
//! for kill_at in 0..=total {
//!     let _fp = FailpointFs::kill_after(kill_at);
//!     // ... rerun; expect an error partway; recovery must succeed ...
//! }
//! ```

use std::cell::RefCell;
use std::fs::File;
use std::io;
use std::path::Path;

#[derive(Debug, Clone, Copy)]
enum Plan {
    /// Count costs without ever failing.
    Observe,
    /// Fail once cumulative cost exceeds the budget (torn prefix
    /// written for the unaffordable write).
    KillAfter(u64),
    /// Fail the k-th fsync call (1-based) and everything after it.
    KillAtFsync(u64),
}

#[derive(Debug)]
struct State {
    plan: Plan,
    units: u64,
    fsyncs: u64,
    dead: bool,
}

thread_local! {
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// The simulated-crash error every failed operation surfaces.
fn killed() -> io::Error {
    io::Error::other("failpoint: simulated crash (process killed mid-write)")
}

/// Handle to the thread-local failpoint; see the module docs. Not
/// meant for production code paths — tests arm it, durable writers
/// only ever *consult* it through the crate-internal helpers.
pub struct FailpointFs {
    _private: (),
}

impl FailpointFs {
    fn arm(plan: Plan) -> FailpointFs {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            assert!(s.is_none(), "a failpoint is already armed on this thread");
            *s = Some(State {
                plan,
                units: 0,
                fsyncs: 0,
                dead: false,
            });
        });
        FailpointFs { _private: () }
    }

    /// Arm in counting mode: nothing fails, but every durable
    /// operation's cost is tallied (read it with
    /// [`FailpointFs::units`] / [`FailpointFs::fsyncs`]).
    pub fn observe() -> FailpointFs {
        FailpointFs::arm(Plan::Observe)
    }

    /// Arm a kill after `budget` cost units: writes past the budget
    /// land only their affordable prefix, then every operation fails.
    pub fn kill_after(budget: u64) -> FailpointFs {
        FailpointFs::arm(Plan::KillAfter(budget))
    }

    /// Arm a kill at the `k`-th fsync call (1-based): that fsync and
    /// everything after it fail; the bytes written before it stay.
    pub fn kill_at_fsync(k: u64) -> FailpointFs {
        FailpointFs::arm(Plan::KillAtFsync(k.max(1)))
    }

    /// Cost units charged so far on this thread.
    pub fn units(&self) -> u64 {
        STATE.with(|s| s.borrow().as_ref().map_or(0, |s| s.units))
    }

    /// Fsync calls observed so far on this thread.
    pub fn fsyncs(&self) -> u64 {
        STATE.with(|s| s.borrow().as_ref().map_or(0, |s| s.fsyncs))
    }

    /// `true` once the armed kill has fired.
    pub fn fired(&self) -> bool {
        STATE.with(|s| s.borrow().as_ref().is_some_and(|s| s.dead))
    }
}

impl Drop for FailpointFs {
    fn drop(&mut self) {
        STATE.with(|s| s.borrow_mut().take());
    }
}

/// How many bytes of an `n`-byte write may proceed, charging the
/// cost. `None` = unlimited (disarmed). Flips the state to dead when
/// the write cannot complete.
fn charge_write(n: u64) -> Option<u64> {
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return None; // disarmed: unlimited
        };
        if state.dead {
            return Some(0);
        }
        match state.plan {
            Plan::Observe | Plan::KillAtFsync(_) => {
                state.units += n;
                None
            }
            Plan::KillAfter(budget) => {
                let allowed = budget.saturating_sub(state.units).min(n);
                state.units += n;
                if allowed < n {
                    state.dead = true;
                }
                if allowed == n {
                    None
                } else {
                    Some(allowed)
                }
            }
        }
    })
}

/// Charge a unit-cost operation (fsync/rename/create/truncate);
/// `Err` once dead or when this op exhausts the budget.
fn charge_unit(is_fsync: bool) -> io::Result<()> {
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return Ok(());
        };
        if state.dead {
            return Err(killed());
        }
        if is_fsync {
            state.fsyncs += 1;
        }
        match state.plan {
            Plan::Observe => {
                state.units += 1;
                Ok(())
            }
            Plan::KillAfter(budget) => {
                if state.units >= budget {
                    state.dead = true;
                    return Err(killed());
                }
                state.units += 1;
                Ok(())
            }
            Plan::KillAtFsync(k) => {
                if is_fsync && state.fsyncs >= k {
                    state.dead = true;
                    return Err(killed());
                }
                Ok(())
            }
        }
    })
}

/// Failpoint-aware `write_all`: on a budget kill, the affordable
/// prefix really lands in the file (a torn write) before the error.
pub(crate) fn fp_write_all(file: &mut File, buf: &[u8]) -> io::Result<()> {
    use std::io::Write;
    match charge_write(buf.len() as u64) {
        None => file.write_all(buf),
        Some(allowed) => {
            file.write_all(&buf[..allowed as usize])?;
            let _ = file.flush();
            Err(killed())
        }
    }
}

/// Failpoint-aware `sync_all`.
pub(crate) fn fp_sync(file: &File) -> io::Result<()> {
    charge_unit(true)?;
    file.sync_all()
}

/// Failpoint-aware `File::create`.
pub(crate) fn fp_create(path: &Path) -> io::Result<File> {
    charge_unit(false)?;
    File::create(path)
}

/// Failpoint-aware open-for-append (replication chunk staging).
pub(crate) fn fp_open_append(path: &Path) -> io::Result<File> {
    charge_unit(false)?;
    std::fs::OpenOptions::new().append(true).open(path)
}

/// Failpoint-aware `fs::rename`.
pub(crate) fn fp_rename(from: &Path, to: &Path) -> io::Result<()> {
    charge_unit(false)?;
    std::fs::rename(from, to)
}

/// Failpoint-aware `File::set_len` (journal truncation).
pub(crate) fn fp_set_len(file: &File, len: u64) -> io::Result<()> {
    charge_unit(false)?;
    file.set_len(len)
}

/// Fsync the directory containing `path`, so a just-renamed file's
/// directory entry is durable. Failpoint-aware; a filesystem that
/// cannot sync directories (the open itself failing) is tolerated —
/// the rename is already atomic, the dir sync only narrows the
/// post-crash window.
pub(crate) fn fp_sync_parent_dir(path: &Path) -> io::Result<()> {
    charge_unit(true)?;
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("evirel-fp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn disarmed_helpers_are_plain_io() {
        let path = tmp("plain.bin");
        let mut f = fp_create(&path).unwrap();
        fp_write_all(&mut f, b"hello").unwrap();
        fp_sync(&f).unwrap();
        let renamed = tmp("plain2.bin");
        fp_rename(&path, &renamed).unwrap();
        let mut back = String::new();
        File::open(&renamed)
            .unwrap()
            .read_to_string(&mut back)
            .unwrap();
        assert_eq!(back, "hello");
        std::fs::remove_file(&renamed).ok();
    }

    #[test]
    fn observe_counts_costs() {
        let path = tmp("count.bin");
        let fp = FailpointFs::observe();
        let mut f = fp_create(&path).unwrap();
        fp_write_all(&mut f, b"0123456789").unwrap();
        fp_sync(&f).unwrap();
        // create(1) + write(10) + fsync(1)
        assert_eq!(fp.units(), 12);
        assert_eq!(fp.fsyncs(), 1);
        assert!(!fp.fired());
        drop(fp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_kill_tears_the_write_and_stays_dead() {
        let path = tmp("torn.bin");
        {
            let fp = FailpointFs::kill_after(1 + 4); // create + 4 bytes
            let mut f = fp_create(&path).unwrap();
            let err = fp_write_all(&mut f, b"0123456789").unwrap_err();
            assert!(err.to_string().contains("failpoint"));
            assert!(fp.fired());
            // Everything after the kill fails too.
            assert!(fp_sync(&f).is_err());
            assert!(fp_write_all(&mut f, b"more").is_err());
            assert!(fp_rename(&path, &tmp("never.bin")).is_err());
        }
        // Exactly the affordable prefix landed — a torn write.
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_boundary_kill() {
        let path = tmp("fsync.bin");
        let fp = FailpointFs::kill_at_fsync(2);
        let mut f = fp_create(&path).unwrap();
        fp_write_all(&mut f, b"aa").unwrap();
        fp_sync(&f).unwrap(); // fsync #1 succeeds
        fp_write_all(&mut f, b"bb").unwrap();
        assert!(fp_sync(&f).is_err()); // fsync #2 is the kill
        assert!(fp_write_all(&mut f, b"cc").is_err());
        drop(fp);
        // Bytes written before the failing fsync are on disk (the OS
        // may or may not have persisted them across a real crash —
        // recovery must tolerate both, which the sweep tests assert).
        assert_eq!(std::fs::read(&path).unwrap(), b"aabb");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_budget_fails_everything_from_the_start() {
        let _fp = FailpointFs::kill_after(0);
        assert!(fp_create(&tmp("zero.bin")).is_err());
    }
}
