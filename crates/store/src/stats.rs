//! Per-relation statistics: the store-side half of cost-based
//! planning.
//!
//! A [`RelStats`] block summarizes one relation extension — tuple
//! count, total encoded bytes, a distinct-key estimate, and a
//! per-attribute profile (distinct-value sketch for definite
//! attributes; focal-set-cardinality histogram plus a plausibility
//! profile for evidential ones). [`StatsBuilder`] computes the block
//! incrementally, one [`observe`](StatsBuilder::observe) per tuple,
//! so [`crate::SegmentWriter`] collects it while the data is already
//! streaming through `append`; [`compute_stats`] runs the same
//! builder over an in-memory relation, so catalog binds get the same
//! block without a segment round trip.
//!
//! **Determinism contract.** A `RelStats` block is a *pure function
//! of the tuple sequence*: observing the same tuples in the same
//! order produces a bit-identical block (all floating-point
//! accumulation happens in observation order; the distinct sketches
//! hash the codec's canonical value encoding with a fixed FNV-1a —
//! never `DefaultHasher`, whose output may differ across Rust
//! releases). The stats written at segment-write time therefore
//! equal the stats recomputed from the decoded relation, bit for
//! bit — a property the store proptests pin.
//!
//! Stats never change query *results*, only the plan layer's cost
//! estimates, so a missing block (a v2 segment, a pre-stats v3
//! segment, or `EVIREL_NO_STATS=1`) simply falls back to the old
//! heuristics.

use crate::codec::{self, put_u32, put_u64};
use crate::error::StoreError;
use evirel_relation::{AttrType, ExtendedRelation, Schema, Tuple};

/// Version tag leading every encoded stats payload.
pub const STATS_VERSION: u32 = 1;

/// Bits in a [`DistinctSketch`] bitmap.
const SKETCH_BITS: usize = 2048;
/// 64-bit words backing the bitmap.
const SKETCH_WORDS: usize = SKETCH_BITS / 64;
/// Focal-cardinality histogram buckets: |focal| of 1, 2, 3–4, 5–8,
/// 9–16, and 17+.
pub const CARD_BUCKETS: usize = 6;
/// Frame values profiled per evidential attribute; wider frames
/// profile their first `PROFILE_CAP` values and estimate the rest
/// from the histogram.
pub const PROFILE_CAP: usize = 64;

/// FNV-1a over a byte slice — a fixed, portable 64-bit hash. The
/// sketches must hash identically across processes and Rust
/// versions (write-time stats are compared bit-for-bit against
/// recomputed stats), which rules out `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A linear-counting distinct estimator: a 2048-bit bitmap indexed
/// by a fixed hash of the canonical value encoding. Exact for small
/// cardinalities, within a few percent up to ~2k distinct values,
/// and saturates gracefully (the estimate is clamped by the caller's
/// tuple count).
#[derive(Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    words: [u64; SKETCH_WORDS],
}

impl std::fmt::Debug for DistinctSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DistinctSketch(≈{:.0})", self.estimate())
    }
}

impl Default for DistinctSketch {
    fn default() -> DistinctSketch {
        DistinctSketch {
            words: [0; SKETCH_WORDS],
        }
    }
}

impl DistinctSketch {
    /// Record a pre-hashed observation.
    pub fn insert_hash(&mut self, hash: u64) {
        let bit = (hash % SKETCH_BITS as u64) as usize;
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Record the canonical encoding of one value.
    pub fn insert_bytes(&mut self, bytes: &[u8]) {
        self.insert_hash(fnv1a(bytes));
    }

    /// Linear-counting estimate of the number of distinct
    /// observations: `-m · ln(z/m)` where `z` is the count of still
    /// empty bits out of `m`.
    pub fn estimate(&self) -> f64 {
        let m = SKETCH_BITS as f64;
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        let empty = (SKETCH_BITS as u32 - set).max(1) as f64;
        (m * (m / empty).ln()).max(f64::from(set))
    }

    /// Estimated distinct count of the *union* of two sketches —
    /// the basis for key-overlap estimates in ∪̃/∩̃/−̃ cardinality
    /// models.
    pub fn union_estimate(&self, other: &DistinctSketch) -> f64 {
        let mut set: u32 = 0;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            set += (a | b).count_ones();
        }
        let m = SKETCH_BITS as f64;
        let empty = (SKETCH_BITS as u32 - set).max(1) as f64;
        (m * (m / empty).ln()).max(f64::from(set))
    }

    fn encode(&self, out: &mut Vec<u8>) {
        for w in &self.words {
            put_u64(out, *w);
        }
    }

    fn decode(cur: &mut codec::Cursor<'_>) -> Result<DistinctSketch, StoreError> {
        let mut words = [0u64; SKETCH_WORDS];
        for w in &mut words {
            *w = cur.u64()?;
        }
        Ok(DistinctSketch { words })
    }
}

/// Per-attribute statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrStats {
    /// A definite attribute: a distinct-value sketch.
    Definite {
        /// Distinct-value estimator over the attribute's values.
        distinct: DistinctSketch,
    },
    /// An evidential attribute: shape statistics over its mass
    /// functions.
    Evidential {
        /// Frame cardinality (from the schema's attribute domain).
        frame_len: u32,
        /// Total focal-set entries observed across all tuples.
        focal_count: u64,
        /// Histogram over focal-set cardinality: |focal| of 1, 2,
        /// 3–4, 5–8, 9–16, 17+.
        card_hist: [u64; CARD_BUCKETS],
        /// Σ over tuples of the mass lent to each of the first
        /// [`PROFILE_CAP`] frame values (the plausibility of the
        /// singleton, summed) — the histogram selectivity source for
        /// `attr IS {…}` predicates.
        plaus_sum: Vec<f64>,
    },
}

impl AttrStats {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AttrStats::Definite { distinct } => {
                out.push(0);
                distinct.encode(out);
            }
            AttrStats::Evidential {
                frame_len,
                focal_count,
                card_hist,
                plaus_sum,
            } => {
                out.push(1);
                put_u32(out, *frame_len);
                put_u64(out, *focal_count);
                for b in card_hist {
                    put_u64(out, *b);
                }
                put_u32(out, plaus_sum.len() as u32);
                for p in plaus_sum {
                    put_u64(out, p.to_bits());
                }
            }
        }
    }

    fn decode(cur: &mut codec::Cursor<'_>) -> Result<AttrStats, StoreError> {
        match cur.u8()? {
            0 => Ok(AttrStats::Definite {
                distinct: DistinctSketch::decode(cur)?,
            }),
            1 => {
                let frame_len = cur.u32()?;
                let focal_count = cur.u64()?;
                let mut card_hist = [0u64; CARD_BUCKETS];
                for b in &mut card_hist {
                    *b = cur.u64()?;
                }
                let n = cur.u32()? as usize;
                if n > PROFILE_CAP {
                    return Err(StoreError::corrupt(format!(
                        "stats: plausibility profile of {n} exceeds cap {PROFILE_CAP}"
                    )));
                }
                let mut plaus_sum = Vec::with_capacity(n);
                for _ in 0..n {
                    plaus_sum.push(f64::from_bits(cur.u64()?));
                }
                Ok(AttrStats::Evidential {
                    frame_len,
                    focal_count,
                    card_hist,
                    plaus_sum,
                })
            }
            tag => Err(StoreError::corrupt(format!(
                "stats: unknown attribute-stats tag {tag}"
            ))),
        }
    }
}

/// Observed Dempster-conflict summary for a relation whose extension
/// was produced by an evidential merge (∪̃/∩̃). Segment writes never
/// produce one — the catalog stamps it when it publishes a merged
/// relation alongside its conflict report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KappaSummary {
    /// Merge observations summarized.
    pub observations: u64,
    /// Σ κ across observations (mean = sum / observations).
    pub sum: f64,
    /// Largest κ observed.
    pub max: f64,
}

/// Statistics for one relation extension. See the module docs for
/// the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RelStats {
    /// Tuples in the extension.
    pub tuples: u64,
    /// Total canonical-encoding bytes ([`codec::record_len`] summed).
    pub bytes: u64,
    /// Distinct-key estimator over canonical key encodings.
    pub key_sketch: DistinctSketch,
    /// Per-attribute statistics, in schema order.
    pub attrs: Vec<AttrStats>,
    /// Observed merge-conflict summary, when the extension came from
    /// an evidential merge. `None` for segment-written stats.
    pub kappa: Option<KappaSummary>,
}

impl RelStats {
    /// Distinct-key estimate, clamped by the tuple count.
    pub fn distinct_keys(&self) -> f64 {
        self.key_sketch.estimate().min(self.tuples as f64).max(0.0)
    }

    /// Distinct-value estimate for the definite attribute at `pos`,
    /// clamped by the tuple count. `None` for evidential attributes.
    pub fn distinct_at(&self, pos: usize) -> Option<f64> {
        match self.attrs.get(pos)? {
            AttrStats::Definite { distinct } => {
                Some(distinct.estimate().min(self.tuples as f64).max(1.0))
            }
            AttrStats::Evidential { .. } => None,
        }
    }

    /// Mean focal-set entries per tuple across evidential
    /// attributes — the memo-table growth factor a Dempster merge of
    /// this relation pays per pairing. 1.0 when there are no
    /// evidential attributes (or no tuples).
    pub fn avg_focal_width(&self) -> f64 {
        if self.tuples == 0 {
            return 1.0;
        }
        let mut width = 0.0;
        let mut seen = false;
        for attr in &self.attrs {
            if let AttrStats::Evidential { focal_count, .. } = attr {
                width += *focal_count as f64 / self.tuples as f64;
                seen = true;
            }
        }
        if seen {
            width.max(1.0)
        } else {
            1.0
        }
    }

    /// Estimated fraction of tuples whose mass function at `pos`
    /// lends positive plausibility to frame value `idx` — the
    /// selectivity source for singleton `IS` predicates. `None` when
    /// `pos` is definite or `idx` is beyond the profiled prefix.
    pub fn plausibility_fraction(&self, pos: usize, idx: usize) -> Option<f64> {
        if self.tuples == 0 {
            return Some(0.0);
        }
        match self.attrs.get(pos)? {
            AttrStats::Evidential { plaus_sum, .. } => {
                let p = plaus_sum.get(idx)?;
                Some((p / self.tuples as f64).clamp(0.0, 1.0))
            }
            AttrStats::Definite { .. } => None,
        }
    }

    /// Attach an observed-κ summary (catalog merge-publish path).
    #[must_use]
    pub fn with_kappa(mut self, kappa: KappaSummary) -> RelStats {
        self.kappa = Some(kappa);
        self
    }

    /// Append the versioned encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, STATS_VERSION);
        put_u64(out, self.tuples);
        put_u64(out, self.bytes);
        self.key_sketch.encode(out);
        put_u32(out, self.attrs.len() as u32);
        for attr in &self.attrs {
            attr.encode(out);
        }
        match &self.kappa {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                put_u64(out, k.observations);
                put_u64(out, k.sum.to_bits());
                put_u64(out, k.max.to_bits());
            }
        }
    }

    /// Decode an encoded block.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on truncation, a bad tag, or an
    /// unsupported version.
    pub fn decode(bytes: &[u8]) -> Result<RelStats, StoreError> {
        let mut cur = codec::Cursor::new(bytes, "stats");
        let version = cur.u32()?;
        if version != STATS_VERSION {
            return Err(StoreError::corrupt(format!(
                "stats: unsupported version {version}"
            )));
        }
        let tuples = cur.u64()?;
        let bytes_total = cur.u64()?;
        let key_sketch = DistinctSketch::decode(&mut cur)?;
        let attr_count = cur.u32()? as usize;
        if attr_count > u16::MAX as usize {
            return Err(StoreError::corrupt(format!(
                "stats: implausible attribute count {attr_count}"
            )));
        }
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            attrs.push(AttrStats::decode(&mut cur)?);
        }
        let kappa = match cur.u8()? {
            0 => None,
            1 => Some(KappaSummary {
                observations: cur.u64()?,
                sum: f64::from_bits(cur.u64()?),
                max: f64::from_bits(cur.u64()?),
            }),
            tag => {
                return Err(StoreError::corrupt(format!(
                    "stats: unknown kappa tag {tag}"
                )))
            }
        };
        Ok(RelStats {
            tuples,
            bytes: bytes_total,
            key_sketch,
            attrs,
            kappa,
        })
    }

    /// One-line human rendering for `STATS` / `\stats`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} tuples, {} bytes, ≈{:.0} distinct keys, avg focal width {:.2}",
            self.tuples,
            self.bytes,
            self.distinct_keys(),
            self.avg_focal_width()
        );
        if let Some(k) = &self.kappa {
            let mean = if k.observations > 0 {
                k.sum / k.observations as f64
            } else {
                0.0
            };
            s.push_str(&format!(
                ", κ mean {:.4} max {:.4} over {} merges",
                mean, k.max, k.observations
            ));
        }
        s
    }
}

/// Builds a [`RelStats`] block incrementally, one tuple at a time.
/// The block is a pure function of the observed tuple sequence — see
/// the module docs.
#[derive(Debug, Clone)]
pub struct StatsBuilder {
    key_positions: Vec<usize>,
    tuples: u64,
    bytes: u64,
    key_sketch: DistinctSketch,
    attrs: Vec<AttrStats>,
    scratch: Vec<u8>,
}

impl StatsBuilder {
    /// A builder shaped for `schema`.
    pub fn new(schema: &Schema) -> StatsBuilder {
        let attrs = schema
            .attrs()
            .iter()
            .map(|a| match a.ty() {
                AttrType::Definite(_) => AttrStats::Definite {
                    distinct: DistinctSketch::default(),
                },
                AttrType::Evidential(domain) => AttrStats::Evidential {
                    frame_len: domain.len() as u32,
                    focal_count: 0,
                    card_hist: [0; CARD_BUCKETS],
                    plaus_sum: vec![0.0; domain.len().min(PROFILE_CAP)],
                },
            })
            .collect();
        StatsBuilder {
            key_positions: schema.key_positions().to_vec(),
            tuples: 0,
            bytes: 0,
            key_sketch: DistinctSketch::default(),
            attrs,
            scratch: Vec::new(),
        }
    }

    /// Fold one tuple into the running statistics.
    pub fn observe(&mut self, tuple: &Tuple) {
        self.tuples += 1;
        self.bytes += codec::record_len(tuple) as u64;
        // Key sketch: hash the concatenated canonical encodings of
        // the key values (each encoding is length-prefixed, so the
        // concatenation is prefix-free).
        self.scratch.clear();
        for &pos in &self.key_positions {
            if let Some(v) = tuple.value(pos).as_definite() {
                codec::encode_value(v, &mut self.scratch);
            }
        }
        let key_hash = fnv1a(&self.scratch);
        self.key_sketch.insert_hash(key_hash);
        for (pos, stats) in self.attrs.iter_mut().enumerate() {
            match stats {
                AttrStats::Definite { distinct } => {
                    if let Some(v) = tuple.value(pos).as_definite() {
                        self.scratch.clear();
                        codec::encode_value(v, &mut self.scratch);
                        distinct.insert_bytes(&self.scratch);
                    }
                }
                AttrStats::Evidential {
                    focal_count,
                    card_hist,
                    plaus_sum,
                    ..
                } => {
                    if let Some(mass) = tuple.value(pos).as_evidential() {
                        for (set, w) in mass.iter() {
                            *focal_count += 1;
                            card_hist[card_bucket(set.len())] += 1;
                            for idx in set.iter() {
                                if idx < plaus_sum.len() {
                                    plaus_sum[idx] += *w;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The finished statistics block.
    pub fn finish(self) -> RelStats {
        RelStats {
            tuples: self.tuples,
            bytes: self.bytes,
            key_sketch: self.key_sketch,
            attrs: self.attrs,
            kappa: None,
        }
    }
}

/// Histogram bucket for a focal-set cardinality.
fn card_bucket(len: usize) -> usize {
    match len {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Statistics for an in-memory relation: the same pure fold a
/// [`crate::SegmentWriter`] performs, so write-time and bind-time
/// stats agree bit for bit.
pub fn compute_stats(rel: &ExtendedRelation) -> RelStats {
    let mut builder = StatsBuilder::new(rel.schema());
    for tuple in rel.iter() {
        builder.observe(tuple);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    fn sample() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .definite("c", evirel_relation::ValueKind::Int)
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..50i64 {
            b = b
                .tuple(|t| {
                    t.set_str("k", format!("k{i}"))
                        .set_int("c", i % 7)
                        .set_evidence(
                            "d",
                            [(&["x"][..], 0.6), (&["x", "y"][..], 0.3), (&["z"][..], 0.1)],
                        )
                })
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn counts_and_estimates() {
        let rel = sample();
        let stats = compute_stats(&rel);
        assert_eq!(stats.tuples, 50);
        assert!(stats.bytes > 0);
        let keys = stats.distinct_keys();
        assert!((45.0..=55.0).contains(&keys), "key estimate {keys}");
        let c = stats.distinct_at(1).unwrap();
        assert!((6.0..=9.0).contains(&c), "attr estimate {c}");
        assert!(stats.distinct_at(2).is_none());
        // Every tuple carries three focal entries.
        assert!((stats.avg_focal_width() - 3.0).abs() < 1e-9);
        // x is plausible in 0.9 of the mass of every tuple.
        let px = stats.plausibility_fraction(2, 0).unwrap();
        assert!((px - 0.9).abs() < 1e-9, "plausibility {px}");
        assert!(stats.kappa.is_none());
    }

    #[test]
    fn encode_round_trips_bit_exactly() {
        let stats = compute_stats(&sample()).with_kappa(KappaSummary {
            observations: 3,
            sum: 0.25,
            max: 0.125,
        });
        let mut buf = Vec::new();
        stats.encode(&mut buf);
        let back = RelStats::decode(&buf).unwrap();
        assert_eq!(stats, back);
        let mut buf2 = Vec::new();
        back.encode(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RelStats::decode(&[]).is_err());
        let mut buf = Vec::new();
        compute_stats(&sample()).encode(&mut buf);
        buf[0] = 99; // version
        assert!(RelStats::decode(&buf).is_err());
    }

    #[test]
    fn recompute_is_bit_identical_to_incremental() {
        let rel = sample();
        let mut b = StatsBuilder::new(rel.schema());
        for t in rel.iter() {
            b.observe(t);
        }
        let incremental = b.finish();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        incremental.encode(&mut e1);
        compute_stats(&rel).encode(&mut e2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn union_estimate_tracks_overlap() {
        let mut a = DistinctSketch::default();
        let mut b = DistinctSketch::default();
        let mut buf = Vec::new();
        for i in 0..200i64 {
            buf.clear();
            codec::encode_value(&Value::int(i), &mut buf);
            a.insert_bytes(&buf);
        }
        for i in 100..300i64 {
            buf.clear();
            codec::encode_value(&Value::int(i), &mut buf);
            b.insert_bytes(&buf);
        }
        let union = a.union_estimate(&b);
        assert!((270.0..=330.0).contains(&union), "union estimate {union}");
        let overlap = a.estimate() + b.estimate() - union;
        assert!((70.0..=130.0).contains(&overlap), "overlap {overlap}");
    }
}
