//! The buffer pool: a shared, byte-budgeted page cache with pin/unpin
//! reference counting and clock (second-chance) eviction.
//!
//! One pool is shared behind an [`Arc`] by every operator of an
//! execution — including the exchange operator's worker threads, so N
//! workers page through one budget instead of N. Pages are cached
//! per `(segment id, page number)`; a [`PageGuard`] pins its page for
//! as long as it lives, and pinned pages are never evicted. When the
//! cached bytes exceed the budget, the clock hand sweeps: pinned
//! frames are skipped, recently-referenced frames get a second chance
//! (their reference bit is cleared), and the first cold unpinned
//! frame is dropped. If *every* frame is pinned the pool temporarily
//! overshoots its budget rather than deadlocking (counted in
//! [`PoolStats::overcommits`]).
//!
//! The budget comes from the `EVIREL_BUFFER_BYTES` environment
//! variable via [`BufferPool::from_env`] (default 64 MiB). CI runs
//! the plan/query/integrate suites under a tiny budget so the
//! eviction and spill paths are exercised end to end every build.

use crate::error::StoreError;
use crate::segment::Segment;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// Default byte budget when `EVIREL_BUFFER_BYTES` is unset: 64 MiB.
pub const DEFAULT_BUFFER_BYTES: usize = 64 * 1024 * 1024;

/// Environment variable naming the pool byte budget.
pub const BUFFER_BYTES_ENV: &str = "EVIREL_BUFFER_BYTES";

/// Environment variable that, when set to anything non-empty other
/// than `0`, makes the pool re-verify page checksums on every cache
/// *hit* (misses always verify on the disk read). CI runs the store
/// suites with this forced on; production leaves it off because a
/// page in cache was already verified when it was read.
pub const PARANOID_ENV: &str = "EVIREL_PARANOID_CHECKSUMS";

fn paranoid_checksums() -> bool {
    static PARANOID: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PARANOID.get_or_init(|| std::env::var(PARANOID_ENV).is_ok_and(|v| !v.is_empty() && v != "0"))
}

type PageKey = (u64, u64);

/// A snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that read from disk.
    pub misses: u64,
    /// Pages evicted by the clock sweep.
    pub evictions: u64,
    /// Times the pool had to exceed its budget because every cached
    /// page was pinned.
    pub overcommits: u64,
    /// Bytes currently cached.
    pub bytes_cached: usize,
    /// Pages currently cached.
    pub pages_cached: usize,
}

#[derive(Debug)]
struct Frame {
    data: Arc<Vec<u8>>,
    pins: u32,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Inner {
    frames: HashMap<PageKey, Frame>,
    /// Clock order; swept circularly by `hand`.
    clock: Vec<PageKey>,
    hand: usize,
    bytes: usize,
    stats: PoolStats,
}

/// A shared page cache under a byte budget. See the module docs.
#[derive(Debug)]
pub struct BufferPool {
    budget: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// A pool with an explicit byte budget (≥ 1 enforced, so a zero
    /// budget degenerates to "evict after every unpin" rather than
    /// dividing by zero semantics).
    pub fn new(budget_bytes: usize) -> BufferPool {
        BufferPool {
            budget: budget_bytes.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A pool budgeted from the `EVIREL_BUFFER_BYTES` environment
    /// variable (bytes; default [`DEFAULT_BUFFER_BYTES`]). The
    /// accepted range is `1..=usize::MAX` — an *invalid* value
    /// (garbage text, a negative number, or `0`, which would turn
    /// every page access into an overcommit) is rejected **loudly**:
    /// one warning per process goes to stderr naming the value and
    /// the accepted range, and the budget falls back to the default.
    pub fn from_env() -> BufferPool {
        BufferPool::new(Self::budget_from_env())
    }

    /// The byte budget [`BufferPool::from_env`] would use, with the
    /// same invalid-value handling (warn once, fall back to
    /// [`DEFAULT_BUFFER_BYTES`]).
    pub fn budget_from_env() -> usize {
        let Ok(raw) = std::env::var(BUFFER_BYTES_ENV) else {
            return DEFAULT_BUFFER_BYTES;
        };
        Self::parse_budget(&raw).unwrap_or_else(|| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid {BUFFER_BYTES_ENV}={raw:?}: expected a \
                     positive byte count (1..=usize::MAX); using the default \
                     {DEFAULT_BUFFER_BYTES} bytes"
                );
            });
            DEFAULT_BUFFER_BYTES
        })
    }

    /// Parse an `EVIREL_BUFFER_BYTES` value: `Some(bytes)` for a
    /// positive integer, `None` for the invalid cases
    /// [`BufferPool::budget_from_env`] warns about (garbage text,
    /// negatives, and `0`, which would make every pool access an
    /// overcommit).
    pub fn parse_budget(raw: &str) -> Option<usize> {
        raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock").stats
    }

    /// Fetch a page of `segment`, reading from disk on a miss. The
    /// returned guard pins the page until dropped.
    ///
    /// # Errors
    /// [`StoreError`] from the underlying page read.
    pub fn get(self: &Arc<Self>, segment: &Segment, page: u64) -> Result<PageGuard, StoreError> {
        let key = (segment.id(), page);
        let cached = {
            let mut inner = self.inner.lock().expect("pool lock");
            if let Some(frame) = inner.frames.get_mut(&key) {
                frame.pins += 1;
                frame.referenced = true;
                let data = Arc::clone(&frame.data);
                inner.stats.hits += 1;
                Some(data)
            } else {
                inner.stats.misses += 1;
                None
            }
        };
        if let Some(data) = cached {
            // Paranoid mode re-verifies even in-memory pages — CI
            // uses it to prove no path trusts unverified bytes.
            if paranoid_checksums() {
                if let Err(e) = segment.verify_page(page, &data) {
                    self.unpin(key);
                    return Err(e);
                }
            }
            return Ok(PageGuard {
                pool: Arc::clone(self),
                key,
                data,
            });
        }
        // Read outside the lock so slow I/O does not serialize other
        // workers' cache hits.
        let data = Arc::new(segment.read_page(page)?);
        let mut inner = self.inner.lock().expect("pool lock");
        // Another worker may have filled this page while we read; use
        // the cached copy to keep accounting single-entry.
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins += 1;
            frame.referenced = true;
            let data = Arc::clone(&frame.data);
            return Ok(PageGuard {
                pool: Arc::clone(self),
                key,
                data,
            });
        }
        inner.bytes += data.len();
        inner.frames.insert(
            key,
            Frame {
                data: Arc::clone(&data),
                pins: 1,
                referenced: true,
            },
        );
        inner.clock.push(key);
        inner.stats.bytes_cached = inner.bytes;
        inner.stats.pages_cached = inner.frames.len();
        self.evict_to_budget(&mut inner);
        Ok(PageGuard {
            pool: Arc::clone(self),
            key,
            data,
        })
    }

    /// Clock sweep: second chance for referenced frames, never evict
    /// pinned ones; give up (overcommit) after two full sweeps find
    /// nothing evictable.
    fn evict_to_budget(&self, inner: &mut Inner) {
        let mut scanned_since_eviction = 0usize;
        while inner.bytes > self.budget && !inner.clock.is_empty() {
            if scanned_since_eviction >= inner.clock.len() * 2 {
                inner.stats.overcommits += 1;
                break;
            }
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
            }
            let key = inner.clock[inner.hand];
            let frame = inner.frames.get_mut(&key).expect("clock entry has frame");
            if frame.pins > 0 {
                inner.hand += 1;
                scanned_since_eviction += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                inner.hand += 1;
                scanned_since_eviction += 1;
                continue;
            }
            let frame = inner.frames.remove(&key).expect("frame exists");
            inner.bytes -= frame.data.len();
            inner.clock.swap_remove(inner.hand);
            inner.stats.evictions += 1;
            scanned_since_eviction = 0;
        }
        inner.stats.bytes_cached = inner.bytes;
        inner.stats.pages_cached = inner.frames.len();
    }

    fn unpin(&self, key: PageKey) {
        let mut inner = self.inner.lock().expect("pool lock");
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins = frame.pins.saturating_sub(1);
        }
        // A pool over budget (everything was pinned) shrinks at the
        // next opportunity.
        if inner.bytes > self.budget {
            self.evict_to_budget(&mut inner);
        }
    }
}

/// A pinned page: dereferences to the raw page bytes; unpins on drop.
pub struct PageGuard {
    pool: Arc<BufferPool>,
    key: PageKey,
    data: Arc<Vec<u8>>,
}

impl Deref for PageGuard {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pool.unpin(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{write_segment, Segment};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evirel-pool-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn segment(name: &str, tuples: usize, page_size: usize) -> Arc<Segment> {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("P")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..tuples {
            b = b
                .tuple(|t| {
                    t.set_str("k", format!("key-{i:06}"))
                        .set_evidence("d", [(&["x"][..], 1.0)])
                })
                .unwrap();
        }
        let path = tmp(name);
        write_segment(&b.build(), &path, page_size).unwrap();
        let seg = Arc::new(Segment::open(&path).unwrap());
        std::fs::remove_file(&path).ok();
        seg
    }

    #[test]
    fn hits_misses_and_eviction() {
        let seg = segment("hm.evb", 200, 256);
        assert!(seg.page_count() >= 8);
        // Budget of ~2 pages.
        let pool = Arc::new(BufferPool::new(512 + 8));
        for p in 0..seg.page_count() {
            let guard = pool.get(&seg, p).unwrap();
            assert!(!guard.is_empty());
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, seg.page_count());
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(stats.bytes_cached <= pool.budget_bytes(), "{stats:?}");
        // Re-reading the last page hits.
        let _g = pool.get(&seg, seg.page_count() - 1).unwrap();
        assert!(pool.stats().hits >= 1);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let seg = segment("pin.evb", 200, 256);
        let pool = Arc::new(BufferPool::new(600));
        let pinned = pool.get(&seg, 0).unwrap();
        // Flood the pool far past its budget.
        for p in 1..seg.page_count() {
            let _ = pool.get(&seg, p).unwrap();
        }
        // Page 0 must still be cached (a re-get is a hit) and its
        // bytes must still be readable through the original guard.
        let hits_before = pool.stats().hits;
        let again = pool.get(&seg, 0).unwrap();
        assert_eq!(
            pool.stats().hits,
            hits_before + 1,
            "pinned page was evicted"
        );
        assert_eq!(&*again, &*pinned);
    }

    #[test]
    fn all_pinned_overcommits_instead_of_deadlocking() {
        let seg = segment("over.evb", 120, 256);
        let pool = Arc::new(BufferPool::new(300));
        let guards: Vec<_> = (0..seg.page_count())
            .map(|p| pool.get(&seg, p).unwrap())
            .collect();
        let stats = pool.stats();
        assert!(stats.bytes_cached > pool.budget_bytes());
        assert!(stats.overcommits > 0, "{stats:?}");
        // Dropping the pins lets the pool shrink back under budget.
        drop(guards);
        let _ = pool.get(&seg, 0).unwrap();
        assert!(pool.stats().bytes_cached <= pool.budget_bytes().max(seg.page_len(0).unwrap()));
    }

    #[test]
    fn from_env_parses_budget() {
        // Not set in the test environment by default → default budget
        // (the CI tiny-budget run overrides this process-wide, so
        // only assert consistency with the variable).
        let pool = BufferPool::from_env();
        match std::env::var(BUFFER_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) => assert_eq!(pool.budget_bytes(), n.max(1)),
            None => assert_eq!(pool.budget_bytes(), DEFAULT_BUFFER_BYTES),
        }
    }

    /// A `0` budget would make every pool access an overcommit, so it
    /// is invalid like garbage text — `budget_from_env` warns once
    /// and falls back to the default instead of silently accepting it.
    #[test]
    fn budget_parsing_rejects_invalid_values() {
        assert_eq!(BufferPool::parse_budget("4096"), Some(4096));
        assert_eq!(BufferPool::parse_budget(" 1 "), Some(1));
        for invalid in ["", "0", "-4096", "64MiB", "1e6", "lots"] {
            assert_eq!(BufferPool::parse_budget(invalid), None, "{invalid:?}");
        }
    }
}
