//! Error type for the storage engine.

use evirel_relation::RelationError;
use std::fmt;

/// Errors produced by the paged storage engine.
///
/// I/O errors are carried as rendered strings (`std::io::Error` is
/// neither `Clone` nor `PartialEq`, and the layers above — the plan
/// executor, the query layer — need both).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// What was being done.
        context: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The segment bytes do not decode: bad magic, truncated page,
    /// out-of-range reference, unknown tag.
    Corrupt {
        /// Where/what failed to decode.
        context: String,
    },
    /// An underlying relational-model error while rebuilding tuples.
    Relation(RelationError),
}

impl StoreError {
    /// Wrap an I/O error with context.
    pub fn io(context: impl Into<String>, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            context: context.into(),
            message: e.to_string(),
        }
    }

    /// A corruption error with context.
    pub fn corrupt(context: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            context: context.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, message } => write!(f, "i/o error ({context}): {message}"),
            Self::Corrupt { context } => write!(f, "corrupt segment: {context}"),
            Self::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for StoreError {
    fn from(e: RelationError) -> Self {
        StoreError::Relation(e)
    }
}

impl From<evirel_evidence::EvidenceError> for StoreError {
    fn from(e: evirel_evidence::EvidenceError) -> Self {
        StoreError::Relation(RelationError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = StoreError::corrupt("page 3 truncated");
        assert!(e.to_string().contains("page 3"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = StoreError::io("open segment", &io);
        assert!(e.to_string().contains("open segment"));
        let e: StoreError = RelationError::CwaViolation.into();
        assert!(matches!(e, StoreError::Relation(_)));
    }
}
