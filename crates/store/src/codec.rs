//! Binary encoding of schemas, tuples, and their parts.
//!
//! Everything is little-endian and length-prefixed; there are no
//! alignment requirements. Two properties drive the format:
//!
//! * **Bit-exact round-trips.** `f64` payloads (masses, membership
//!   supports, float values) are stored as their raw IEEE-754 bits,
//!   so `decode(encode(t)) == t` exactly — the determinism contract
//!   of the storage engine ("stored-scan execution ≡ in-memory
//!   execution bit for bit") reduces to byte equality, with no float
//!   printing/parsing in the loop. [`Ratio`] weights are stored as
//!   their canonical `i128` numerator/denominator, also exact.
//! * **Canonical focal sets.** Focal elements are serialized as their
//!   canonical bit patterns (a word count plus little-endian `u64`
//!   words), the same representation
//!   [`FocalSet`] uses in memory — inline
//!   sets write at most two words, wide (>128-value-frame) sets write
//!   their trimmed boxed words.
//!
//! The schema block interns attribute domains: each distinct domain
//! (frame dictionary) is written once and evidential attributes
//! reference it by index, so relations whose attributes share a
//! domain share one dictionary on disk too.

use crate::error::StoreError;
use evirel_evidence::{FocalSet, MassFunction, Ratio, Weight};
use evirel_relation::{
    AttrDomain, AttrType, AttrValue, Schema, SupportPair, Tuple, Value, ValueKind,
};
use std::sync::Arc;

// ------------------------------------------------------------- cursor

/// A bounds-checked read cursor over encoded bytes.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Rendered into corruption errors.
    context: &'a str,
}

impl<'a> Cursor<'a> {
    /// A cursor over `data`; `context` labels corruption errors.
    pub fn new(data: &'a [u8], context: &'a str) -> Cursor<'a> {
        Cursor {
            data,
            pos: 0,
            context,
        }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Bytes left to read — the bound decode paths use to cap
    /// pre-allocations sized from untrusted counts.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::corrupt(format!("{}: {what} at offset {}", self.context, self.pos))
    }

    /// The next `n` raw bytes.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.corrupt("truncated"))?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i128`.
    ///
    /// # Errors
    /// As [`Cursor::bytes`].
    pub fn i128(&mut self) -> Result<i128, StoreError> {
        Ok(i128::from_le_bytes(self.bytes(16)?.try_into().unwrap()))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("invalid utf-8"))
    }
}

// ------------------------------------------------------------ writers

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ------------------------------------------------------------ weights

/// A [`Weight`] the binary format can serialize. `f64` masses are the
/// raw IEEE-754 bits; [`Ratio`] masses are the canonical
/// numerator/denominator pair — both round-trip exactly.
pub trait WeightCodec: Weight + Sized {
    /// One-byte discriminant written once per mass function.
    const TAG: u8;

    /// Append the encoded weight.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one weight.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] on truncation or invalid payloads.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, StoreError>;

    /// Encoded size in bytes (fixed per weight type).
    fn encoded_len(&self) -> usize;
}

impl WeightCodec for f64 {
    const TAG: u8 = 0;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.to_bits());
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<f64, StoreError> {
        Ok(f64::from_bits(cur.u64()?))
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl WeightCodec for Ratio {
    const TAG: u8 = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.numer().to_le_bytes());
        out.extend_from_slice(&self.denom().to_le_bytes());
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Ratio, StoreError> {
        let num = cur.i128()?;
        let den = cur.i128()?;
        Ratio::new(num, den).map_err(StoreError::from)
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

// --------------------------------------------------------- focal sets

/// Append a focal set as its canonical bit pattern: a `u16` word
/// count followed by that many little-endian `u64` words (trailing
/// zero words trimmed; the empty set writes zero words). A `u16`
/// count supports frames of up to ~4.2 million values — and the
/// count is checked, not truncated, so an outlandish frame fails
/// loudly instead of corrupting the segment.
pub fn encode_focal(set: &FocalSet, out: &mut Vec<u8>) {
    match set.as_bits() {
        Some(bits) => {
            let words = [(bits as u64), ((bits >> 64) as u64)];
            let n = if words[1] != 0 {
                2
            } else {
                usize::from(words[0] != 0)
            };
            put_u16(out, n as u16);
            for w in &words[..n] {
                put_u64(out, *w);
            }
        }
        None => {
            // Boxed set: rebuild the trimmed words from the indices.
            let max = set.max_index().expect("boxed sets are non-empty");
            let n = max / 64 + 1;
            assert!(
                u16::try_from(n).is_ok(),
                "focal set spans {n} words; frames above u16::MAX * 64 values are unsupported"
            );
            let mut words = vec![0u64; n];
            for i in set.iter() {
                words[i / 64] |= 1 << (i % 64);
            }
            put_u16(out, n as u16);
            for w in words {
                put_u64(out, w);
            }
        }
    }
}

/// Encoded size of [`encode_focal`]'s output.
pub fn focal_len(set: &FocalSet) -> usize {
    let words = match set.as_bits() {
        Some(0) => 0,
        Some(bits) if (bits >> 64) == 0 => 1,
        Some(_) => 2,
        None => set.max_index().expect("boxed sets are non-empty") / 64 + 1,
    };
    2 + 8 * words
}

/// Decode one focal set written by [`encode_focal`].
///
/// # Errors
/// [`StoreError::Corrupt`] on truncation.
pub fn decode_focal(cur: &mut Cursor<'_>) -> Result<FocalSet, StoreError> {
    let n = cur.u16()? as usize;
    if n <= 2 {
        let lo = if n > 0 { cur.u64()? } else { 0 } as u128;
        let hi = if n > 1 { cur.u64()? } else { 0 } as u128;
        return Ok(FocalSet::from_bits(lo | (hi << 64)));
    }
    let mut indices = Vec::new();
    for wi in 0..n {
        let mut word = cur.u64()?;
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            word &= word - 1;
            indices.push(wi * 64 + b);
        }
    }
    Ok(FocalSet::from_indices(indices))
}

// ------------------------------------------------------ mass functions

/// Append a mass function: the weight tag, the focal count, then
/// `(focal bit pattern, weight)` entries in canonical order.
pub fn encode_mass<W: WeightCodec>(m: &MassFunction<W>, out: &mut Vec<u8>) {
    out.push(W::TAG);
    put_u32(out, m.focal_count() as u32);
    for (set, w) in m.iter() {
        encode_focal(set, out);
        w.encode(out);
    }
}

/// Encoded size of [`encode_mass`]'s output.
pub fn mass_len<W: WeightCodec>(m: &MassFunction<W>) -> usize {
    1 + 4
        + m.iter()
            .map(|(set, w)| focal_len(set) + w.encoded_len())
            .sum::<usize>()
}

/// Decode one mass function over `frame`.
///
/// # Errors
/// [`StoreError::Corrupt`] on truncation or a weight-tag mismatch;
/// mass-function validation errors if the stored entries do not form
/// a valid assignment.
pub fn decode_mass<W: WeightCodec>(
    cur: &mut Cursor<'_>,
    frame: &Arc<evirel_evidence::Frame>,
) -> Result<MassFunction<W>, StoreError> {
    let tag = cur.u8()?;
    if tag != W::TAG {
        return Err(StoreError::corrupt(format!(
            "weight tag {tag} does not match the requested weight type"
        )));
    }
    let count = cur.u32()? as usize;
    // Each entry costs ≥ 10 bytes (2-byte focal word count + 8-byte
    // weight) — cap the pre-allocation so a corrupted count cannot
    // request gigabytes before the truncation error surfaces.
    let mut entries = Vec::with_capacity(count.min(cur.remaining() / 10));
    for _ in 0..count {
        let set = decode_focal(cur)?;
        let w = W::decode(cur)?;
        entries.push((set, w));
    }
    MassFunction::from_entries(Arc::clone(frame), entries).map_err(StoreError::from)
}

// -------------------------------------------------------- scalar values

const VALUE_INT: u8 = 0;
const VALUE_FLOAT: u8 = 1;
const VALUE_STR: u8 = 2;

/// Append a definite scalar value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(VALUE_FLOAT);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_str(out, s);
        }
    }
}

/// Encoded size of [`encode_value`]'s output.
pub fn value_len(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 1 + 4 + s.len(),
    }
}

/// Decode one scalar value.
///
/// # Errors
/// [`StoreError::Corrupt`] on truncation or an unknown tag.
pub fn decode_value(cur: &mut Cursor<'_>) -> Result<Value, StoreError> {
    match cur.u8()? {
        VALUE_INT => Ok(Value::Int(cur.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(f64::from_bits(cur.u64()?))),
        VALUE_STR => Ok(Value::str(cur.str()?)),
        tag => Err(StoreError::corrupt(format!("unknown value tag {tag}"))),
    }
}

fn kind_tag(kind: ValueKind) -> u8 {
    match kind {
        ValueKind::Int => VALUE_INT,
        ValueKind::Float => VALUE_FLOAT,
        ValueKind::Str => VALUE_STR,
    }
}

fn kind_of(tag: u8) -> Result<ValueKind, StoreError> {
    match tag {
        VALUE_INT => Ok(ValueKind::Int),
        VALUE_FLOAT => Ok(ValueKind::Float),
        VALUE_STR => Ok(ValueKind::Str),
        other => Err(StoreError::corrupt(format!("unknown kind tag {other}"))),
    }
}

// ------------------------------------------------------- tuple records

const ATTR_DEFINITE: u8 = 0;
const ATTR_EVIDENTIAL: u8 = 1;

/// Append one tuple record: the membership pair (raw `f64` bits),
/// then one tagged value per attribute in schema order.
pub fn encode_record(tuple: &Tuple, out: &mut Vec<u8>) {
    put_u64(out, tuple.membership().sn().to_bits());
    put_u64(out, tuple.membership().sp().to_bits());
    for value in tuple.values() {
        match value {
            AttrValue::Definite(v) => {
                out.push(ATTR_DEFINITE);
                encode_value(v, out);
            }
            AttrValue::Evidential(m) => {
                out.push(ATTR_EVIDENTIAL);
                encode_mass(m, out);
            }
        }
    }
}

/// Exact encoded size of [`encode_record`]'s output — used by the
/// spill accounting in the plan layer to decide when a build side has
/// outgrown its memory budget without encoding anything twice.
pub fn record_len(tuple: &Tuple) -> usize {
    16 + tuple
        .values()
        .iter()
        .map(|value| {
            1 + match value {
                AttrValue::Definite(v) => value_len(v),
                AttrValue::Evidential(m) => mass_len(m),
            }
        })
        .sum::<usize>()
}

/// Decode one tuple record against `schema` (with the per-position
/// evidential domains precomputed by the segment reader). The decoded
/// tuple is revalidated by [`Tuple::new`], so a corrupt record cannot
/// smuggle an ill-typed tuple into the executor.
///
/// # Errors
/// [`StoreError::Corrupt`] on malformed bytes; relational validation
/// errors on type mismatches.
pub fn decode_record(
    cur: &mut Cursor<'_>,
    schema: &Arc<Schema>,
    domains: &[Option<Arc<AttrDomain>>],
) -> Result<Tuple, StoreError> {
    let sn = f64::from_bits(cur.u64()?);
    let sp = f64::from_bits(cur.u64()?);
    let membership = SupportPair::new(sn, sp)?;
    let mut values = Vec::with_capacity(schema.arity());
    for pos in 0..schema.arity() {
        match cur.u8()? {
            ATTR_DEFINITE => values.push(AttrValue::Definite(decode_value(cur)?)),
            ATTR_EVIDENTIAL => {
                let domain = domains.get(pos).and_then(|d| d.as_ref()).ok_or_else(|| {
                    StoreError::corrupt(format!(
                        "evidential value in definite attribute position {pos}"
                    ))
                })?;
                values.push(AttrValue::Evidential(decode_mass::<f64>(
                    cur,
                    domain.frame(),
                )?));
            }
            tag => return Err(StoreError::corrupt(format!("unknown attribute tag {tag}"))),
        }
    }
    Tuple::new(schema, values, membership).map_err(StoreError::from)
}

// ------------------------------------------------------- schema block

const TYPE_DEFINITE: u8 = 0;
const TYPE_EVIDENTIAL: u8 = 1;
const FLAG_KEY: u8 = 1;

/// Append the schema block: relation name, the interned domain
/// dictionary (each distinct frame dictionary written once), then the
/// attribute list referencing domains by index.
pub fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    put_str(out, schema.name());
    // Intern domains: attributes sharing one `Arc` (or a structurally
    // identical domain) share one dictionary entry.
    let mut domains: Vec<Arc<AttrDomain>> = Vec::new();
    let mut refs: Vec<Option<u16>> = Vec::with_capacity(schema.arity());
    for attr in schema.attrs() {
        refs.push(attr.ty().domain().map(
            |d| match domains.iter().position(|seen| seen.same_as(d)) {
                Some(i) => i as u16,
                None => {
                    domains.push(Arc::clone(d));
                    (domains.len() - 1) as u16
                }
            },
        ));
    }
    put_u16(out, domains.len() as u16);
    for domain in &domains {
        put_str(out, domain.name());
        out.push(kind_tag(domain.kind()));
        put_u32(out, domain.len() as u32);
        for v in domain.values() {
            encode_value(v, out);
        }
    }
    put_u16(out, schema.arity() as u16);
    for (attr, domain_ref) in schema.attrs().iter().zip(refs) {
        put_str(out, attr.name());
        out.push(if attr.is_key() { FLAG_KEY } else { 0 });
        match domain_ref {
            None => {
                out.push(TYPE_DEFINITE);
                let AttrType::Definite(kind) = attr.ty() else {
                    unreachable!("no domain ⇒ definite");
                };
                out.push(kind_tag(*kind));
            }
            Some(i) => {
                out.push(TYPE_EVIDENTIAL);
                put_u16(out, i);
            }
        }
    }
}

/// Per-position evidential domains of a schema, `None` for definite
/// attributes — the decode context tuple records need.
pub type AttrDomains = Vec<Option<Arc<AttrDomain>>>;

/// Decode a schema block written by [`encode_schema`], returning the
/// rebuilt schema plus the per-position evidential domains (shared
/// `Arc`s, interned exactly as written).
///
/// # Errors
/// [`StoreError::Corrupt`] on malformed bytes; schema validation
/// errors.
pub fn decode_schema(cur: &mut Cursor<'_>) -> Result<(Arc<Schema>, AttrDomains), StoreError> {
    let name = cur.str()?.to_owned();
    let domain_count = cur.u16()? as usize;
    let mut domains = Vec::with_capacity(domain_count);
    for _ in 0..domain_count {
        let dname = cur.str()?.to_owned();
        let _kind = kind_of(cur.u8()?)?;
        let value_count = cur.u32()? as usize;
        // Each value costs ≥ 5 bytes (tag + shortest payload) — cap
        // the pre-allocation against the untrusted count.
        let mut values = Vec::with_capacity(value_count.min(cur.remaining() / 5));
        for _ in 0..value_count {
            values.push(decode_value(cur)?);
        }
        domains.push(Arc::new(
            AttrDomain::from_values(&dname, values).map_err(StoreError::from)?,
        ));
    }
    let arity = cur.u16()? as usize;
    let mut builder = Schema::builder(name);
    let mut by_position: AttrDomains = Vec::with_capacity(arity);
    for _ in 0..arity {
        let attr_name = cur.str()?.to_owned();
        let is_key = cur.u8()? & FLAG_KEY != 0;
        match cur.u8()? {
            TYPE_DEFINITE => {
                let kind = kind_of(cur.u8()?)?;
                builder = if is_key {
                    builder.key(attr_name, kind)
                } else {
                    builder.definite(attr_name, kind)
                };
                by_position.push(None);
            }
            TYPE_EVIDENTIAL => {
                let i = cur.u16()? as usize;
                let domain = domains.get(i).ok_or_else(|| {
                    StoreError::corrupt(format!("domain reference {i} out of range"))
                })?;
                builder = builder.evidential(attr_name, Arc::clone(domain));
                by_position.push(Some(Arc::clone(domain)));
            }
            tag => return Err(StoreError::corrupt(format!("unknown type tag {tag}"))),
        }
    }
    let schema = Arc::new(builder.build().map_err(StoreError::from)?);
    Ok((schema, by_position))
}

/// The per-position evidential domains of an already-built schema —
/// what [`decode_schema`] returns, extracted from a live schema so
/// spill segments can decode against the executor's own domain
/// `Arc`s (pointer-identical frames, no structural re-checks).
pub fn domains_of(schema: &Schema) -> Vec<Option<Arc<AttrDomain>>> {
    schema
        .attrs()
        .iter()
        .map(|attr| attr.ty().domain().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_evidence::Frame;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c", "d"]))
    }

    #[test]
    fn focal_roundtrip_inline_and_boxed() {
        for set in [
            FocalSet::empty(),
            FocalSet::singleton(0),
            FocalSet::singleton(63),
            FocalSet::singleton(127),
            FocalSet::from_indices([1, 5, 100]),
            FocalSet::from_indices([3, 150, 400]),
            FocalSet::full(200),
        ] {
            let mut buf = Vec::new();
            encode_focal(&set, &mut buf);
            assert_eq!(buf.len(), focal_len(&set), "{set:?}");
            let mut cur = Cursor::new(&buf, "test");
            let back = decode_focal(&mut cur).unwrap();
            assert_eq!(back, set);
            assert!(cur.is_exhausted());
        }
    }

    #[test]
    fn mass_roundtrip_f64_is_bit_exact() {
        let m = MassFunction::<f64>::builder(frame())
            .add(["a"], 1.0 / 3.0)
            .unwrap()
            .add(["b", "c"], 0.25)
            .unwrap()
            .add_omega(1.0 - 1.0 / 3.0 - 0.25)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        encode_mass(&m, &mut buf);
        assert_eq!(buf.len(), mass_len(&m));
        let mut cur = Cursor::new(&buf, "test");
        let back = decode_mass::<f64>(&mut cur, &frame()).unwrap();
        // Exact equality, not approx: raw bits round-trip.
        assert_eq!(back, m);
    }

    #[test]
    fn mass_roundtrip_ratio_is_exact() {
        let r = |n, d| Ratio::new(n, d).unwrap();
        let m = MassFunction::<Ratio>::builder(frame())
            .add(["a"], r(1, 3))
            .unwrap()
            .add(["b", "c"], r(1, 4))
            .unwrap()
            .add_omega(r(5, 12))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        encode_mass(&m, &mut buf);
        let mut cur = Cursor::new(&buf, "test");
        let back = decode_mass::<Ratio>(&mut cur, &frame()).unwrap();
        assert_eq!(back, m);
        // Requesting the wrong weight type is detected, not garbled.
        let mut cur = Cursor::new(&buf, "test");
        assert!(matches!(
            decode_mass::<f64>(&mut cur, &frame()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::int(-42),
            Value::int(i64::MAX),
            Value::float(0.1 + 0.2), // a value that does NOT print exactly
            Value::float(f64::MIN_POSITIVE),
            Value::str(""),
            Value::str("snow ☃ man | with, separators"),
        ] {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            assert_eq!(buf.len(), value_len(&v));
            let mut cur = Cursor::new(&buf, "test");
            assert_eq!(decode_value(&mut cur).unwrap(), v);
        }
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        encode_value(&Value::str("hello"), &mut buf);
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut], "test");
            assert!(decode_value(&mut cur).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn schema_block_interns_shared_domains() {
        let d = Arc::new(AttrDomain::categorical("spec", ["x", "y"]).unwrap());
        let schema = Schema::builder("R")
            .key_str("k")
            .definite("n", ValueKind::Int)
            .evidential("e1", Arc::clone(&d))
            .evidential("e2", Arc::clone(&d))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        encode_schema(&schema, &mut buf);
        let mut cur = Cursor::new(&buf, "test");
        let (back, domains) = decode_schema(&mut cur).unwrap();
        assert!(cur.is_exhausted());
        assert_eq!(back.name(), "R");
        assert_eq!(back.arity(), 4);
        assert!(back.attr(0).is_key());
        // Both evidential attributes decode to ONE shared Arc.
        let d1 = domains[2].as_ref().unwrap();
        let d2 = domains[3].as_ref().unwrap();
        assert!(Arc::ptr_eq(d1, d2));
        assert!(d1.same_as(&d));
        // And the rebuilt schema is union-compatible with the original.
        schema.check_union_compatible(&back).unwrap();
    }
}
