//! Replication-side segment shipping: staging incoming chunks and
//! verifying the reassembled file, with the same crash discipline as
//! every other durable write in this crate.
//!
//! A replication follower receives a segment as a sequence of byte
//! chunks (the sender splits large files so no wire frame outgrows
//! the protocol's ceiling). The chunks land in a **staging file**
//! whose name contains `.tmp-` — the exact pattern
//! [`crate::checkpoint`] garbage-collects — so a follower killed
//! mid-transfer leaves nothing a later checkpoint won't sweep up.
//! Only when the final chunk arrives is the file fsync'd, renamed to
//! its real segment name, and the directory fsync'd: the final name
//! appears atomically or not at all, mirroring the manifest swap.
//!
//! Every byte routes through the [`crate::failpoint`] helpers, so the
//! fault-injection sweeps that already cover journal appends and
//! manifest swaps cover replication staging for free: killing the
//! follower at any point during [`stage_chunk`] leaves either a
//! `.tmp-` orphan (GC'd) or a fully-renamed segment, never a torn
//! file under the final name.

use crate::error::StoreError;
use crate::failpoint::{
    fp_create, fp_open_append, fp_rename, fp_sync, fp_sync_parent_dir, fp_write_all,
};
use crate::segment::Segment;
use std::path::{Path, PathBuf};

/// Suffix appended to a segment's name while its chunks are being
/// staged. Contains `.tmp-` on purpose: checkpoint GC removes
/// abandoned staging files without knowing about replication.
pub const STAGING_SUFFIX: &str = ".tmp-repl";

/// Whether `file` is an acceptable *relative* segment file name for a
/// replicated binding: the `seg-NNNNNN.evb` shape the primary's
/// durable catalog produces, with no path separators or traversal —
/// a follower must never let a (buggy or hostile) primary name a file
/// outside its own data directory.
pub fn valid_segment_file_name(file: &str) -> bool {
    let Some(stem) = file
        .strip_prefix("seg-")
        .and_then(|f| f.strip_suffix(".evb"))
    else {
        return false;
    };
    !stem.is_empty() && stem.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-')
}

/// Where a segment named `file` is staged inside `dir` while its
/// chunks arrive.
pub fn staging_path(dir: &Path, file: &str) -> PathBuf {
    dir.join(format!("{file}{STAGING_SUFFIX}"))
}

/// Append one replication chunk of `file` (final size `total_len`)
/// into its staging file in `dir`. Chunks must arrive in order:
/// `offset` is the byte position this chunk starts at, and the first
/// chunk (`offset == 0`) truncates any stale staging leftover from an
/// interrupted earlier transfer. When the last byte lands, the
/// staging file is fsync'd and atomically renamed to `file` (then the
/// directory is fsync'd); the return value says whether that happened.
///
/// # Errors
/// [`StoreError::Corrupt`] on a bad file name, an out-of-order or
/// over-long chunk, or a staging file whose length disagrees with
/// `offset` (an interrupted transfer the sender must restart from
/// offset 0); [`StoreError::Io`] on write failures.
pub fn stage_chunk(
    dir: &Path,
    file: &str,
    offset: u64,
    chunk: &[u8],
    total_len: u64,
) -> Result<bool, StoreError> {
    if !valid_segment_file_name(file) {
        return Err(StoreError::corrupt(format!(
            "replicated segment has an invalid file name {file:?}"
        )));
    }
    let end = offset
        .checked_add(chunk.len() as u64)
        .filter(|end| *end <= total_len)
        .ok_or_else(|| {
            StoreError::corrupt(format!(
                "replication chunk for {file:?} overruns its total \
                 (offset {offset} + {} > {total_len})",
                chunk.len()
            ))
        })?;
    let staging = staging_path(dir, file);
    let mut f = if offset == 0 {
        fp_create(&staging).map_err(|e| StoreError::io(format!("create {staging:?}"), &e))?
    } else {
        let have = std::fs::metadata(&staging).map(|m| m.len()).unwrap_or(0);
        if have != offset {
            return Err(StoreError::corrupt(format!(
                "out-of-order replication chunk for {file:?}: staged {have} bytes, \
                 chunk starts at {offset}"
            )));
        }
        fp_open_append(&staging)
            .map_err(|e| StoreError::io(format!("append to {staging:?}"), &e))?
    };
    fp_write_all(&mut f, chunk)
        .map_err(|e| StoreError::io(format!("stage chunk of {file:?}"), &e))?;
    if end < total_len {
        return Ok(false);
    }
    // Last chunk: make the bytes durable, then publish the final name
    // atomically. Crash-order argument: rename before fsync(file)
    // could expose a final-named file whose bytes are not durable, so
    // the fsync comes first, exactly as in the manifest swap.
    fp_sync(&f).map_err(|e| StoreError::io(format!("fsync staged {file:?}"), &e))?;
    drop(f);
    let final_path = dir.join(file);
    fp_rename(&staging, &final_path)
        .map_err(|e| StoreError::io(format!("rename {staging:?} into place"), &e))?;
    fp_sync_parent_dir(&final_path).map_err(|e| StoreError::io("fsync data directory", &e))?;
    Ok(true)
}

/// Open the replicated segment `file` in `dir` and check it against
/// what the primary's journal record promised: the v3 content
/// checksum and the tuple count. A follower runs this **before**
/// journaling the binding — a segment that fails verification must
/// never become part of the standby's durable state.
///
/// # Errors
/// [`StoreError::Corrupt`] when the segment lacks a content checksum
/// (pre-v3 format) or either field disagrees; [`StoreError::Io`] /
/// [`StoreError::Corrupt`] from opening the segment itself.
pub fn verify_segment(
    dir: &Path,
    file: &str,
    expected_checksum: u32,
    expected_tuples: u64,
) -> Result<(), StoreError> {
    let path = dir.join(file);
    let segment = Segment::open(&path)?;
    let Some(checksum) = segment.content_checksum() else {
        return Err(StoreError::corrupt(format!(
            "replicated segment {file:?} carries no content checksum \
             (format v{}); replication requires v3 segments",
            segment.version()
        )));
    };
    if checksum != expected_checksum {
        return Err(StoreError::corrupt(format!(
            "replicated segment {file:?} checksum mismatch \
             (journal promises {expected_checksum:#010x}, file has {checksum:#010x})"
        )));
    }
    if segment.tuple_count() != expected_tuples {
        return Err(StoreError::corrupt(format!(
            "replicated segment {file:?} tuple count mismatch \
             (journal promises {expected_tuples}, file has {})",
            segment.tuple_count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointFs;
    use crate::segment::write_segment_meta;
    use crate::DEFAULT_PAGE_SIZE;
    use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema};
    use std::sync::Arc;

    fn dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("evirel-replica-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", "a")
                    .set_evidence_with_omega("d", [(&["x"][..], 0.5)], 0.5)
            })
            .unwrap()
            .build()
    }

    #[test]
    fn file_name_validation_rejects_traversal() {
        assert!(valid_segment_file_name("seg-000001.evb"));
        assert!(valid_segment_file_name("seg-0.evb"));
        for bad in [
            "",
            "seg-.evb",
            "seg-000001.evj",
            "MANIFEST.evm",
            "../seg-000001.evb",
            "seg-../../etc.evb",
            "a/seg-000001.evb",
            "seg-000001.evb/..",
            "seg-00 01.evb",
        ] {
            assert!(!valid_segment_file_name(bad), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn chunked_staging_reassembles_and_verifies() {
        let d = dir("chunks");
        // Write a real segment elsewhere, ship it in 3 chunks.
        let src = dir("chunks-src");
        let meta =
            write_segment_meta(&rel(), src.join("seg-000001.evb"), DEFAULT_PAGE_SIZE).unwrap();
        let bytes = std::fs::read(&meta.path).unwrap();
        let total = bytes.len() as u64;
        let cut1 = bytes.len() / 3;
        let cut2 = 2 * bytes.len() / 3;
        assert!(!stage_chunk(&d, "seg-000001.evb", 0, &bytes[..cut1], total).unwrap());
        assert!(staging_path(&d, "seg-000001.evb").exists());
        assert!(!d.join("seg-000001.evb").exists());
        assert!(
            !stage_chunk(&d, "seg-000001.evb", cut1 as u64, &bytes[cut1..cut2], total).unwrap()
        );
        assert!(stage_chunk(&d, "seg-000001.evb", cut2 as u64, &bytes[cut2..], total).unwrap());
        assert!(!staging_path(&d, "seg-000001.evb").exists());
        assert!(d.join("seg-000001.evb").exists());
        verify_segment(&d, "seg-000001.evb", meta.checksum, meta.tuple_count).unwrap();
        // Wrong expectations are typed corruption, not acceptance.
        assert!(matches!(
            verify_segment(&d, "seg-000001.evb", meta.checksum ^ 1, meta.tuple_count),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            verify_segment(&d, "seg-000001.evb", meta.checksum, meta.tuple_count + 1),
            Err(StoreError::Corrupt { .. })
        ));
        for p in [&d, &src] {
            std::fs::remove_dir_all(p).ok();
        }
    }

    #[test]
    fn out_of_order_and_overrun_chunks_are_rejected() {
        let d = dir("order");
        assert!(matches!(
            stage_chunk(&d, "seg-000001.evb", 4, b"late", 8),
            Err(StoreError::Corrupt { .. })
        ));
        stage_chunk(&d, "seg-000001.evb", 0, b"ab", 8).unwrap();
        // Gap (staged 2, chunk claims 4) and overrun both rejected.
        assert!(matches!(
            stage_chunk(&d, "seg-000001.evb", 4, b"cd", 8),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            stage_chunk(&d, "seg-000001.evb", 2, b"0123456789", 8),
            Err(StoreError::Corrupt { .. })
        ));
        // A restart from offset 0 truncates the stale staging file.
        assert!(stage_chunk(&d, "seg-000001.evb", 0, b"01234567", 8).unwrap());
        assert_eq!(
            std::fs::read(d.join("seg-000001.evb")).unwrap(),
            b"01234567"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_sweep_never_exposes_a_torn_final_name() {
        let d = dir("sweep");
        let src = dir("sweep-src");
        let meta =
            write_segment_meta(&rel(), src.join("seg-000002.evb"), DEFAULT_PAGE_SIZE).unwrap();
        let bytes = std::fs::read(&meta.path).unwrap();
        let total_len = bytes.len() as u64;
        let mid = bytes.len() / 2;
        let ship = |dst: &Path| -> Result<bool, StoreError> {
            stage_chunk(dst, "seg-000002.evb", 0, &bytes[..mid], total_len)?;
            stage_chunk(dst, "seg-000002.evb", mid as u64, &bytes[mid..], total_len)
        };
        let total_units = {
            let fp = FailpointFs::observe();
            ship(&d).unwrap();
            let t = fp.units();
            drop(fp);
            t
        };
        for kill_at in 0..=total_units {
            std::fs::remove_file(d.join("seg-000002.evb")).ok();
            std::fs::remove_file(staging_path(&d, "seg-000002.evb")).ok();
            let fp = FailpointFs::kill_after(kill_at);
            let result = ship(&d);
            drop(fp);
            // Either the transfer died (leaving at most a .tmp- file a
            // checkpoint will GC) or the final name verifies clean.
            match result {
                Ok(true) => {
                    verify_segment(&d, "seg-000002.evb", meta.checksum, meta.tuple_count)
                        .unwrap_or_else(|e| panic!("kill at {kill_at}: {e}"));
                }
                Ok(false) => unreachable!("ship always sends the final chunk"),
                Err(_) => {
                    // The rename is the commit point: if the final name
                    // exists despite the error, the rename itself
                    // succeeded, so the content is complete and synced.
                    if d.join("seg-000002.evb").exists() {
                        verify_segment(&d, "seg-000002.evb", meta.checksum, meta.tuple_count)
                            .unwrap_or_else(|e| panic!("kill at {kill_at}: {e}"));
                    }
                }
            }
        }
        for p in [&d, &src] {
            std::fs::remove_dir_all(p).ok();
        }
    }
}
