//! Property suite for the text notation: random extended relations →
//! `write_relation` → `read_relation` ≡ original. Masses and
//! memberships are written with Rust's shortest round-trip float
//! formatting, so the round-trip is exact (the writer's documented
//! contract) — this suite turns that contract, previously covered
//! only by a fixed example, into a checked property.

use evirel_storage::{read_relation, write_relation};
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_notation_roundtrip_is_exact(
        seed in 0u64..1_000_000,
        tuples in 1usize..120,
        domain_size in 2usize..24,
        attrs in 1usize..4,
        max_focal in 1usize..5,
        uncertain in 0u8..2,
    ) {
        let rel = generate("G", &GeneratorConfig {
            tuples,
            domain_size,
            evidential_attrs: attrs,
            max_focal,
            max_focal_size: 3,
            omega_mass: 0.15,
            uncertain_membership: 0.5 * f64::from(uncertain),
            seed,
        }).expect("generator config is valid");

        let text = write_relation(&rel);
        let back = read_relation(&text)
            .unwrap_or_else(|e| panic!("reader rejected writer output: {e}\n{text}"));

        prop_assert_eq!(back.len(), rel.len());
        rel.schema()
            .check_union_compatible(back.schema())
            .expect("schema round-trips");
        // Exact equality per key: shortest-roundtrip floats reparse to
        // the same bits, so `PartialEq` (not approx) must hold.
        for (key, orig) in rel.iter_keyed() {
            let got = back.get_by_key(&key).expect("key survives");
            prop_assert_eq!(got.values(), orig.values());
            prop_assert_eq!(
                got.membership().sn().to_bits(),
                orig.membership().sn().to_bits()
            );
            prop_assert_eq!(
                got.membership().sp().to_bits(),
                orig.membership().sp().to_bits()
            );
        }
        // Insertion order is preserved too.
        let orig_keys: Vec<_> = rel.keys().collect();
        let back_keys: Vec<_> = back.keys().collect();
        prop_assert_eq!(orig_keys, back_keys);
    }
}

/// Awkward strings (separators, quotes, unicode, leading/trailing
/// whitespace) survive the quoting rules.
#[test]
fn awkward_strings_roundtrip() {
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;
    let d = Arc::new(AttrDomain::categorical("d", ["pipe|y", "brace{z}", "plain"]).unwrap());
    let schema = Arc::new(
        Schema::builder("Awkward")
            .key_str("k")
            .evidential("d", d)
            .build()
            .unwrap(),
    );
    let mut b = RelationBuilder::new(schema);
    for (i, k) in [
        "pipe|in|key",
        " leading space",
        "trailing space ",
        "quote\"and\\backslash",
        "caret^and,comma",
        "Ω-omega-lookalike",
    ]
    .iter()
    .enumerate()
    {
        let label = ["pipe|y", "brace{z}", "plain"][i % 3];
        b = b
            .tuple(|t| {
                t.set_str("k", *k)
                    .set_evidence_with_omega("d", [(&[label][..], 0.5)], 0.5)
            })
            .unwrap();
    }
    let rel = b.build();
    let text = write_relation(&rel);
    let back = read_relation(&text).unwrap();
    assert_eq!(back.len(), rel.len());
    for (key, orig) in rel.iter_keyed() {
        let got = back.get_by_key(&key).unwrap();
        assert_eq!(got.values(), orig.values());
    }
}
