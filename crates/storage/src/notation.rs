//! Parsing of the paper's value notation: scalars, evidence sets, and
//! support pairs.

use crate::error::StorageError;
use evirel_evidence::MassFunction;
use evirel_relation::{AttrDomain, SupportPair, Value, ValueKind};
use std::sync::Arc;

/// `true` if a string field must be quoted to survive the format.
pub fn needs_quoting(s: &str) -> bool {
    s.is_empty() || s != s.trim() || s.contains(['|', '"', '[', ']', '{', '}', '^', '(', ')', ','])
}

/// Quote a string field with backslash escapes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Undo [`quote`]; `line` is for error reporting.
pub fn unquote(s: &str, line: usize) -> Result<String, StorageError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .ok_or_else(|| StorageError::parse(line, format!("malformed quoted string {s:?}")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(e) => out.push(e),
                None => return Err(StorageError::parse(line, "dangling escape")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parse a definite scalar of the given kind.
pub fn parse_scalar(field: &str, kind: ValueKind, line: usize) -> Result<Value, StorageError> {
    let field = field.trim();
    match kind {
        ValueKind::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StorageError::parse(line, format!("expected int, got {field:?}"))),
        ValueKind::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StorageError::parse(line, format!("expected float, got {field:?}"))),
        ValueKind::Str => {
            if field.starts_with('"') {
                Ok(Value::str(unquote(field, line)?))
            } else {
                Ok(Value::str(field))
            }
        }
    }
}

/// Render a definite scalar.
pub fn render_scalar(v: &Value) -> String {
    match v {
        Value::Str(s) if needs_quoting(s) => quote(s),
        other => other.to_string(),
    }
}

/// Render an evidence set with full-precision masses:
/// `[si^0.5, {d35, d36}^0.5, Ω^0.25]`.
pub fn render_evidence(m: &MassFunction<f64>) -> String {
    let mut out = String::from("[");
    let full = m.frame().len();
    for (k, (set, w)) in m.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        if set.len() == full && full > 0 {
            out.push('Ω');
        } else if set.len() == 1 {
            let label = m
                .frame()
                .label(set.min_index().expect("singleton"))
                .unwrap_or("?");
            if needs_quoting(label) {
                out.push_str(&quote(label));
            } else {
                out.push_str(label);
            }
        } else {
            out.push('{');
            for (j, i) in set.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let label = m.frame().label(i).unwrap_or("?");
                if needs_quoting(label) {
                    out.push_str(&quote(label));
                } else {
                    out.push_str(label);
                }
            }
            out.push('}');
        }
        out.push('^');
        out.push_str(&format!("{w}"));
    }
    out.push(']');
    out
}

/// Parse an evidence set against a domain. Accepts `Ω` or `~` for the
/// full set, `{a, b}^w` for subsets, and bare `label^w` singletons.
pub fn parse_evidence(
    field: &str,
    domain: &Arc<AttrDomain>,
    line: usize,
) -> Result<MassFunction<f64>, StorageError> {
    let inner = field
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| {
            StorageError::parse(line, format!("expected [evidence set], got {field:?}"))
        })?;
    let mut builder = MassFunction::<f64>::builder(Arc::clone(domain.frame()));
    for entry in split_top_level(inner, ',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let caret = entry
            .rfind('^')
            .ok_or_else(|| StorageError::parse(line, format!("missing ^mass in {entry:?}")))?;
        let (set_part, mass_part) = entry.split_at(caret);
        let mass: f64 = mass_part[1..]
            .trim()
            .parse()
            .map_err(|_| StorageError::parse(line, format!("bad mass in {entry:?}")))?;
        let set_part = set_part.trim();
        let set = if set_part == "Ω" || set_part == "~" {
            domain.frame().omega()
        } else if let Some(body) = set_part.strip_prefix('{').and_then(|x| x.strip_suffix('}')) {
            let mut members = Vec::new();
            for label in split_top_level(body, ',') {
                members.push(lookup(domain, label.trim(), line)?);
            }
            evirel_evidence::FocalSet::from_indices(members)
        } else {
            evirel_evidence::FocalSet::singleton(lookup(domain, set_part, line)?)
        };
        builder = builder
            .add_set(set, mass)
            .map_err(evirel_relation::RelationError::from)?;
    }
    builder
        .build()
        .map_err(evirel_relation::RelationError::from)
        .map_err(StorageError::from)
}

fn lookup(domain: &Arc<AttrDomain>, label: &str, line: usize) -> Result<usize, StorageError> {
    let label = if label.starts_with('"') {
        unquote(label, line)?
    } else {
        label.to_owned()
    };
    let value = match domain.kind() {
        ValueKind::Int => label
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StorageError::parse(line, format!("bad int label {label:?}")))?,
        ValueKind::Float => label
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StorageError::parse(line, format!("bad float label {label:?}")))?,
        ValueKind::Str => Value::str(label),
    };
    domain.index_of(&value).map_err(StorageError::from)
}

/// Render a support pair with full precision: `(sn,sp)`.
pub fn render_support(p: &SupportPair) -> String {
    format!("({},{})", p.sn(), p.sp())
}

/// Parse a `(sn,sp)` pair.
pub fn parse_support(field: &str, line: usize) -> Result<SupportPair, StorageError> {
    let inner = field
        .trim()
        .strip_prefix('(')
        .and_then(|x| x.strip_suffix(')'))
        .ok_or_else(|| StorageError::parse(line, format!("expected (sn,sp), got {field:?}")))?;
    let mut parts = inner.splitn(2, ',');
    let sn: f64 = parts
        .next()
        .unwrap_or("")
        .trim()
        .parse()
        .map_err(|_| StorageError::parse(line, "bad sn"))?;
    let sp: f64 = parts
        .next()
        .ok_or_else(|| StorageError::parse(line, "missing sp"))?
        .trim()
        .parse()
        .map_err(|_| StorageError::parse(line, "bad sp"))?;
    SupportPair::new(sn, sp).map_err(StorageError::from)
}

/// Split on `sep` at brace/bracket/paren/quote depth zero.
pub fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_quotes = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '{' | '[' | '(' if !in_quotes => depth += 1,
            '}' | ']' | ')' if !in_quotes => depth -= 1,
            c if c == sep && depth == 0 && !in_quotes => {
                out.push(&s[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("d", ["am", "hu", "si"]).unwrap())
    }

    #[test]
    fn quoting_roundtrip() {
        for s in [
            "plain",
            "has|pipe",
            "has \"quotes\"",
            " padded ",
            "",
            "a\\b",
        ] {
            if needs_quoting(s) {
                let q = quote(s);
                assert_eq!(unquote(&q, 1).unwrap(), s);
            }
        }
        assert!(!needs_quoting("plain"));
        assert!(needs_quoting("x|y"));
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(
            parse_scalar("42", ValueKind::Int, 1).unwrap(),
            Value::int(42)
        );
        assert_eq!(
            parse_scalar("2.5", ValueKind::Float, 1).unwrap(),
            Value::float(2.5)
        );
        assert_eq!(
            parse_scalar("wok", ValueKind::Str, 1).unwrap(),
            Value::str("wok")
        );
        let quoted = render_scalar(&Value::str("has|pipe"));
        assert_eq!(
            parse_scalar(&quoted, ValueKind::Str, 1).unwrap(),
            Value::str("has|pipe")
        );
        assert!(parse_scalar("xx", ValueKind::Int, 3).is_err());
    }

    #[test]
    fn evidence_roundtrip() {
        let d = domain();
        let m = MassFunction::<f64>::builder(Arc::clone(d.frame()))
            .add(["si"], 0.5)
            .unwrap()
            .add(["hu", "si"], 1.0 / 3.0)
            .unwrap()
            .add_omega(1.0 - 0.5 - 1.0 / 3.0)
            .build()
            .unwrap();
        let text = render_evidence(&m);
        let back = parse_evidence(&text, &d, 1).unwrap();
        assert_eq!(back, m, "{text}");
    }

    #[test]
    fn evidence_accepts_ascii_omega() {
        let d = domain();
        let m = parse_evidence("[si^0.5, ~^0.5]", &d, 1).unwrap();
        assert!((m.mass_of(&d.frame().omega()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evidence_errors() {
        let d = domain();
        assert!(parse_evidence("si^1", &d, 1).is_err()); // no brackets
        assert!(parse_evidence("[si]", &d, 1).is_err()); // no mass
        assert!(parse_evidence("[zz^1]", &d, 1).is_err()); // unknown label
        assert!(parse_evidence("[si^0.4]", &d, 1).is_err()); // not normalized
    }

    #[test]
    fn support_roundtrip() {
        let p = SupportPair::new(1.0 / 3.0, 2.0 / 3.0).unwrap();
        let text = render_support(&p);
        let back = parse_support(&text, 1).unwrap();
        assert!(back.approx_eq(&p));
        assert_eq!(back.sn(), p.sn()); // exact: shortest-roundtrip floats
        assert!(parse_support("(1)", 1).is_err());
        assert!(parse_support("1,1", 1).is_err());
        assert!(parse_support("(0.9,0.1)", 1).is_err()); // invalid pair
    }

    #[test]
    fn top_level_split_respects_nesting() {
        let parts = split_top_level("a | [x^1, {y, z}^2] | (1,2) | \"p|q\"", '|');
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[1].trim(), "[x^1, {y, z}^2]");
        assert_eq!(parts[3].trim(), "\"p|q\"");
    }
}
