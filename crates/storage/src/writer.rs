//! Serializing extended relations to the text format.

use crate::notation;
use evirel_relation::{AttrType, AttrValue, ExtendedRelation};
use std::fmt::Write as _;

/// Serialize a relation (schema header + data rows).
pub fn write_relation(rel: &ExtendedRelation) -> String {
    let schema = rel.schema();
    let mut out = String::new();
    let _ = writeln!(out, "relation {}", schema.name());
    for attr in schema.attrs() {
        let key = if attr.is_key() { "key " } else { "" };
        match attr.ty() {
            AttrType::Definite(kind) => {
                let _ = writeln!(out, "attr {}: {key}{kind}", attr.name());
            }
            AttrType::Evidential(domain) => {
                let labels: Vec<String> = domain
                    .values()
                    .map(|v| {
                        let s = v.to_string();
                        if notation::needs_quoting(&s) {
                            notation::quote(&s)
                        } else {
                            s
                        }
                    })
                    .collect();
                // The domain name is written alongside the kind so the
                // reader can reconstruct a structurally identical
                // domain even when several attributes share it.
                let _ = writeln!(
                    out,
                    "attr {}: {key}evidence[{} {}]({})",
                    attr.name(),
                    domain.kind(),
                    domain.name(),
                    labels.join(", ")
                );
            }
        }
    }
    let _ = writeln!(out, "---");
    for tuple in rel.iter() {
        let mut fields: Vec<String> = Vec::with_capacity(schema.arity() + 1);
        for value in tuple.values() {
            fields.push(match value {
                AttrValue::Definite(v) => notation::render_scalar(v),
                AttrValue::Evidential(m) => notation::render_evidence(m),
            });
        }
        fields.push(notation::render_support(&tuple.membership()));
        let _ = writeln!(out, "{}", fields.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, ValueKind};
    use std::sync::Arc;

    #[test]
    fn writes_header_and_rows() {
        let d = Arc::new(AttrDomain::categorical("spec", ["si", "hu"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg", ValueKind::Int)
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let rel = RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "wok")
                    .set_int("bldg", 600)
                    .set_evidence_with_omega("spec", [(&["si"][..], 0.5)], 0.5)
                    .membership_pair(0.5, 0.75)
            })
            .unwrap()
            .build();
        let text = write_relation(&rel);
        assert!(text.starts_with("relation RA\n"), "{text}");
        assert!(text.contains("attr rname: key string"), "{text}");
        assert!(
            text.contains("attr spec: evidence[string spec](si, hu)"),
            "{text}"
        );
        assert!(
            text.contains("wok | 600 | [si^0.5, Ω^0.5] | (0.5,0.75)"),
            "{text}"
        );
    }
}
