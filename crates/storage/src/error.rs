//! Error types for storage.

use evirel_relation::RelationError;
use std::fmt;

/// Errors produced while reading or writing stored relations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An underlying relational-model error while rebuilding.
    Relation(RelationError),
    /// A syntax error in the stored text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The header was missing or incomplete.
    BadHeader {
        /// What is missing or malformed.
        message: String,
    },
}

impl StorageError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> StorageError {
        StorageError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Relation(e) => write!(f, "relation error: {e}"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::BadHeader { message } => write!(f, "bad header: {message}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for StorageError {
    fn from(e: RelationError) -> Self {
        StorageError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = StorageError::parse(7, "unexpected token");
        assert!(e.to_string().contains("line 7"));
        let e = StorageError::BadHeader {
            message: "no relation name".into(),
        };
        assert!(e.to_string().contains("header"));
        let e: StorageError = RelationError::CwaViolation.into();
        assert!(matches!(e, StorageError::Relation(_)));
    }
}
