//! Parsing stored relations back from the text format.

use crate::error::StorageError;
use crate::notation;
use evirel_relation::{AttrDomain, AttrValue, ExtendedRelation, Schema, Tuple, Value, ValueKind};
use std::sync::Arc;

/// Parse a relation previously produced by
/// [`crate::writer::write_relation`].
///
/// # Errors
/// [`StorageError::BadHeader`] / [`StorageError::Parse`] with line
/// numbers, or relational validation errors while rebuilding.
pub fn read_relation(text: &str) -> Result<ExtendedRelation, StorageError> {
    let mut lines = text.lines().enumerate();

    // Header: relation name.
    let name = loop {
        match lines.next() {
            Some((_, line)) if line.trim().is_empty() => continue,
            Some((n, line)) => {
                let line = line.trim();
                break line
                    .strip_prefix("relation ")
                    .map(str::trim)
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        StorageError::parse(
                            n + 1,
                            format!("expected 'relation <name>', got {line:?}"),
                        )
                    })?;
            }
            None => {
                return Err(StorageError::BadHeader {
                    message: "empty input".into(),
                })
            }
        }
    };

    // Header: attribute declarations until the `---` separator.
    enum DeclTy {
        Definite(ValueKind),
        Evidential(Arc<AttrDomain>),
    }
    let mut decls: Vec<(String, bool, DeclTy)> = Vec::new();
    let mut body_start = None;
    for (n, raw) in lines.by_ref() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "---" {
            body_start = Some(n + 1);
            break;
        }
        let rest = line
            .strip_prefix("attr ")
            .ok_or_else(|| StorageError::parse(n + 1, format!("expected 'attr', got {line:?}")))?;
        let (attr_name, ty_text) = rest.split_once(':').ok_or_else(|| {
            StorageError::parse(n + 1, format!("expected 'name: type', got {rest:?}"))
        })?;
        let attr_name = attr_name.trim().to_owned();
        let mut ty_text = ty_text.trim();
        let is_key = if let Some(stripped) = ty_text.strip_prefix("key ") {
            ty_text = stripped.trim();
            true
        } else {
            false
        };
        let ty = if let Some(ev) = ty_text.strip_prefix("evidence[") {
            let (kind_text, labels_text) = ev.split_once("](").ok_or_else(|| {
                StorageError::parse(n + 1, format!("malformed evidence type {ty_text:?}"))
            })?;
            let labels_text = labels_text
                .strip_suffix(')')
                .ok_or_else(|| StorageError::parse(n + 1, "evidence type missing closing paren"))?;
            // "kind [domain-name]" — the name defaults to the attribute
            // name for backward compatibility with hand-written files.
            let mut parts = kind_text.trim().splitn(2, ' ');
            let kind = parse_kind(parts.next().unwrap_or("").trim(), n + 1)?;
            let domain_name = parts.next().map(str::trim).unwrap_or(&attr_name).to_owned();
            let mut values = Vec::new();
            for label in notation::split_top_level(labels_text, ',') {
                let label = label.trim();
                if label.is_empty() {
                    continue;
                }
                values.push(notation::parse_scalar(label, kind, n + 1)?);
            }
            DeclTy::Evidential(Arc::new(
                AttrDomain::from_values(&domain_name, values).map_err(StorageError::from)?,
            ))
        } else {
            DeclTy::Definite(parse_kind(ty_text, n + 1)?)
        };
        decls.push((attr_name, is_key, ty));
    }
    let body_line = body_start.ok_or(StorageError::BadHeader {
        message: "missing --- separator".into(),
    })?;

    // Build the schema.
    let mut builder = Schema::builder(name);
    let mut domains: Vec<Option<Arc<AttrDomain>>> = Vec::with_capacity(decls.len());
    let mut kinds: Vec<ValueKind> = Vec::with_capacity(decls.len());
    for (attr_name, is_key, ty) in decls {
        match ty {
            DeclTy::Definite(kind) => {
                builder = if is_key {
                    builder.key(attr_name, kind)
                } else {
                    builder.definite(attr_name, kind)
                };
                domains.push(None);
                kinds.push(kind);
            }
            DeclTy::Evidential(domain) => {
                // Evidential key attributes are not representable (keys
                // are definite); reject rather than silently coerce.
                if is_key {
                    return Err(StorageError::BadHeader {
                        message: format!("attribute {attr_name:?}: keys cannot be evidential"),
                    });
                }
                kinds.push(domain.kind());
                builder = builder.evidential(attr_name, Arc::clone(&domain));
                domains.push(Some(domain));
            }
        }
    }
    let schema = Arc::new(builder.build().map_err(StorageError::from)?);

    // Data rows.
    let mut rel = ExtendedRelation::new(Arc::clone(&schema));
    for (offset, raw) in text.lines().skip(body_line).enumerate() {
        let line_no = body_line + offset + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = notation::split_top_level(line, '|');
        if fields.len() != schema.arity() + 1 {
            return Err(StorageError::parse(
                line_no,
                format!(
                    "expected {} fields (+membership), got {}",
                    schema.arity(),
                    fields.len()
                ),
            ));
        }
        let mut values: Vec<AttrValue> = Vec::with_capacity(schema.arity());
        for (pos, field) in fields[..schema.arity()].iter().enumerate() {
            let field = field.trim();
            let value = match &domains[pos] {
                Some(domain) => {
                    if field.starts_with('[') {
                        AttrValue::Evidential(notation::parse_evidence(field, domain, line_no)?)
                    } else {
                        // Definite value inside an evidential attribute.
                        let v: Value = notation::parse_scalar(field, kinds[pos], line_no)?;
                        AttrValue::Definite(v)
                    }
                }
                None => AttrValue::Definite(notation::parse_scalar(field, kinds[pos], line_no)?),
            };
            values.push(value);
        }
        let membership = notation::parse_support(fields[schema.arity()].trim(), line_no)?;
        let tuple = Tuple::new(&schema, values, membership).map_err(StorageError::from)?;
        rel.insert(tuple).map_err(StorageError::from)?;
    }
    Ok(rel)
}

fn parse_kind(text: &str, line: usize) -> Result<ValueKind, StorageError> {
    match text {
        "string" | "str" => Ok(ValueKind::Str),
        "int" => Ok(ValueKind::Int),
        "float" => Ok(ValueKind::Float),
        other => Err(StorageError::parse(line, format!("unknown kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_relation;
    use evirel_relation::RelationBuilder;

    fn sample() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("spec", ["si", "hu", "ca"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg", ValueKind::Int)
                .definite("score", ValueKind::Float)
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "wok")
                    .set_int("bldg", 600)
                    .set_float("score", 4.5)
                    .set_evidence_with_omega(
                        "spec",
                        [(&["si"][..], 1.0 / 3.0), (&["hu", "ca"][..], 1.0 / 3.0)],
                        1.0 / 3.0,
                    )
                    .membership_pair(1.0 / 3.0, 0.75)
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "odd|name")
                    .set_int("bldg", -3)
                    .set_float("score", 0.125)
                    .set_evidence("spec", [(&["ca"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    #[test]
    fn roundtrip_is_exact() {
        let rel = sample();
        let text = write_relation(&rel);
        let back = read_relation(&text).unwrap();
        assert_eq!(back.schema().name(), "RA");
        assert_eq!(back.len(), rel.len());
        // Exact equality, not approx: shortest-roundtrip floats.
        for (key, t) in rel.iter_keyed() {
            let o = back.get_by_key(&key).unwrap();
            assert_eq!(o.values(), t.values());
            assert_eq!(o.membership().sn(), t.membership().sn());
            assert_eq!(o.membership().sp(), t.membership().sp());
        }
    }

    #[test]
    fn definite_value_in_evidential_column() {
        let text = "relation R\nattr k: key string\nattr spec: evidence[string](si, hu)\n---\nwok | si | (1,1)\n";
        let rel = read_relation(text).unwrap();
        let t = rel.get_by_key(&[Value::str("wok")]).unwrap();
        assert_eq!(t.value(1).as_definite(), Some(&Value::str("si")));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "relation R\nattr k: key string\n---\n\n# comment\na | (1,1)\n";
        let rel = read_relation(text).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        // Bad arity.
        let text = "relation R\nattr k: key string\n---\na | b | (1,1)\n";
        let err = read_relation(text).unwrap_err();
        assert!(matches!(err, StorageError::Parse { line: 4, .. }), "{err}");
        // Missing separator.
        let text = "relation R\nattr k: key string\n";
        assert!(matches!(
            read_relation(text),
            Err(StorageError::BadHeader { .. })
        ));
        // Bad membership.
        let text = "relation R\nattr k: key string\n---\na | (2,3)\n";
        assert!(read_relation(text).is_err());
        // Unknown kind.
        let text = "relation R\nattr k: key uuid\n---\n";
        assert!(read_relation(text).is_err());
        // Evidential key rejected.
        let text = "relation R\nattr k: key evidence[string](a)\n---\n";
        assert!(matches!(
            read_relation(text),
            Err(StorageError::BadHeader { .. })
        ));
        // Empty input.
        assert!(matches!(
            read_relation(""),
            Err(StorageError::BadHeader { .. })
        ));
    }

    #[test]
    fn cwa_enforced_on_read() {
        let text = "relation R\nattr k: key string\n---\na | (0,1)\n";
        assert!(matches!(
            read_relation(text),
            Err(StorageError::Relation(
                evirel_relation::RelationError::CwaViolation
            ))
        ));
    }

    #[test]
    fn int_evidence_domains() {
        let text = "relation R\nattr k: key string\nattr n: evidence[int](1, 2, 3)\n---\na | [1^0.5, {2, 3}^0.5] | (1,1)\n";
        let rel = read_relation(text).unwrap();
        let t = rel.get_by_key(&[Value::str("a")]).unwrap();
        let m = t.value(1).as_evidential().unwrap();
        assert_eq!(m.focal_count(), 2);
    }
}
