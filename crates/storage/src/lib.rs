//! # evirel-storage — persistence for extended relations
//!
//! A zero-dependency text format that round-trips extended relations
//! in the paper's own notation. A stored relation looks like:
//!
//! ```text
//! relation RA
//! attr rname: key str
//! attr street: str
//! attr bldg-no: int
//! attr speciality: evidence(am, hu, si, ca)
//! ---
//! garden | univ.ave. | 2011 | [si^0.5, hu^0.25, Ω^0.25] | (1,1)
//! wok | wash.ave. | 600 | [si^1] | (0.5,0.75)
//! ```
//!
//! Header lines declare the schema (key-ness, kinds, evidential
//! domains); data rows hold one `|`-separated value per attribute plus
//! the membership pair. Evidence sets use the superscript syntax of
//! the paper (`Ω` or the ASCII fallback `~` for the full set;
//! singleton braces optional); masses are written with Rust's shortest
//! round-trip float formatting so that read(write(r)) reproduces `r`
//! exactly.
//!
//! Strings containing `|`, braces, carets, or surrounding whitespace
//! are double-quoted with backslash escapes.

pub mod error;
pub mod notation;
pub mod reader;
pub mod writer;

pub use error::StorageError;
pub use reader::read_relation;
pub use writer::write_relation;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
