//! Streaming replication: the `FOLLOW` sender (primary side) and the
//! apply loop (follower side).
//!
//! ## Stream semantics
//!
//! A follower says `FOLLOW <g>` — "I have durably applied through
//! generation `g`". The sender answers with a normal `OK` frame, then
//! streams [`StreamFrame`]s one-way:
//!
//! * **Tail mode** (the follower is inside the primary's retained
//!   record window): every journal record after `g`, in order, each
//!   `REC BIND` preceded by the `SEG` chunks of its segment file.
//!   Generations are strictly increasing — the serve layer journals
//!   exactly one record per published generation.
//! * **Resync mode** (the follower is too far behind): a `SNAP`
//!   frame carrying the full durable entry set, `SEG` payloads for
//!   entries newer than `g` (older entries are byte-identical on both
//!   sides — the follower replayed the same single-writer history),
//!   and a `SNAPEND` commit point. The follower installs the snapshot
//!   atomically via a manifest swap.
//! * **Heartbeats**: `GEN <committed>` whenever the stream idles, so
//!   a follower can distinguish "no writes" from "dead link".
//!
//! ## The durability rule, replicated
//!
//! The follower applies a record with exactly the primary's
//! discipline: journal + fsync first
//! ([`DurableCatalog::apply_replicated`]), publish second
//! ([`SharedCatalog::update_stamped`], at the generation the
//! *primary* stamped). A follower therefore never serves a generation
//! it could lose — the invariant that makes standby reads safe — and
//! a follower killed between the two steps recovers the record from
//! its own journal at reboot.
//!
//! ## Resume
//!
//! Reconnection always resumes from the follower's **current applied
//! generation** (re-read from its durable catalog at every attempt),
//! never from the generation the session originally started at: a
//! stream cut mid-frame loses at most un-acked work, and the next
//! `FOLLOW` re-requests exactly the suffix after what survived. The
//! sender's side of the same contract is [`DurableCatalog::
//! stream_plan`], which never re-sends a record at or below the
//! requested cursor.
//!
//! Everything here is written against generic `Read`/`Write` streams;
//! the TCP glue lives in [`crate::server`], and the fault-injection
//! suites drive these functions over in-memory buffers cut at
//! arbitrary byte boundaries.

use crate::protocol::{
    read_frame_with, write_frame, Request, Response, StreamFrame, SEG_CHUNK_BYTES,
};
use evirel_query::{DurableCatalog, SharedCatalog, StreamPlan};
use evirel_store::{JournalRecord, ManifestEntry};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn to_io(e: evirel_query::QueryError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// --------------------------------------------------------- sender

/// What a replication sender needs from the server: the published
/// catalog (for publish wakeups), the durable history, a stop flag,
/// and counters.
pub struct SenderCtx<'a> {
    /// The published catalog — [`SharedCatalog::wait_newer`] parks
    /// the sender between writes.
    pub catalog: &'a SharedCatalog,
    /// The durable history records are planned from.
    pub durable: &'a Mutex<DurableCatalog>,
    /// Server shutdown flag; the sender exits cleanly when set.
    pub stop: &'a AtomicBool,
    /// Idle heartbeat cadence (the server's poll interval).
    pub poll: Duration,
    /// Incremented per record (or snapshot) shipped.
    pub records_sent: &'a AtomicU64,
}

/// Serve one `FOLLOW <from>` subscription over `w`: handshake frame,
/// then stream until the peer drops, the server stops, or an error.
///
/// # Errors
/// I/O failures writing frames or reading segment files (a segment
/// GC'd mid-ship surfaces here; the follower reconnects and the new
/// plan no longer references it).
pub fn serve_follow(w: &mut impl Write, ctx: &SenderCtx<'_>, from: u64) -> io::Result<()> {
    let (dir, committed) = {
        let durable = lock(ctx.durable);
        (durable.dir().to_path_buf(), durable.committed_generation())
    };
    if from > committed {
        // The subscriber claims a future we never produced — a
        // diverged history (or the wrong primary). Refuse loudly
        // rather than silently idling forever.
        let err = Response::error(
            "diverged",
            format!("follower applied generation {from} is ahead of this primary's {committed}"),
        );
        write_frame(w, &err.encode())?;
        return Ok(());
    }
    let mode = match lock(ctx.durable).stream_plan(from) {
        StreamPlan::Tail(_) => "tail",
        StreamPlan::Resync { .. } => "resync",
    };
    let hello = Response::Ok {
        body: format!("following from={from} committed={committed} mode={mode}"),
    };
    write_frame(w, &hello.encode())?;

    let mut cursor = from;
    while !ctx.stop.load(Ordering::SeqCst) {
        let plan = lock(ctx.durable).stream_plan(cursor);
        match plan {
            StreamPlan::Tail(records) if records.is_empty() => {
                // Nothing to send: park on the publish signal, and
                // heartbeat when a poll interval passes without one.
                if ctx.catalog.wait_newer(cursor, ctx.poll).is_none() {
                    let committed = lock(ctx.durable).committed_generation();
                    write_frame(w, &StreamFrame::Gen { committed }.encode())?;
                }
            }
            StreamPlan::Tail(records) => {
                for record in records {
                    if ctx.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if let JournalRecord::Bind { file, .. } = &record {
                        send_file(w, &dir, file)?;
                    }
                    let generation = record.generation();
                    write_frame(w, &StreamFrame::Rec(record).encode())?;
                    ctx.records_sent.fetch_add(1, Ordering::Relaxed);
                    cursor = generation;
                }
            }
            StreamPlan::Resync {
                generation,
                entries,
            } => {
                write_frame(
                    w,
                    &StreamFrame::Snap {
                        generation,
                        entries: entries.clone(),
                    }
                    .encode(),
                )?;
                for entry in &entries {
                    if entry.generation > cursor {
                        send_file(w, &dir, &entry.file)?;
                    }
                }
                write_frame(w, &StreamFrame::SnapEnd { generation }.encode())?;
                ctx.records_sent.fetch_add(1, Ordering::Relaxed);
                cursor = generation;
            }
        }
    }
    Ok(())
}

/// Ship one segment file as ordered `SEG` chunks.
fn send_file(w: &mut impl Write, dir: &Path, file: &str) -> io::Result<()> {
    let bytes = std::fs::read(dir.join(file))?;
    let total_len = bytes.len() as u64;
    let mut offset = 0u64;
    let mut chunks = bytes.chunks(SEG_CHUNK_BYTES).peekable();
    // Degenerate empty file: still announce it so the receiver
    // creates (and renames) it. Real segments are never empty.
    if chunks.peek().is_none() {
        let frame = StreamFrame::Seg {
            file: file.to_owned(),
            offset: 0,
            total_len,
            chunk: Vec::new(),
        };
        return write_frame(w, &frame.encode());
    }
    for chunk in chunks {
        let frame = StreamFrame::Seg {
            file: file.to_owned(),
            offset,
            total_len,
            chunk: chunk.to_vec(),
        };
        write_frame(w, &frame.encode())?;
        offset += chunk.len() as u64;
    }
    Ok(())
}

// ---------------------------------------------------------- apply

/// What the follower's apply loop needs: its own durable catalog and
/// published catalog, a stop predicate (shutdown **or** promotion),
/// and counters.
pub struct ApplyCtx<'a> {
    /// The follower's published catalog; every applied record
    /// publishes at the primary's generation.
    pub catalog: &'a SharedCatalog,
    /// The follower's durable catalog; records journal here (fsync)
    /// before they publish.
    pub durable: &'a Mutex<DurableCatalog>,
    /// Checked between frames (and while idle); `true` ends the loop.
    pub stop: &'a dyn Fn() -> bool,
    /// Incremented per record applied.
    pub records_applied: &'a AtomicU64,
    /// Incremented per full-state snapshot installed.
    pub resyncs: &'a AtomicU64,
    /// Highest generation the primary has announced (records,
    /// snapshots, or `GEN` heartbeats) — the minuend of the
    /// replication-lag gauge (`primary - applied`).
    pub primary_generation: &'a AtomicU64,
    /// Unix milliseconds of the last frame received from the primary;
    /// 0 until the first frame. The heartbeat-age gauge subtracts
    /// this from now.
    pub heartbeat_unix_ms: &'a AtomicU64,
}

/// Apply stream frames from `r` until the stream ends, `stop` turns
/// true, or an error. Ordinary returns (`Ok`) mean "reconnect if you
/// still want to follow"; errors mean the same but are worth logging.
///
/// # Errors
/// I/O and protocol failures; a failed verification or out-of-order
/// record surfaces as `InvalidData`. The durable state is never left
/// half-applied (each record is atomic; a snapshot is a manifest
/// swap).
pub fn apply_stream(r: &mut impl Read, ctx: &ApplyCtx<'_>) -> io::Result<()> {
    let dir = lock(ctx.durable).dir().to_path_buf();
    let mut pending_snap: Option<(u64, Vec<ManifestEntry>)> = None;
    loop {
        if (ctx.stop)() {
            return Ok(());
        }
        let payload = match read_frame_with(r, || !(ctx.stop)()) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // peer closed between frames
            Err(e) if is_timeout(&e) => continue, // idle poll tick
            Err(e) => return Err(e),
        };
        let frame = StreamFrame::parse(&payload)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        // Every frame is proof of life — heartbeats included.
        ctx.heartbeat_unix_ms.store(unix_ms(), Ordering::Relaxed);
        match frame {
            StreamFrame::Seg {
                file,
                offset,
                total_len,
                chunk,
            } => {
                evirel_store::stage_chunk(&dir, &file, offset, &chunk, total_len)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            }
            StreamFrame::Rec(record) => apply_record(ctx, &dir, &record)?,
            StreamFrame::Snap {
                generation,
                entries,
            } => pending_snap = Some((generation, entries)),
            StreamFrame::SnapEnd { generation } => {
                let Some((announced, entries)) = pending_snap.take() else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "SNAPEND without a preceding SNAP",
                    ));
                };
                if announced != generation {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("SNAPEND generation {generation} != SNAP {announced}"),
                    ));
                }
                install_snapshot(ctx, &dir, generation, entries)?;
                ctx.resyncs.fetch_add(1, Ordering::Relaxed);
                ctx.primary_generation
                    .fetch_max(generation, Ordering::Relaxed);
            }
            // Heartbeat: liveness, plus the primary's committed
            // generation — what the lag gauge measures against.
            StreamFrame::Gen { committed } => {
                ctx.primary_generation
                    .fetch_max(committed, Ordering::Relaxed);
            }
        }
    }
}

/// Apply one journal record: durable first (journal + fsync), then
/// publish at the primary's generation.
fn apply_record(ctx: &ApplyCtx<'_>, dir: &Path, record: &JournalRecord) -> io::Result<()> {
    lock(ctx.durable).apply_replicated(record).map_err(to_io)?;
    let generation = record.generation();
    match record {
        JournalRecord::Bind { name, file, .. } => ctx
            .catalog
            .update_stamped(generation, |catalog| {
                catalog.attach_stored(name.clone(), dir.join(file))
            })
            .map_err(to_io)?,
        JournalRecord::Drop { name, .. } => ctx
            .catalog
            .update_stamped(generation, |catalog| {
                catalog.deregister(name);
                Ok(())
            })
            .map_err(to_io)?,
    }
    ctx.records_applied.fetch_add(1, Ordering::Relaxed);
    ctx.primary_generation
        .fetch_max(generation, Ordering::Relaxed);
    Ok(())
}

/// Wall-clock Unix milliseconds — heartbeat timestamps only, never
/// ordering.
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Install a full-state snapshot: durable manifest swap first, then
/// one atomic catalog publish that drops vanished bindings and
/// attaches the new set.
fn install_snapshot(
    ctx: &ApplyCtx<'_>,
    dir: &Path,
    generation: u64,
    entries: Vec<ManifestEntry>,
) -> io::Result<()> {
    let stale: Vec<String> = {
        let mut durable = lock(ctx.durable);
        let stale = durable
            .entries()
            .map(|e| e.name.clone())
            .filter(|n| !entries.iter().any(|e| &e.name == n))
            .collect();
        durable
            .install_snapshot(generation, entries.clone())
            .map_err(to_io)?;
        stale
    };
    ctx.catalog
        .update_stamped(generation, |catalog| {
            for name in &stale {
                catalog.deregister(name);
            }
            for entry in &entries {
                catalog.attach_stored(entry.name.clone(), dir.join(&entry.file))?;
            }
            Ok(())
        })
        .map_err(to_io)?;
    Ok(())
}

/// Self-heal a catalog/durable generation skew (a crash — or an
/// error — between "journal applied" and "snapshot published" leaves
/// the durable state ahead of the published one). Republishes the
/// whole durable binding set at the committed generation; a no-op
/// when the generations already agree.
pub fn reconcile(ctx: &ApplyCtx<'_>) {
    let (committed, entries, dir) = {
        let durable = lock(ctx.durable);
        (
            durable.committed_generation(),
            durable.entries().cloned().collect::<Vec<_>>(),
            durable.dir().to_path_buf(),
        )
    };
    if ctx.catalog.generation() >= committed {
        return;
    }
    let durable_names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    let _ = ctx.catalog.update_stamped(committed, |catalog| {
        // Drop bindings the durable state no longer has — but only
        // names that *could* be durable (seeded in-memory bindings
        // are not replicated and must survive).
        let stale: Vec<String> = catalog
            .names()
            .iter()
            .map(|s| (*s).to_owned())
            .filter(|n| catalog.get_stored(n).is_some() && !durable_names.contains(n))
            .collect();
        for name in stale {
            catalog.deregister(&name);
        }
        for entry in &entries {
            catalog.attach_stored(entry.name.clone(), dir.join(&entry.file))?;
        }
        Ok(())
    });
}

// ------------------------------------------------------- follower

/// Why [`follower_loop`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerExit {
    /// The stop predicate turned true (shutdown or promotion).
    Stopped,
    /// The reconnect budget ran out (`--promote-on-disconnect`).
    RetriesExhausted,
}

/// Reconnection policy for a follower.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive connection failures tolerated before giving up
    /// (`None`: retry forever).
    pub retry_budget: Option<u32>,
    /// Socket read poll interval (also bounds stop-flag latency).
    pub poll: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            retry_budget: None,
            poll: Duration::from_millis(100),
        }
    }
}

/// The follower's outer loop: connect to `primary`, `FOLLOW` from the
/// **current** applied generation, apply the stream, reconnect with
/// exponential backoff on any failure. Returns when the stop
/// predicate turns true or the retry budget is exhausted.
pub fn follower_loop(
    primary: &str,
    ctx: &ApplyCtx<'_>,
    connected: &AtomicBool,
    reconnects: &AtomicU64,
    policy: &RetryPolicy,
) -> FollowerExit {
    let mut failures: u32 = 0;
    let mut backoff = policy.initial_backoff;
    let mut first = true;
    loop {
        if (ctx.stop)() {
            return FollowerExit::Stopped;
        }
        if !first {
            reconnects.fetch_add(1, Ordering::Relaxed);
        }
        first = false;
        // A crash (or apply error) may have left the durable state
        // ahead of the published catalog — republish before resuming
        // so reads catch up to everything that is already safe.
        reconcile(ctx);
        // Resume from what is durably applied *now* — never from
        // where this loop started: an unclean primary death tears the
        // stream after records were applied, and a reborn primary
        // offered the stale session-start cursor would re-send them
        // (rejected by apply_replicated, so the follower would loop
        // on reconnect forever instead of converging).
        let cursor = lock(ctx.durable).committed_generation();
        match connect_and_follow(primary, cursor, ctx, connected, policy.poll) {
            Ok(handshook) => {
                connected.store(false, Ordering::SeqCst);
                if (ctx.stop)() {
                    return FollowerExit::Stopped;
                }
                if handshook {
                    // The link worked and then dropped: reset the
                    // consecutive-failure count, restart backoff.
                    failures = 1;
                    backoff = policy.initial_backoff;
                } else {
                    failures = failures.saturating_add(1);
                }
            }
            Err(_) => {
                connected.store(false, Ordering::SeqCst);
                failures = failures.saturating_add(1);
            }
        }
        if policy.retry_budget.is_some_and(|budget| failures > budget) {
            return FollowerExit::RetriesExhausted;
        }
        sleep_unless_stopped(backoff, ctx.stop);
        backoff = (backoff * 2).min(policy.max_backoff);
    }
}

/// One connection attempt: dial, handshake, apply until the stream
/// ends. The bool reports whether the handshake succeeded (used to
/// reset the failure counter).
fn connect_and_follow(
    primary: &str,
    from: u64,
    ctx: &ApplyCtx<'_>,
    connected: &AtomicBool,
    poll: Duration,
) -> io::Result<bool> {
    let mut stream = TcpStream::connect(primary)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll));
    write_frame(&mut stream, &Request::Follow { from }.encode())?;
    let hello = loop {
        match read_frame_with(&mut stream, || !(ctx.stop)()) {
            Ok(Some(p)) => break p,
            Ok(None) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed before the FOLLOW handshake",
                ))
            }
            Err(e) if is_timeout(&e) => {
                if (ctx.stop)() {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    };
    match Response::parse(&hello) {
        Ok(Response::Ok { .. }) => {}
        Ok(Response::Err { kind, message }) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("primary refused FOLLOW ({kind}): {message}"),
            ))
        }
        Ok(Response::Busy { message }) => {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("primary busy: {message}"),
            ))
        }
        Err(m) => return Err(io::Error::new(io::ErrorKind::InvalidData, m)),
    }
    connected.store(true, Ordering::SeqCst);
    apply_stream(&mut stream, ctx).map(|()| true)
}

/// Sleep `total`, in slices, bailing early when `stop` turns true.
fn sleep_unless_stopped(total: Duration, stop: &dyn Fn() -> bool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while !stop() && !left.is_zero() {
        let nap = left.min(slice);
        std::thread::sleep(nap);
        left = left.saturating_sub(nap);
    }
}
