//! # evirel-serve — a concurrent query service over extended relations
//!
//! The paper's integration operators assume a *database service*
//! context: many clients querying and merging evidential relations at
//! once. This crate is that front-end — a registry-free (std-only)
//! TCP server wrapping the EQL engine of [`evirel_query`]:
//!
//! * **Epoch-snapshot catalog** — every query pins one immutable
//!   catalog generation ([`evirel_query::SharedCatalog`]); `MERGE`
//!   writes publish the next generation atomically (RCU-style swap),
//!   so readers never observe a half-updated binding set.
//! * **Prepared-plan cache** — plans are keyed by (normalized EQL,
//!   generation) in a shared [`evirel_query::PlanCache`]; repeated
//!   service traffic skips lowering/validation/rewrite, and a
//!   generation bump invalidates stale plans by construction.
//! * **Admission control** — a bounded worker pool serves sessions;
//!   connections beyond the pending-queue bound get a typed `BUSY`
//!   frame instead of an unbounded thread pile. Each worker session
//!   runs under a [`evirel_query::SessionBudget`] carving
//!   `EVIREL_THREADS` / `EVIREL_BUFFER_BYTES` across the pool.
//! * **Length-prefixed wire protocol** — see [`protocol`]; small
//!   enough to re-implement from the doc comment (the
//!   `evirel-bombard` load driver in `evirel-workload` does exactly
//!   that, keeping the dependency graph acyclic).
//! * **Streaming replication** — a durable server streams its
//!   journal to standbys over the `FOLLOW` verb ([`replicate`]);
//!   followers apply with the primary's fsync-before-publish
//!   discipline, serve reads at the applied generation, reject
//!   writes with `ERR readonly`, and can be promoted (`PROMOTE`, or
//!   `--promote-on-disconnect`) when the primary dies.
//! * **Observability** — every server owns an
//!   [`evirel_obs::MetricsRegistry`]: per-verb request counters and
//!   latency histograms, queue-depth/worker gauges, byte counters,
//!   plus pull-collectors mirroring the plan cache, buffer pool,
//!   durable catalog, and replication state. The `METRICS` verb
//!   scrapes it as Prometheus text; `STATS` renders the same
//!   registry human-readably, so the two can never disagree. Queries
//!   at or above `EVIREL_SLOW_QUERY_MS` emit structured `slow_query`
//!   events with per-stage span timings.
//!
//! ```no_run
//! use evirel_query::Catalog;
//! use evirel_serve::{start, ServeConfig};
//!
//! let mut catalog = Catalog::new();
//! catalog.register("ra", evirel_workload::restaurant_db_a().restaurants);
//! let handle = start(catalog, ServeConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! // ... clients connect, QUERY/MERGE/..., one sends SHUTDOWN ...
//! let stats = handle.join();
//! assert_eq!(stats.panics, 0);
//! ```

pub mod protocol;
pub mod replicate;
pub mod server;

pub use protocol::{
    read_frame, read_frame_with, write_frame, Request, Response, StreamFrame, MAX_FRAME_BYTES,
    SEG_CHUNK_BYTES,
};
pub use replicate::{
    apply_stream, follower_loop, serve_follow, ApplyCtx, FollowerExit, RetryPolicy, SenderCtx,
};
pub use server::{
    start, start_with_durability, FollowConfig, ReplicationSnapshot, ServeConfig, ServerHandle,
    ServerStats, StatsSnapshot,
};
