//! `evirel-serve` — the query-service daemon.
//!
//! ```text
//! evirel-serve [--addr HOST:PORT] [--workers N] [--max-pending N]
//!              [--allow-remote-shutdown] [--data-dir DIR]
//!              [--follow HOST:PORT] [--promote-on-disconnect]
//!              [--retry-budget N]
//!              [--seed-workload TUPLES] [file.evr | file.evb ...]
//! ```
//!
//! Relations given on the command line load under their file
//! basename (`.evb` segments attach as stored relations streaming
//! through the buffer pool). `--seed-workload N` additionally
//! registers the paper's restaurant databases (`ra`, `rb`) and a
//! generated union-compatible pair (`ga`, `gb`) of N tuples each —
//! the dataset the `evirel-bombard` load driver targets.
//!
//! With `--data-dir DIR` the server runs **durably**: on boot it
//! recovers the directory's committed catalog (manifest + write-ahead
//! journal replay, checksum-verified segments) and publishes it at
//! the recovered generation; every `MERGE` is written to a
//! checksummed segment and journaled + fsync'd before its generation
//! becomes visible; a clean shutdown checkpoints (manifest swap +
//! journal truncation + segment GC). Command-line relations and
//! `--seed-workload` overlay the recovered state in memory only —
//! recovered bindings win name collisions — so re-running with the
//! same flags reproduces the same catalog without re-journaling the
//! seeds on every boot.
//!
//! With `--follow HOST:PORT` (requires `--data-dir`) the server runs
//! as a **replication standby**: it subscribes to the primary's
//! durable generation stream with the `FOLLOW` verb, journals +
//! fsyncs every replicated record before publishing it, serves
//! `QUERY`/`EXPLAIN`/`STATS` at the applied generation, and rejects
//! `MERGE` with `ERR readonly`. Promotion — the `PROMOTE` verb from
//! loopback, or automatically after `--retry-budget` failed
//! reconnects when `--promote-on-disconnect` is given — stops
//! following and makes the server writable.
//!
//! The process budgets come from the environment: `EVIREL_THREADS`
//! (total worker threads for query execution, carved across the
//! session pool) and `EVIREL_BUFFER_BYTES` (buffer-pool/spill
//! budget, likewise carved). `EVIREL_SLOW_QUERY_MS` sets the
//! slow-query threshold: queries at or above it emit one structured
//! `slow_query` event (normalized EQL, per-stage span timings,
//! est-vs-actual rows) to stderr and the in-process event ring —
//! default 500, `0` logs every query, junk values warn once and fall
//! back. Every counter the server keeps is scrapable over the
//! `METRICS` verb in Prometheus text form; `STATS` renders the same
//! registry human-readably. The server prints one line —
//! `evirel-serve listening on <addr>` — to stdout once the socket is
//! bound, then runs until a client sends `SHUTDOWN` — which only
//! loopback clients may do unless `--allow-remote-shutdown` is given
//! (anyone who can connect to a public `--addr` could otherwise stop
//! the server).

use evirel_query::{Catalog, DurableCatalog};
use evirel_serve::{start_with_durability, FollowConfig, ServeConfig};
use std::io::Write;

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:4643".into(),
        ..ServeConfig::default()
    };
    let mut seed_tuples: Option<usize> = None;
    let mut data_dir: Option<String> = None;
    let mut follow: Option<FollowConfig> = None;
    let mut promote_on_disconnect = false;
    let mut retry_budget: Option<u32> = None;
    let mut files = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: evirel-serve [--addr HOST:PORT] [--workers N] \
                     [--max-pending N] [--allow-remote-shutdown] \
                     [--data-dir DIR] [--follow HOST:PORT] \
                     [--promote-on-disconnect] [--retry-budget N] \
                     [--seed-workload TUPLES] [file.evr|file.evb ...]"
                );
                return;
            }
            "--addr" => config.addr = required(&mut args, "--addr"),
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--workers" => config.workers = parse_num(&required(&mut args, "--workers")),
            "--max-pending" => {
                config.max_pending = parse_num(&required(&mut args, "--max-pending"));
            }
            "--seed-workload" => {
                seed_tuples = Some(parse_num(&required(&mut args, "--seed-workload")));
            }
            "--data-dir" => data_dir = Some(required(&mut args, "--data-dir")),
            "--follow" => follow = Some(FollowConfig::new(required(&mut args, "--follow"))),
            "--promote-on-disconnect" => promote_on_disconnect = true,
            "--retry-budget" => {
                let n = parse_num(&required(&mut args, "--retry-budget"));
                retry_budget = Some(u32::try_from(n).unwrap_or(u32::MAX));
            }
            path => files.push(path.to_owned()),
        }
    }
    match &mut follow {
        Some(f) => {
            f.promote_on_disconnect = promote_on_disconnect;
            if let Some(budget) = retry_budget {
                f.retry_budget = budget;
            }
            if data_dir.is_none() {
                eprintln!("--follow requires --data-dir (replicated records are journaled)");
                std::process::exit(2);
            }
        }
        None if promote_on_disconnect || retry_budget.is_some() => {
            eprintln!("--promote-on-disconnect / --retry-budget only apply with --follow");
            std::process::exit(2);
        }
        None => {}
    }
    config.follow = follow;

    let mut catalog = Catalog::new();
    for path in &files {
        if let Err(e) = load(&mut catalog, path) {
            eprintln!("error loading {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(tuples) = seed_tuples {
        if let Err(e) = seed(&mut catalog, tuples) {
            eprintln!("error seeding workload: {e}");
            std::process::exit(1);
        }
    }

    // Recover the data directory last and overlay its committed
    // bindings on top of the seeds/files: the durable state is the
    // authority on name collisions.
    let durable = match data_dir {
        None => None,
        Some(dir) => match DurableCatalog::open(&dir) {
            Ok((durable, recovered)) => {
                let names: Vec<String> =
                    recovered.names().iter().map(|s| (*s).to_owned()).collect();
                for name in &names {
                    if let Some(stored) = recovered.get_stored(name) {
                        catalog.attach(name.clone(), stored);
                    }
                }
                eprintln!(
                    "evirel-serve: recovered {dir} at generation {} ({} binding(s){}{})",
                    durable.recovered_generation(),
                    names.len(),
                    if names.is_empty() { "" } else { ": " },
                    names.join(", "),
                );
                Some(durable)
            }
            Err(e) => {
                eprintln!("error recovering {dir}: {e}");
                std::process::exit(1);
            }
        },
    };

    let handle = match start_with_durability(catalog, config, durable) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("evirel-serve listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    let stats = handle.join();
    eprintln!(
        "evirel-serve: shut down cleanly — {} session(s), {} request(s), \
         {} error(s), {} busy rejection(s), {} merge(s), {} panic(s)",
        stats.sessions,
        stats.requests,
        stats.errors,
        stats.rejected_busy,
        stats.merges,
        stats.panics,
    );
    if stats.panics > 0 {
        std::process::exit(1);
    }
}

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn parse_num(raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("expected a positive integer, got {raw:?}");
            std::process::exit(2);
        }
    }
}

fn load(catalog: &mut Catalog, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    if path.ends_with(".evb") {
        catalog.attach_stored(name, path)?;
        return Ok(());
    }
    let text = std::fs::read_to_string(path)?;
    catalog.register(name, evirel_storage::read_relation(&text)?);
    Ok(())
}

fn seed(catalog: &mut Catalog, tuples: usize) -> Result<(), Box<dyn std::error::Error>> {
    catalog.register("ra", evirel_workload::restaurant_db_a().restaurants);
    catalog.register("rb", evirel_workload::restaurant_db_b().restaurants);
    let pair = evirel_workload::PairConfig {
        base: evirel_workload::GeneratorConfig {
            tuples,
            ..evirel_workload::GeneratorConfig::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.25,
    };
    let (ga, gb) = evirel_workload::generator::generate_pair(&pair)?;
    catalog.register("ga", ga);
    catalog.register("gb", gb);
    Ok(())
}
