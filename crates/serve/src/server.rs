//! The thread-pool TCP server: bounded admission, per-session
//! budgets, epoch-snapshot reads, serialized generation-bumping
//! writes.
//!
//! ## Shape
//!
//! One **accept thread** owns the listener. Each accepted connection
//! goes into a bounded pending queue; when the queue is full the
//! connection gets a single [`Response::Busy`] frame and is closed —
//! overload is a typed, observable outcome, never an unbounded pile
//! of threads. **N worker threads** pop connections and serve each
//! one to completion (a connection is a session: many requests,
//! serial). Every worker session holds a [`Session`] over the one
//! shared [`SharedCatalog`] + [`PlanCache`], with a
//! [`SessionBudget`] carving `EVIREL_THREADS` / `EVIREL_BUFFER_BYTES`
//! evenly across the workers — W concurrent sessions cannot multiply
//! the process budgets by W.
//!
//! ## Concurrency contract
//!
//! Reads (`QUERY`/`EXPLAIN`) pin one catalog generation for their
//! whole execution and never block writers. Writes (`MERGE`) execute
//! their query against a pinned snapshot, then publish the result as
//! the next generation through [`SharedCatalog::update`]; writers
//! serialize on the swap, and a reader either sees the whole new
//! generation or none of it. Worker panics are caught per-request
//! ([`std::panic::catch_unwind`]) and surfaced as `ERR panic` frames,
//! so one poisoned request cannot take down a worker or the process.

use crate::protocol::{read_frame_with, write_frame, Request, Response};
use crate::replicate::{
    follower_loop, serve_follow, ApplyCtx, FollowerExit, RetryPolicy, SenderCtx,
};
use evirel_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use evirel_query::{
    register_query_collectors, Catalog, DurableCatalog, DurableMetrics, PlanCache, Session,
    SessionBudget, SharedCatalog,
};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Standby configuration: where the primary is and what to do when
/// it goes away.
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// The primary's address (`host:port`) to `FOLLOW`.
    pub primary: String,
    /// Promote automatically (drop read-only mode) once
    /// `retry_budget` consecutive reconnect attempts fail. Off by
    /// default: unattended promotion risks split-brain when the
    /// outage is a network partition rather than a dead primary.
    pub promote_on_disconnect: bool,
    /// Consecutive connection failures tolerated before
    /// `promote_on_disconnect` fires (ignored when it is off — the
    /// follower then retries forever).
    pub retry_budget: u32,
    /// First-reconnect backoff; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Reconnect backoff ceiling.
    pub max_backoff: Duration,
}

impl FollowConfig {
    /// A standby of `primary` with default retry policy and manual
    /// promotion.
    pub fn new(primary: impl Into<String>) -> FollowConfig {
        FollowConfig {
            primary: primary.into(),
            promote_on_disconnect: false,
            retry_budget: 5,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the number of sessions served concurrently.
    pub workers: usize,
    /// Pending-connection queue bound; connections beyond it are
    /// rejected with `BUSY` (admission control).
    pub max_pending: usize,
    /// Poll interval for idle connections: how often a worker blocked
    /// on a quiet session re-checks the shutdown flag. Not a
    /// disconnect timeout — idle sessions stay connected.
    pub poll_interval: Duration,
    /// Honor the `SHUTDOWN` verb (and `PROMOTE`) from non-loopback
    /// peers. Off by default: when `addr` binds a public interface,
    /// any client that can connect could otherwise terminate — or
    /// promote — the server. Loopback clients (and
    /// [`ServerHandle::shutdown`]) always work.
    pub allow_remote_shutdown: bool,
    /// Run as a replication standby of another server. Requires
    /// durability (a data directory): the follower journals every
    /// replicated record before publishing it, exactly like a
    /// primary journals its merges. While following, the server is
    /// read-only (`MERGE` → `ERR readonly`) until promoted.
    pub follow: Option<FollowConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_pending: 1024,
            poll_interval: Duration::from_millis(100),
            allow_remote_shutdown: false,
            follow: None,
        }
    }
}

/// Monotonic server counters. Each field is a handle onto a series in
/// the server's [`MetricsRegistry`] — `STATS`, `METRICS`, and
/// [`ServerHandle::stats`] all read the same underlying atomics, so
/// the numbers cannot disagree across surfaces.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections admitted to the pending queue.
    pub accepted: Counter,
    /// Connections rejected with `BUSY` at the admission gate.
    pub rejected_busy: Counter,
    /// Sessions served to completion by workers.
    pub sessions: Counter,
    /// Requests handled (any verb, any outcome).
    pub requests: Counter,
    /// `ERR` responses sent (typed failures, including protocol).
    pub errors: Counter,
    /// Worker panics caught and converted to `ERR panic`.
    pub panics: Counter,
    /// Successful `MERGE` writes (generation bumps).
    pub merges: Counter,
}

/// A plain-data copy of [`ServerStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted to the pending queue.
    pub accepted: u64,
    /// Connections rejected with `BUSY`.
    pub rejected_busy: u64,
    /// Sessions served to completion.
    pub sessions: u64,
    /// Requests handled.
    pub requests: u64,
    /// `ERR` responses sent.
    pub errors: u64,
    /// Worker panics caught.
    pub panics: u64,
    /// Successful `MERGE` writes.
    pub merges: u64,
}

impl ServerStats {
    fn new(registry: &MetricsRegistry) -> ServerStats {
        ServerStats {
            accepted: registry.counter(
                "evirel_serve_connections_accepted_total",
                "Connections admitted to the pending queue",
                &[],
            ),
            rejected_busy: registry.counter(
                "evirel_serve_busy_rejected_total",
                "Connections rejected with BUSY at the admission gate",
                &[],
            ),
            sessions: registry.counter(
                "evirel_serve_sessions_total",
                "Sessions served to completion by workers",
                &[],
            ),
            requests: registry.counter(
                "evirel_serve_requests_handled_total",
                "Requests handled, any verb, any outcome",
                &[],
            ),
            errors: registry.counter(
                "evirel_serve_request_errors_total",
                "ERR responses sent (typed failures, including protocol)",
                &[],
            ),
            panics: registry.counter(
                "evirel_serve_panics_total",
                "Worker panics caught and converted to ERR panic",
                &[],
            ),
            merges: registry.counter(
                "evirel_serve_merges_total",
                "Successful MERGE writes (generation bumps)",
                &[],
            ),
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.get(),
            rejected_busy: self.rejected_busy.get(),
            sessions: self.sessions.get(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            panics: self.panics.get(),
            merges: self.merges.get(),
        }
    }
}

/// The `verb` label values the per-verb series pre-register (the
/// protocol's verbs plus `invalid` for unparseable requests). Handles
/// are created once at startup so the per-request hot path touches
/// only atomics, never the registry lock.
const VERB_LABELS: [&str; 10] = [
    "ping", "query", "explain", "merge", "stats", "metrics", "follow", "promote", "shutdown",
    "invalid",
];

/// Per-verb observation handles.
struct VerbMetrics {
    /// `evirel_serve_requests_total{verb=…}`.
    requests: Counter,
    /// `evirel_serve_request_seconds{verb=…}`.
    latency: Histogram,
}

/// Serve-layer instrumentation beyond the [`ServerStats`] counters:
/// per-verb traffic, queue pressure, worker utilization, wire volume.
struct ServeMetrics {
    queue_depth: Gauge,
    workers_busy: Gauge,
    bytes_read: Counter,
    bytes_written: Counter,
    verbs: BTreeMap<&'static str, VerbMetrics>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> ServeMetrics {
        let verbs = VERB_LABELS
            .iter()
            .map(|&verb| {
                (
                    verb,
                    VerbMetrics {
                        requests: registry.counter(
                            "evirel_serve_requests_total",
                            "Requests received, by verb",
                            &[("verb", verb)],
                        ),
                        latency: registry.histogram(
                            "evirel_serve_request_seconds",
                            "Request handling latency, by verb",
                            &[("verb", verb)],
                        ),
                    },
                )
            })
            .collect();
        ServeMetrics {
            queue_depth: registry.gauge(
                "evirel_serve_queue_depth",
                "Connections waiting in the pending queue",
                &[],
            ),
            workers_busy: registry.gauge(
                "evirel_serve_workers_busy",
                "Workers currently serving a session",
                &[],
            ),
            bytes_read: registry.counter(
                "evirel_serve_bytes_read_total",
                "Request bytes received, frame headers included",
                &[],
            ),
            bytes_written: registry.counter(
                "evirel_serve_bytes_written_total",
                "Response bytes sent, frame headers included",
                &[],
            ),
            verbs,
        }
    }

    fn verb(&self, verb: &str) -> &VerbMetrics {
        self.verbs.get(verb).unwrap_or(&self.verbs["invalid"])
    }
}

/// Replication role and counters.
#[derive(Debug)]
struct Replication {
    /// `true` while this server is an unpromoted standby: `MERGE`
    /// is rejected with `ERR readonly`. Cleared by promotion.
    readonly: AtomicBool,
    /// Set by the `PROMOTE` verb; the follower loop treats it as a
    /// stop signal and releases read-only mode on exit.
    promote: AtomicBool,
    /// Whether this server was *started* as a follower (its role
    /// line reads `follower` or `promoted`, never `primary`).
    role_follower: bool,
    /// `FOLLOW` subscriptions currently attached (primary side).
    followers: AtomicU64,
    /// Records (or resync snapshots) shipped to followers.
    records_sent: AtomicU64,
    /// Records applied from a primary (follower side).
    records_applied: AtomicU64,
    /// Full-state resyncs installed (follower side).
    resyncs: AtomicU64,
    /// Reconnect attempts after the initial connection.
    reconnects: AtomicU64,
    /// Whether the follower link is currently up.
    connected: AtomicBool,
    /// Highest generation the primary announced (follower side) —
    /// the minuend of the replication-lag gauge.
    primary_generation: AtomicU64,
    /// Unix milliseconds of the last stream frame received (follower
    /// side); 0 until the first frame.
    heartbeat_unix_ms: AtomicU64,
}

impl Replication {
    fn new(follower: bool) -> Replication {
        Replication {
            readonly: AtomicBool::new(follower),
            promote: AtomicBool::new(false),
            role_follower: follower,
            followers: AtomicU64::new(0),
            records_sent: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            primary_generation: AtomicU64::new(0),
            heartbeat_unix_ms: AtomicU64::new(0),
        }
    }

    fn role(&self) -> &'static str {
        if !self.role_follower {
            "primary"
        } else if self.readonly.load(Ordering::SeqCst) {
            "follower"
        } else {
            "promoted"
        }
    }
}

/// A plain-data copy of the replication state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationSnapshot {
    /// `primary`, `follower`, or `promoted`.
    pub role: &'static str,
    /// `FOLLOW` subscriptions currently attached.
    pub followers: u64,
    /// Records/snapshots shipped to followers.
    pub records_sent: u64,
    /// Records applied from a primary.
    pub records_applied: u64,
    /// Full-state resyncs installed.
    pub resyncs: u64,
    /// Reconnect attempts after the initial connection.
    pub reconnects: u64,
    /// Whether the follower link is currently up.
    pub connected: bool,
}

/// Everything the accept thread and workers share.
struct Shared {
    shared: Arc<SharedCatalog>,
    cache: Arc<PlanCache>,
    /// This server's metrics registry, fresh per [`start`] — two
    /// in-process servers never bleed counters into each other.
    /// Sessions flush their execution stats here, and the `METRICS`
    /// verb renders it.
    metrics: Arc<MetricsRegistry>,
    serve_metrics: ServeMetrics,
    stats: ServerStats,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    addr: SocketAddr,
    config: ServeConfig,
    budget: SessionBudget,
    /// The write-ahead durability layer, when the server was started
    /// with a data directory. MERGE handlers journal through it from
    /// inside the catalog write lock, so a mutation is fsync'd before
    /// its generation is observable; the mutex only ever contends
    /// among writers, which the write lock already serializes.
    /// Arc'd so the scrape-time durability collector can hold it
    /// without owning the whole [`Shared`] (which owns the registry —
    /// a collector capturing `Shared` would leak the server).
    durable: Option<Arc<Mutex<DurableCatalog>>>,
    /// Replication role and counters (present on every server; a
    /// plain primary just never flips out of the `primary` role).
    /// Arc'd for the same collector-capture reason as `durable`.
    replication: Arc<Replication>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        self.ready.notify_all();
        // Unblock the accept thread: `incoming()` has no timeout, so
        // poke it with a throwaway connection it will drop on seeing
        // the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server. Dropping the handle does **not** stop the
/// server; call [`ServerHandle::shutdown`] (or send the `SHUTDOWN`
/// verb) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    follower: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared catalog, for out-of-band seeding or inspection.
    pub fn catalog(&self) -> &Arc<SharedCatalog> {
        &self.shared.shared
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.shared.cache
    }

    /// Current server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// This server's metrics registry — what the `METRICS` verb
    /// renders. Fresh per server: in-process servers never share
    /// counters.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// Current replication role and counters.
    pub fn replication(&self) -> ReplicationSnapshot {
        let r = &self.shared.replication;
        ReplicationSnapshot {
            role: r.role(),
            followers: r.followers.load(Ordering::Relaxed),
            records_sent: r.records_sent.load(Ordering::Relaxed),
            records_applied: r.records_applied.load(Ordering::Relaxed),
            resyncs: r.resyncs.load(Ordering::Relaxed),
            reconnects: r.reconnects.load(Ordering::Relaxed),
            connected: r.connected.load(Ordering::SeqCst),
        }
    }

    /// Ask a follower to promote (stop following, accept writes) and
    /// wait for the follower loop to release read-only mode. No-op on
    /// a primary. Equivalent to the `PROMOTE` verb from loopback.
    pub fn promote(&self) {
        let repl = &self.shared.replication;
        if !repl.role_follower {
            return;
        }
        repl.promote.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(10);
        while repl.readonly.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Begin a graceful shutdown: stop accepting, let workers drain
    /// the pending queue and finish in-flight sessions. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the accept thread and every worker to exit, returning
    /// the final counters. Call [`ServerHandle::shutdown`] first (or
    /// have a client send `SHUTDOWN`), or this blocks indefinitely.
    ///
    /// When the server runs durably, a final checkpoint is taken
    /// *after* the last worker drains — every journaled merge is
    /// folded into the manifest and superseded segments are GC'd, so
    /// a clean shutdown leaves a directory that recovers without
    /// journal replay. A failed checkpoint is reported on stderr but
    /// does not lose data: the journal still holds every record.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.follower.take() {
            let _ = t.join();
        }
        if let Some(durable) = &self.shared.durable {
            let mut durable = durable.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = durable.checkpoint() {
                eprintln!("evirel-serve: shutdown checkpoint failed: {e}");
            }
        }
        self.shared.stats.snapshot()
    }
}

/// Start a server over `catalog`. Binds synchronously (so the
/// returned handle's [`addr`](ServerHandle::addr) is immediately
/// connectable), then spawns the accept thread and `config.workers`
/// workers.
///
/// # Errors
/// Bind failures.
pub fn start(catalog: Catalog, config: ServeConfig) -> io::Result<ServerHandle> {
    start_with_durability(catalog, config, None)
}

/// [`start`], optionally with a durability layer: when `durable` is
/// given, the catalog is published at the recovered generation (so
/// generation numbers stay monotonic across restarts), every `MERGE`
/// is journaled + fsync'd before its generation becomes observable,
/// and [`ServerHandle::join`] checkpoints after the workers drain.
/// The caller opens the directory ([`DurableCatalog::open`]) and
/// overlays/merges the recovered bindings into `catalog` itself —
/// this function does not reconcile them.
///
/// # Errors
/// Bind failures.
pub fn start_with_durability(
    catalog: Catalog,
    config: ServeConfig,
    durable: Option<DurableCatalog>,
) -> io::Result<ServerHandle> {
    if config.follow.is_some() && durable.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a follower requires durability: pass a DurableCatalog (--data-dir) \
             so replicated records are journaled before they publish",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    // Carve the process budgets across the worker pool: each of the
    // W concurrent sessions gets threads/W and pool-bytes/W, so total
    // usage stays within EVIREL_THREADS / EVIREL_BUFFER_BYTES no
    // matter how many sessions run at once.
    let budget = SessionBudget::share_of(catalog.parallelism, catalog.pool.budget_bytes(), workers);
    let generation = durable
        .as_ref()
        .map_or(0, DurableCatalog::recovered_generation);
    let metrics = Arc::new(MetricsRegistry::new());
    let stats = ServerStats::new(&metrics);
    let serve_metrics = ServeMetrics::new(&metrics);
    let replication = Arc::new(Replication::new(config.follow.is_some()));
    let durable = durable.map(|mut d| {
        d.set_metrics(DurableMetrics {
            journal_append: metrics.histogram(
                "evirel_store_journal_append_seconds",
                "Journal append + fsync latency (the commit point of every mutation)",
                &[],
            ),
            checkpoint: metrics.histogram(
                "evirel_store_checkpoint_seconds",
                "Checkpoint duration (manifest swap, journal truncation, segment GC)",
                &[],
            ),
            segment_bytes: metrics.counter(
                "evirel_store_segment_bytes_total",
                "Segment-file bytes written by binds",
                &[],
            ),
        });
        Arc::new(Mutex::new(d))
    });
    let shared_catalog = Arc::new(SharedCatalog::with_generation(catalog, generation));
    let cache = Arc::new(PlanCache::default());
    register_collectors(
        &metrics,
        &shared_catalog,
        &cache,
        &replication,
        durable.as_ref(),
    );
    let shared = Arc::new(Shared {
        shared: shared_catalog,
        cache,
        metrics,
        serve_metrics,
        stats,
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        addr,
        replication,
        config: ServeConfig { workers, ..config },
        budget,
        durable,
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("evirel-serve-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("evirel-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    let follower = match shared.config.follow.clone() {
        Some(follow) => {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("evirel-serve-follow".into())
                    .spawn(move || run_follower(&shared, &follow))?,
            )
        }
        None => None,
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers: worker_handles,
        follower,
    })
}

/// Mirror the subsystems that keep their own counters — plan cache,
/// buffer pool, replication, durability — into the registry at scrape
/// time, so `METRICS` and `STATS` read one source of truth. Each
/// collector runs on [`MetricsRegistry::refresh`] (every scrape) and
/// touches only narrow `Arc`s, never the whole [`Shared`] — which
/// owns the registry, so capturing it would cycle and leak the
/// server. [`Counter::set_at_least`] keeps mirrored counters monotone.
fn register_collectors(
    metrics: &Arc<MetricsRegistry>,
    catalog: &Arc<SharedCatalog>,
    cache: &Arc<PlanCache>,
    replication: &Arc<Replication>,
    durable: Option<&Arc<Mutex<DurableCatalog>>>,
) {
    // Plan-cache + buffer-pool/generation collectors are shared with
    // the `eql` REPL so both surfaces expose identical series names.
    register_query_collectors(metrics, catalog, cache);
    {
        let repl = Arc::clone(replication);
        let catalog = Arc::clone(catalog);
        let followers = metrics.gauge(
            "evirel_repl_followers",
            "FOLLOW subscriptions currently attached",
            &[],
        );
        let sent = metrics.counter(
            "evirel_repl_records_sent_total",
            "Records or snapshots shipped to followers",
            &[],
        );
        let applied = metrics.counter(
            "evirel_repl_records_applied_total",
            "Records applied from a primary",
            &[],
        );
        let resyncs = metrics.counter(
            "evirel_repl_resyncs_total",
            "Full-state resyncs installed",
            &[],
        );
        let reconnects = metrics.counter(
            "evirel_repl_reconnects_total",
            "Reconnect attempts after the initial connection",
            &[],
        );
        let connected = metrics.gauge(
            "evirel_repl_connected",
            "Whether the follower link is up (0/1)",
            &[],
        );
        let lag = metrics.gauge(
            "evirel_repl_generation_lag",
            "Primary generation minus locally applied generation",
            &[],
        );
        let heartbeat_age = metrics.gauge(
            "evirel_repl_heartbeat_age_seconds",
            "Seconds since the last stream frame from the primary",
            &[],
        );
        metrics.register_collector("replication", move || {
            followers.set(repl.followers.load(Ordering::Relaxed));
            sent.set_at_least(repl.records_sent.load(Ordering::Relaxed));
            applied.set_at_least(repl.records_applied.load(Ordering::Relaxed));
            resyncs.set_at_least(repl.resyncs.load(Ordering::Relaxed));
            reconnects.set_at_least(repl.reconnects.load(Ordering::Relaxed));
            connected.set(u64::from(repl.connected.load(Ordering::SeqCst)));
            let primary = repl.primary_generation.load(Ordering::Relaxed);
            lag.set(primary.saturating_sub(catalog.generation()));
            let hb = repl.heartbeat_unix_ms.load(Ordering::Relaxed);
            heartbeat_age.set(if hb == 0 {
                0
            } else {
                unix_ms().saturating_sub(hb) / 1000
            });
        });
    }
    if let Some(durable) = durable {
        let durable = Arc::clone(durable);
        let committed = metrics.gauge(
            "evirel_store_committed_generation",
            "Last journaled or checkpointed generation",
            &[],
        );
        let journal_records = metrics.gauge(
            "evirel_store_journal_records",
            "Journal records since the last checkpoint",
            &[],
        );
        let checkpoints = metrics.counter(
            "evirel_store_checkpoints_total",
            "Checkpoints taken since open",
            &[],
        );
        let bindings = metrics.gauge("evirel_store_bindings", "Bindings currently persisted", &[]);
        metrics.register_collector("store.durable", move || {
            let d = durable.lock().unwrap_or_else(|e| e.into_inner());
            let s = d.stats();
            committed.set(s.committed_generation);
            journal_records.set(s.journal_records);
            checkpoints.set_at_least(s.checkpoints);
            bindings.set(s.bindings);
        });
    }
}

/// Wall-clock Unix milliseconds — heartbeat-age arithmetic only.
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// The follower thread: follow the primary until shutdown, promotion,
/// or (with `promote_on_disconnect`) the retry budget runs out; then
/// release read-only mode if promotion applies.
fn run_follower(shared: &Shared, follow: &FollowConfig) {
    let repl = &shared.replication;
    let stop = || shared.shutdown.load(Ordering::SeqCst) || repl.promote.load(Ordering::SeqCst);
    let durable = shared
        .durable
        .as_deref()
        .expect("follower servers always have a durability layer");
    let ctx = ApplyCtx {
        catalog: &shared.shared,
        durable,
        stop: &stop,
        records_applied: &repl.records_applied,
        resyncs: &repl.resyncs,
        primary_generation: &repl.primary_generation,
        heartbeat_unix_ms: &repl.heartbeat_unix_ms,
    };
    let policy = RetryPolicy {
        initial_backoff: follow.initial_backoff,
        max_backoff: follow.max_backoff,
        retry_budget: follow.promote_on_disconnect.then_some(follow.retry_budget),
        poll: shared.config.poll_interval,
    };
    let exit = follower_loop(
        &follow.primary,
        &ctx,
        &repl.connected,
        &repl.reconnects,
        &policy,
    );
    let promote_now = match exit {
        // Promotion releases read-only; plain shutdown leaves the
        // role as it was (the server is exiting anyway).
        FollowerExit::Stopped => repl.promote.load(Ordering::SeqCst),
        FollowerExit::RetriesExhausted => follow.promote_on_disconnect,
    };
    if promote_now {
        repl.readonly.store(false, Ordering::SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() < shared.config.max_pending {
            queue.push_back(stream);
            shared.serve_metrics.queue_depth.set(queue.len() as u64);
            drop(queue);
            shared.stats.accepted.inc();
            shared.ready.notify_one();
        } else {
            drop(queue);
            shared.stats.rejected_busy.inc();
            let busy = Response::Busy {
                message: format!(
                    "server at capacity ({} pending sessions); back off and retry",
                    shared.config.max_pending
                ),
            };
            let _ = write_frame(&mut stream, &busy.encode());
            // stream drops → connection closes.
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = queue.pop_front() {
                    shared.serve_metrics.queue_depth.set(queue.len() as u64);
                    break Some(c);
                }
                // Drain-then-exit: pending sessions admitted before
                // shutdown still get served.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(queue, shared.config.poll_interval)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        let Some(stream) = conn else { return };
        shared.stats.sessions.inc();
        shared.serve_metrics.workers_busy.add(1);
        serve_connection(stream, shared);
        shared.serve_metrics.workers_busy.sub(1);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    // The read timeout is a *poll* interval: a quiet session loops
    // here so the worker can notice shutdown, it is never hung up on.
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let shutdown_allowed =
        shutdown_permitted(stream.peer_addr(), shared.config.allow_remote_shutdown);
    let mut session = Session::with_budget(
        Arc::clone(&shared.shared),
        Arc::clone(&shared.cache),
        shared.budget,
    );
    // Query spans, slow-query events, and execution-stat counters all
    // land in *this server's* registry, not the process-global one.
    session.set_metrics(Arc::clone(&shared.metrics));
    loop {
        // A timeout here means the session is *idle* — read_frame_with
        // keeps retrying on its own once any frame byte has arrived,
        // so a slow or fragmenting client cannot desync the stream.
        // Mid-frame, it re-checks the shutdown flag every poll
        // interval and gives up (TimedOut) once set, which lands in
        // the same return below.
        let payload = match read_frame_with(&mut stream, || !shared.shutdown.load(Ordering::SeqCst))
        {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return, // torn frame / reset — nothing to answer
        };
        shared.stats.requests.inc();
        shared
            .serve_metrics
            .bytes_read
            .add((payload.len() + 4) as u64);
        // Parse once: the verb labels the per-verb counter/latency
        // series, FOLLOW is intercepted below, and handle_request
        // gets the already-parsed request.
        let parsed = Request::parse(&payload);
        let verb_metrics = shared
            .serve_metrics
            .verb(parsed.as_ref().map_or("invalid", Request::verb));
        verb_metrics.requests.inc();
        // FOLLOW takes the whole connection over: the stream stops
        // being request/response and becomes a one-way record feed,
        // so it is handled here (where the socket lives), not in
        // handle_request. The subscription occupies this worker for
        // its lifetime — size `workers` accordingly.
        if let Ok(Request::Follow { from }) = &parsed {
            let Some(durable) = shared.durable.as_deref() else {
                let err = Response::error(
                    "unsupported",
                    "this server has no durability layer (no --data-dir); \
                     there is no journal to stream",
                );
                shared.stats.errors.inc();
                if write_frame(&mut stream, &err.encode()).is_err() {
                    return;
                }
                continue;
            };
            shared.replication.followers.fetch_add(1, Ordering::SeqCst);
            let ctx = SenderCtx {
                catalog: &shared.shared,
                durable,
                stop: &shared.shutdown,
                poll: shared.config.poll_interval,
                records_sent: &shared.replication.records_sent,
            };
            let _ = serve_follow(&mut stream, &ctx, *from);
            shared.replication.followers.fetch_sub(1, Ordering::SeqCst);
            return; // the stream is spent either way
        }
        // A panic inside request handling must not kill the worker:
        // convert it to a typed ERR frame and keep serving. The
        // session only holds Arc'd shared state whose invariants the
        // RCU snapshot layer protects, so resuming after a caught
        // panic is sound.
        let started = Instant::now();
        let handled = catch_unwind(AssertUnwindSafe(|| {
            handle_request(&session, parsed, shared, shutdown_allowed)
        }));
        let (response, shutdown_after) = handled.unwrap_or_else(|_| {
            shared.stats.panics.inc();
            (
                Response::error("panic", "internal panic while handling request"),
                false,
            )
        });
        verb_metrics.latency.observe(started.elapsed());
        if matches!(response, Response::Err { .. }) {
            shared.stats.errors.inc();
        }
        let encoded = response.encode();
        shared
            .serve_metrics
            .bytes_written
            .add((encoded.len() + 4) as u64);
        if write_frame(&mut stream, &encoded).is_err() {
            return; // peer gone mid-response
        }
        if shutdown_after {
            shared.begin_shutdown();
            return;
        }
    }
}

/// The SHUTDOWN gate: loopback peers may always stop the server;
/// remote peers — including connections whose peer address cannot be
/// resolved — only when the config opts in.
fn shutdown_permitted(peer: io::Result<SocketAddr>, allow_remote: bool) -> bool {
    allow_remote || peer.is_ok_and(|p| p.ip().is_loopback())
}

/// Handle one request; the bool asks the caller to begin shutdown
/// after the response frame is written. `shutdown_allowed` is the
/// per-connection SHUTDOWN gate (loopback peer, or the
/// [`ServeConfig::allow_remote_shutdown`] opt-in). The request
/// arrives pre-parsed — the caller needed the verb for its per-verb
/// series before dispatching.
fn handle_request(
    session: &Session,
    request: Result<Request, String>,
    shared: &Shared,
    shutdown_allowed: bool,
) -> (Response, bool) {
    let request = match request {
        Ok(r) => r,
        Err(message) => return (Response::error("protocol", message), false),
    };
    match request {
        Request::Ping => (
            Response::Ok {
                body: "pong".into(),
            },
            false,
        ),
        Request::Shutdown if !shutdown_allowed => (
            Response::error(
                "denied",
                "SHUTDOWN is only honored from loopback connections \
                 (start the server with allow_remote_shutdown to override)",
            ),
            false,
        ),
        Request::Shutdown => (
            Response::Ok {
                body: "shutting down".into(),
            },
            true,
        ),
        Request::Query(q) => (query_response(session, &q), false),
        Request::Explain(q) => match session.explain(&q) {
            Ok(text) => (Response::Ok { body: text }, false),
            Err(e) => (Response::error(e.kind(), e.to_string()), false),
        },
        Request::Merge { name, query } => (merge_response(session, shared, &name, &query), false),
        Request::Stats => (stats_response(session, shared), false),
        // The scrape endpoint: refresh collector-mirrored series and
        // render the whole registry as Prometheus text exposition.
        Request::Metrics => (
            Response::Ok {
                body: shared.metrics.render(),
            },
            false,
        ),
        // FOLLOW is intercepted in serve_connection (it takes the
        // socket over); reaching it here means the takeover path was
        // bypassed, which only tests do.
        Request::Follow { .. } => (
            Response::error(
                "protocol",
                "FOLLOW subscribes a stream and cannot be answered in-band",
            ),
            false,
        ),
        Request::Promote => (promote_response(shared, shutdown_allowed), false),
    }
}

/// Handle `PROMOTE`: flip a follower into an ordinary writable
/// server. Gated like `SHUTDOWN` (loopback unless the config opts
/// in) — promotion of a standby is a topology change, not a query.
/// Idempotent: promoting a primary (or twice) reports success.
fn promote_response(shared: &Shared, allowed: bool) -> Response {
    if !allowed {
        return Response::error(
            "denied",
            "PROMOTE is only honored from loopback connections \
             (start the server with allow_remote_shutdown to override)",
        );
    }
    let repl = &shared.replication;
    if !repl.role_follower {
        return Response::Ok {
            body: format!("already primary generation={}", shared.shared.generation()),
        };
    }
    repl.promote.store(true, Ordering::SeqCst);
    // The follower loop notices the flag within a poll interval,
    // finishes (or abandons) its in-flight frame, and releases
    // read-only mode; wait for that so the client's next MERGE after
    // an OK cannot race an ERR readonly.
    let deadline = Instant::now() + Duration::from_secs(10);
    while repl.readonly.load(Ordering::SeqCst) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if repl.readonly.load(Ordering::SeqCst) {
        Response::error(
            "promote",
            "promotion signalled, but the follower loop has not released \
             read-only mode yet; retry PROMOTE",
        )
    } else {
        Response::Ok {
            body: format!("promoted generation={}", shared.shared.generation()),
        }
    }
}

fn query_response(session: &Session, query: &str) -> Response {
    match session.query(query) {
        Ok(out) => Response::Ok {
            body: format!(
                "tuples={} conflicts={} cached={} generation={}\n{}",
                out.outcome.relation.len(),
                out.outcome.report.len(),
                u8::from(out.cached_plan),
                out.generation,
                out.outcome.relation,
            ),
        },
        Err(e) => Response::error(e.kind(), e.to_string()),
    }
}

fn merge_response(session: &Session, shared: &Shared, name: &str, query: &str) -> Response {
    // Checked per-request, not per-session: a session opened while
    // the server was a standby becomes writable the moment the
    // server is promoted.
    if shared.replication.readonly.load(Ordering::SeqCst) {
        return Response::error(
            "readonly",
            "this server is a replication standby; write to the primary, \
             or PROMOTE this server to accept writes",
        );
    }
    // Read at a pinned snapshot, then publish the result as the next
    // generation. Two concurrent MERGEs to the same name serialize on
    // the write lock; last writer wins, and either way every reader
    // sees a complete binding.
    let out = match session.query(query) {
        Ok(out) => out,
        Err(e) => return Response::error(e.kind(), e.to_string()),
    };
    let tuples = out.outcome.relation.len();
    let rel = out.outcome.relation;
    let published = if let Some(durable) = &shared.durable {
        // Durable path: segment write + journal fsync happen inside
        // the update_at closure — under the catalog write lock, at
        // the exact generation this merge will publish as — so no
        // reader can observe a generation whose mutation is not yet
        // on disk. The binding is then re-attached from its segment:
        // the published catalog serves the very bytes recovery would.
        session.update_at(|catalog, generation| {
            let mut durable = durable.lock().unwrap_or_else(|e| e.into_inner());
            let path = durable.record_bind(name, &rel, generation)?;
            catalog.attach_stored(name.to_owned(), path)?;
            Ok(())
        })
    } else {
        session.update_with_generation(|catalog| {
            catalog.register(name.to_owned(), rel);
            Ok(())
        })
    };
    match published {
        // Report the generation *this* merge published — re-reading
        // the shared counter here could already see a concurrent
        // writer's later bump.
        Ok(((), generation)) => {
            shared.stats.merges.inc();
            Response::Ok {
                body: format!("merged {name} tuples={tuples} generation={generation}"),
            }
        }
        Err(e) => Response::error(e.kind(), e.to_string()),
    }
}

fn stats_response(session: &Session, shared: &Shared) -> Response {
    // One source of truth: refresh the collector-mirrored series,
    // then read every number back out of the registry — `STATS` and
    // `METRICS` render the same counters and cannot disagree. Only
    // non-numeric state (role, data dir, relation statistics) comes
    // from the subsystems directly.
    shared.metrics.refresh();
    let v = |name: &str| shared.metrics.value(name, &[]).unwrap_or(0);
    let snapshot = session.pin();
    let durability = match &shared.durable {
        Some(durable) => {
            let dir = durable
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .dir()
                .display()
                .to_string();
            format!(
                "durability dir={dir} generation_committed={} journal_records={} \
                 checkpoints={} bindings={}",
                v("evirel_store_committed_generation"),
                v("evirel_store_journal_records"),
                v("evirel_store_checkpoints_total"),
                v("evirel_store_bindings"),
            )
        }
        None => "durability off".into(),
    };
    let replication = format!(
        "replication role={} followers={} sent={} applied={} resyncs={} \
         reconnects={} connected={}",
        shared.replication.role(),
        v("evirel_repl_followers"),
        v("evirel_repl_records_sent_total"),
        v("evirel_repl_records_applied_total"),
        v("evirel_repl_resyncs_total"),
        v("evirel_repl_reconnects_total"),
        v("evirel_repl_connected"),
    );
    // Per-relation statistics as the planner's cost model sees them
    // — one `relation <name> (...)` line each, pre-v3 segments
    // flagged as planning via heuristics.
    let relations: String = snapshot
        .catalog()
        .stats_summary()
        .lines()
        .map(|line| format!("relation {line}\n"))
        .collect();
    let relations = relations.trim_end();
    Response::Ok {
        body: format!(
            "server accepted={} busy={} sessions={} requests={} errors={} panics={} merges={}\n\
             cache entries={} hits={} misses={} stale={} evictions={} generation={}\n\
             pool hits={} misses={} evictions={} overcommits={}\n\
             {relations}\n\
             {durability}\n\
             {replication}",
            v("evirel_serve_connections_accepted_total"),
            v("evirel_serve_busy_rejected_total"),
            v("evirel_serve_sessions_total"),
            v("evirel_serve_requests_handled_total"),
            v("evirel_serve_request_errors_total"),
            v("evirel_serve_panics_total"),
            v("evirel_serve_merges_total"),
            v("evirel_query_cache_entries"),
            v("evirel_query_cache_hits_total"),
            v("evirel_query_cache_misses_total"),
            v("evirel_query_cache_stale_total"),
            v("evirel_query_cache_evictions_total"),
            snapshot.generation(),
            v("evirel_store_pool_hits_total"),
            v("evirel_store_pool_misses_total"),
            v("evirel_store_pool_evictions_total"),
            v("evirel_store_pool_overcommits_total"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_gate_requires_loopback_unless_opted_in() {
        let loopback4: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let loopback6: SocketAddr = "[::1]:9".parse().unwrap();
        let remote: SocketAddr = "203.0.113.7:9".parse().unwrap();
        let unresolvable = || Err(io::Error::new(io::ErrorKind::NotConnected, "gone"));
        assert!(shutdown_permitted(Ok(loopback4), false));
        assert!(shutdown_permitted(Ok(loopback6), false));
        assert!(!shutdown_permitted(Ok(remote), false));
        assert!(!shutdown_permitted(unresolvable(), false));
        assert!(shutdown_permitted(Ok(remote), true));
        assert!(shutdown_permitted(unresolvable(), true));
    }
}
