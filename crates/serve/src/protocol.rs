//! The evirel-serve wire protocol: length-prefixed UTF-8 frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | u32 big-endian |  UTF-8 payload      |
//! | payload length |  (length bytes)     |
//! +----------------+---------------------+
//! ```
//!
//! The payload is line-oriented: the **first line** carries the verb
//! (requests) or status (responses); everything after the first `\n`
//! is the body. Requests:
//!
//! ```text
//! PING                         liveness check
//! QUERY\n<eql text>            execute a query (read)
//! EXPLAIN\n<eql text>          plans, est vs actual rows per
//!                              operator (executes), cache state (read)
//! MERGE <name>\n<eql text>     execute, register result as <name>
//!                              (write — publishes a new generation)
//! STATS                        server/cache/pool counters plus
//!                              per-relation planner statistics
//! METRICS                      every counter/gauge/histogram in
//!                              Prometheus text exposition (`# TYPE`
//!                              lines, stable `evirel_*` names) —
//!                              the scrape endpoint
//! FOLLOW <generation>          become a replication subscriber: "I
//!                              have applied through <generation>;
//!                              stream me everything after it". The
//!                              connection switches to the one-way
//!                              stream-frame protocol below.
//! PROMOTE                      follower only: stop following, start
//!                              accepting writes
//! SHUTDOWN                     stop accepting, drain, exit
//! ```
//!
//! A `FOLLOW` connection first receives a normal `OK`/`ERR` response;
//! on `OK` every subsequent frame is a [`StreamFrame`]: `SEG` chunks
//! carrying segment bytes (hex-encoded so frames stay UTF-8), `REC`
//! journal records, `SNAP`/`SNAPEND` bracketing a full state
//! transfer, and `GEN` idle heartbeats. See [`StreamFrame`] for the
//! exact grammar.
//!
//! Responses: `OK\n<body>`, `ERR <kind>\n<message>` (kind is
//! [`evirel_query::QueryError::kind`] or `protocol`), and
//! `BUSY\n<message>` — the typed admission-control rejection sent
//! when the pending-connection queue is full. A client that receives
//! `BUSY` should back off and reconnect; the stream is closed right
//! after the frame.
//!
//! The framing layer is deliberately small enough that clients with
//! no dependency on this crate (the `evirel-bombard` load driver, or
//! any other language entirely) can re-implement it from this comment
//! alone.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload. Large enough for any rendered
/// relation this workspace produces, small enough that a corrupt or
/// hostile length prefix cannot make a worker allocate gigabytes.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Write one frame.
///
/// # Errors
/// I/O errors; `InvalidInput` if `payload` exceeds
/// [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", bytes.len()),
        ));
    }
    // One buffer, one write: header and payload in separate writes
    // would hand Nagle + delayed-ACK a ~40 ms stall per frame on
    // loopback.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&u32::to_be_bytes(bytes.len() as u32));
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); an EOF in the *middle* of a frame is an
/// error, as are oversized lengths and invalid UTF-8.
///
/// A read timeout (`WouldBlock`/`TimedOut`) surfaces **only when no
/// frame byte has arrived yet** — the idle case a poll loop handles.
/// Once any byte of a frame has been consumed, timeouts retry until
/// the frame completes: the consumed bytes are gone from the stream,
/// so bailing out would leave the next read starting mid-frame and
/// desync the connection (a slow or fragmenting peer is not a
/// protocol error). Use [`read_frame_with`] to bound those retries.
///
/// # Errors
/// I/O errors (a frame-start timeout surfaces as
/// `WouldBlock`/`TimedOut` — the server's poll loop relies on this);
/// `InvalidData` for oversized or non-UTF-8 payloads.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    read_frame_with(r, || true)
}

/// [`read_frame`] with bounded mid-frame patience: after each
/// mid-frame timeout, `keep_waiting` decides whether to retry.
/// Returning `false` aborts with `TimedOut` — the stream is then
/// desynced and must be dropped, which is exactly right for a server
/// shutting down. Timeouts *before* the first byte of a frame
/// surface immediately regardless (the idle case).
///
/// # Errors
/// As [`read_frame`], plus `TimedOut` when `keep_waiting` gives up
/// mid-frame.
pub fn read_frame_with(
    r: &mut impl Read,
    keep_waiting: impl Fn() -> bool,
) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => return Err(e),
            Err(e) if is_timeout(&e) => abandon_or_retry(&keep_waiting)?,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut buf = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-payload",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => abandon_or_retry(&keep_waiting)?,
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn abandon_or_retry(keep_waiting: &impl Fn() -> bool) -> io::Result<()> {
    if keep_waiting() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "gave up waiting mid-frame",
        ))
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Execute an EQL query against a pinned snapshot.
    Query(String),
    /// Explain an EQL query (plans, rewrites, plan-cache state).
    Explain(String),
    /// Execute an EQL query and register the result under `name` —
    /// the write path; publishes a new catalog generation.
    Merge {
        /// Catalog name the result is registered under.
        name: String,
        /// The query producing the relation to register.
        query: String,
    },
    /// Server, plan-cache, and buffer-pool counters.
    Stats,
    /// Every metric in Prometheus text exposition — the scrape
    /// endpoint. Same numbers as `STATS`, machine-readable.
    Metrics,
    /// Subscribe to the replication stream from the generation after
    /// `from` (the subscriber's last applied generation).
    Follow {
        /// The caller has durably applied through this generation.
        from: u64,
    },
    /// Promote a follower: detach from its primary and accept writes.
    Promote,
    /// Graceful shutdown: stop accepting, drain pending sessions.
    Shutdown,
}

impl Request {
    /// Parse a request frame payload.
    ///
    /// # Errors
    /// A human-readable description of the malformation (sent back as
    /// `ERR protocol`).
    pub fn parse(payload: &str) -> Result<Request, String> {
        let (head, body) = match payload.split_once('\n') {
            Some((h, b)) => (h.trim(), b),
            None => (payload.trim(), ""),
        };
        let mut words = head.split_whitespace();
        let verb = words.next().unwrap_or("");
        let request = match verb {
            "PING" => Request::Ping,
            "STATS" => Request::Stats,
            "METRICS" => Request::Metrics,
            "SHUTDOWN" => Request::Shutdown,
            "PROMOTE" => Request::Promote,
            "FOLLOW" => {
                let from = words
                    .next()
                    .ok_or("FOLLOW requires a generation: FOLLOW <generation>")?
                    .parse::<u64>()
                    .map_err(|e| format!("FOLLOW generation is not a u64: {e}"))?;
                Request::Follow { from }
            }
            "QUERY" | "EXPLAIN" => {
                if body.trim().is_empty() {
                    return Err(format!("{verb} requires a query body after the verb line"));
                }
                if verb == "QUERY" {
                    Request::Query(body.to_owned())
                } else {
                    Request::Explain(body.to_owned())
                }
            }
            "MERGE" => {
                let name = words
                    .next()
                    .ok_or("MERGE requires a target name: MERGE <name>")?;
                if !is_identifier(name) {
                    return Err(format!(
                        "MERGE target {name:?} is not an identifier ([A-Za-z_][A-Za-z0-9_]*)"
                    ));
                }
                if body.trim().is_empty() {
                    return Err("MERGE requires a query body after the verb line".into());
                }
                Request::Merge {
                    name: name.to_owned(),
                    query: body.to_owned(),
                }
            }
            "" => return Err("empty request".into()),
            other => return Err(format!("unknown verb {other:?}")),
        };
        if let Some(junk) = words.next() {
            return Err(format!(
                "unexpected trailing token {junk:?} on the {verb} verb line"
            ));
        }
        Ok(request)
    }

    /// Encode this request as a frame payload (inverse of
    /// [`Request::parse`]).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Stats => "STATS".into(),
            Request::Metrics => "METRICS".into(),
            Request::Shutdown => "SHUTDOWN".into(),
            Request::Promote => "PROMOTE".into(),
            Request::Follow { from } => format!("FOLLOW {from}"),
            Request::Query(q) => format!("QUERY\n{q}"),
            Request::Explain(q) => format!("EXPLAIN\n{q}"),
            Request::Merge { name, query } => format!("MERGE {name}\n{query}"),
        }
    }

    /// The lowercase verb name — the stable `verb` label value on the
    /// server's per-verb request counters and latency histograms.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Query(_) => "query",
            Request::Explain(_) => "explain",
            Request::Merge { .. } => "merge",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Follow { .. } => "follow",
            Request::Promote => "promote",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the body is verb-specific text.
    Ok {
        /// Verb-specific body (rendered relation, stats, …).
        body: String,
    },
    /// A typed failure — the request was understood and rejected.
    Err {
        /// Machine-readable kind: [`evirel_query::QueryError::kind`]
        /// values, `protocol` for malformed requests, or `panic` for
        /// a caught worker panic.
        kind: String,
        /// Human-readable description.
        message: String,
    },
    /// Admission control: the server is at capacity. Back off and
    /// retry; the connection is closed after this frame.
    Busy {
        /// Human-readable description (includes queue capacity).
        message: String,
    },
}

impl Response {
    /// Convenience constructor for `Err` responses.
    pub fn error(kind: impl Into<String>, message: impl Into<String>) -> Response {
        Response::Err {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// Encode as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Ok { body } => format!("OK\n{body}"),
            Response::Err { kind, message } => format!("ERR {kind}\n{message}"),
            Response::Busy { message } => format!("BUSY\n{message}"),
        }
    }

    /// Parse a response frame payload (the client side of
    /// [`Response::encode`]).
    ///
    /// # Errors
    /// A description of the malformation.
    pub fn parse(payload: &str) -> Result<Response, String> {
        let (head, body) = match payload.split_once('\n') {
            Some((h, b)) => (h.trim(), b),
            None => (payload.trim(), ""),
        };
        let mut words = head.split_whitespace();
        match words.next() {
            Some("OK") => Ok(Response::Ok { body: body.into() }),
            Some("BUSY") => Ok(Response::Busy {
                message: body.into(),
            }),
            Some("ERR") => Ok(Response::Err {
                kind: words.next().unwrap_or("unknown").into(),
                message: body.into(),
            }),
            _ => Err(format!("unrecognized response status line {head:?}")),
        }
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

// ------------------------------------------------- replication stream

/// How many raw segment bytes one `SEG` frame carries at most. Hex
/// encoding doubles the payload, so 1 MiB raw stays far under
/// [`MAX_FRAME_BYTES`] while keeping per-frame overhead negligible.
pub const SEG_CHUNK_BYTES: usize = 1 << 20;

/// One frame of the replication stream a `FOLLOW` connection carries
/// after its `OK`. All frames flow primary → follower; the grammar
/// (first line = tag + space-separated fields, body where noted):
///
/// ```text
/// SEG <file> <offset> <total_len>\n<hex bytes>   one segment chunk
/// REC BIND <name> <file> <fv> <crc> <tuples> <gen>   a journal record
/// REC DROP <name> <gen>
/// SNAP <gen> <n>\n<n metadata lines>             full-state header
/// SNAPEND <gen>                                  full-state commit
/// GEN <gen>                                      idle heartbeat
/// ```
///
/// Ordering contract: every `SEG` chunk of a file precedes the `REC
/// BIND` (or `SNAPEND`) that makes it live; `REC` generations are
/// strictly increasing; a `SNAP … SNAPEND` bracket replaces the
/// follower's whole durable state atomically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFrame {
    /// A chunk of segment-file bytes, hex-encoded on the wire.
    Seg {
        /// Segment file name (validated: `seg-*.evb`, no paths).
        file: String,
        /// Byte offset this chunk starts at (chunks arrive in order).
        offset: u64,
        /// The file's final size — the receiver renames the staging
        /// file into place when the last byte lands.
        total_len: u64,
        /// The raw bytes (decoded from hex).
        chunk: Vec<u8>,
    },
    /// One journal record to apply (tail mode).
    Rec(evirel_store::JournalRecord),
    /// Full-state transfer header: the complete durable entry set at
    /// `generation`. Segment payloads for entries the follower lacks
    /// follow as `SEG` frames, then [`StreamFrame::SnapEnd`].
    Snap {
        /// The committed generation this snapshot represents.
        generation: u64,
        /// Every durable binding's metadata.
        entries: Vec<evirel_store::ManifestEntry>,
    },
    /// Full-state transfer commit point.
    SnapEnd {
        /// Must match the preceding [`StreamFrame::Snap`].
        generation: u64,
    },
    /// Idle heartbeat: the primary's committed generation. Doubles as
    /// liveness — a follower treats prolonged silence as a dead link.
    Gen {
        /// The primary's committed generation.
        committed: u64,
    },
}

impl StreamFrame {
    /// Encode as a frame payload.
    pub fn encode(&self) -> String {
        use evirel_store::JournalRecord;
        match self {
            StreamFrame::Seg {
                file,
                offset,
                total_len,
                chunk,
            } => format!("SEG {file} {offset} {total_len}\n{}", to_hex(chunk)),
            StreamFrame::Rec(JournalRecord::Bind {
                name,
                file,
                format_version,
                checksum,
                tuple_count,
                generation,
            }) => format!(
                "REC BIND {name} {file} {format_version} {checksum} {tuple_count} {generation}"
            ),
            StreamFrame::Rec(JournalRecord::Drop { name, generation }) => {
                format!("REC DROP {name} {generation}")
            }
            StreamFrame::Snap {
                generation,
                entries,
            } => {
                let mut out = format!("SNAP {generation} {}", entries.len());
                for e in entries {
                    out.push_str(&format!(
                        "\n{} {} {} {} {} {}",
                        e.name, e.file, e.format_version, e.checksum, e.tuple_count, e.generation
                    ));
                }
                out
            }
            StreamFrame::SnapEnd { generation } => format!("SNAPEND {generation}"),
            StreamFrame::Gen { committed } => format!("GEN {committed}"),
        }
    }

    /// Parse a stream-frame payload.
    ///
    /// # Errors
    /// A description of the malformation — a follower treats this as
    /// a poisoned link: drop the connection and resume from its own
    /// applied generation.
    pub fn parse(payload: &str) -> Result<StreamFrame, String> {
        use evirel_store::JournalRecord;
        let (head, body) = match payload.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (payload, ""),
        };
        let mut words = head.split_whitespace();
        let frame = match words.next().unwrap_or("") {
            "SEG" => {
                let file = segment_file(words.next())?;
                let offset = num(words.next(), "SEG offset")?;
                let total_len = num(words.next(), "SEG total length")?;
                StreamFrame::Seg {
                    file,
                    offset,
                    total_len,
                    chunk: from_hex(body)?,
                }
            }
            "REC" => match words.next() {
                Some("BIND") => StreamFrame::Rec(JournalRecord::Bind {
                    name: identifier(words.next(), "REC BIND name")?,
                    file: segment_file(words.next())?,
                    format_version: num(words.next(), "REC BIND format version")? as u16,
                    checksum: num(words.next(), "REC BIND checksum")? as u32,
                    tuple_count: num(words.next(), "REC BIND tuple count")?,
                    generation: num(words.next(), "REC BIND generation")?,
                }),
                Some("DROP") => StreamFrame::Rec(JournalRecord::Drop {
                    name: identifier(words.next(), "REC DROP name")?,
                    generation: num(words.next(), "REC DROP generation")?,
                }),
                other => return Err(format!("unknown REC kind {other:?}")),
            },
            "SNAP" => {
                let generation = num(words.next(), "SNAP generation")?;
                let count = num(words.next(), "SNAP entry count")? as usize;
                let lines: Vec<&str> = if body.is_empty() {
                    Vec::new()
                } else {
                    body.lines().collect()
                };
                if lines.len() != count {
                    return Err(format!(
                        "SNAP announces {count} entries but carries {}",
                        lines.len()
                    ));
                }
                let mut entries = Vec::with_capacity(count);
                for line in lines {
                    let mut f = line.split_whitespace();
                    entries.push(evirel_store::ManifestEntry {
                        name: identifier(f.next(), "SNAP entry name")?,
                        file: segment_file(f.next())?,
                        format_version: num(f.next(), "SNAP entry format version")? as u16,
                        checksum: num(f.next(), "SNAP entry checksum")? as u32,
                        tuple_count: num(f.next(), "SNAP entry tuple count")?,
                        generation: num(f.next(), "SNAP entry generation")?,
                    });
                    if let Some(junk) = f.next() {
                        return Err(format!("trailing token {junk:?} on a SNAP entry line"));
                    }
                }
                StreamFrame::Snap {
                    generation,
                    entries,
                }
            }
            "SNAPEND" => StreamFrame::SnapEnd {
                generation: num(words.next(), "SNAPEND generation")?,
            },
            "GEN" => StreamFrame::Gen {
                committed: num(words.next(), "GEN generation")?,
            },
            other => return Err(format!("unknown stream frame tag {other:?}")),
        };
        if let Some(junk) = words.next() {
            return Err(format!(
                "unexpected trailing token {junk:?} on a stream frame"
            ));
        }
        Ok(frame)
    }
}

fn num(word: Option<&str>, what: &str) -> Result<u64, String> {
    word.ok_or_else(|| format!("missing {what}"))?
        .parse::<u64>()
        .map_err(|e| format!("{what} is not a u64: {e}"))
}

fn identifier(word: Option<&str>, what: &str) -> Result<String, String> {
    let w = word.ok_or_else(|| format!("missing {what}"))?;
    if is_identifier(w) {
        Ok(w.to_owned())
    } else {
        Err(format!("{what} {w:?} is not an identifier"))
    }
}

fn segment_file(word: Option<&str>) -> Result<String, String> {
    let w = word.ok_or("missing segment file name")?;
    if evirel_store::valid_segment_file_name(w) {
        Ok(w.to_owned())
    } else {
        Err(format!("invalid segment file name {w:?}"))
    }
}

/// Lowercase hex encoding (segment bytes must ride in UTF-8 frames).
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize]);
        out.push(DIGITS[(b & 0x0f) as usize]);
    }
    String::from_utf8(out).expect("hex digits are ASCII")
}

/// Inverse of [`to_hex`].
///
/// # Errors
/// A description of the malformation (odd length, non-hex digit).
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim_end_matches('\n');
    if !s.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", s.len()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_digit(pair[0])?;
        let lo = hex_digit(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_digit(b: u8) -> Result<u8, String> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        other => Err(format!("invalid hex digit {:?}", other as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "QUERY\nSELECT * FROM ra").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("QUERY\nSELECT * FROM ra")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        buf.truncate(6); // header + 2 of 4 payload bytes
        assert!(read_frame(&mut &buf[..]).is_err());
        // Mid-header EOF is also an error (not a clean close).
        assert!(read_frame(&mut &buf[..2]).is_err());
        // A hostile length prefix fails before allocating.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    /// A reader scripted as a sequence of partial reads and timeout
    /// errors — the shape of a slow client on a socket with a read
    /// timeout.
    struct Flaky {
        steps: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Flaky {
        fn new(steps: impl IntoIterator<Item = Result<Vec<u8>, io::ErrorKind>>) -> Flaky {
            Flaky {
                steps: steps.into_iter().collect(),
            }
        }
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                None => Ok(0),
                Some(Err(kind)) => Err(kind.into()),
                Some(Ok(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "test chunk exceeds request");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn mid_frame_timeouts_retry_instead_of_desyncing() {
        // Timeouts strike between header halves and between payload
        // halves; the frame must still arrive whole.
        let mut r = Flaky::new([
            Ok(vec![0, 0]),
            Err(io::ErrorKind::WouldBlock),
            Ok(vec![0, 4]),
            Err(io::ErrorKind::TimedOut),
            Ok(b"PI".to_vec()),
            Err(io::ErrorKind::WouldBlock),
            Ok(b"NG".to_vec()),
        ]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("PING"));
    }

    #[test]
    fn frame_start_timeout_surfaces_as_idle() {
        let mut r = Flaky::new([Err(io::ErrorKind::WouldBlock)]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn keep_waiting_false_abandons_mid_frame() {
        let mut r = Flaky::new([Ok(vec![0, 0]), Err(io::ErrorKind::WouldBlock)]);
        let err = read_frame_with(&mut r, || false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Promote,
            Request::Follow { from: 0 },
            Request::Follow { from: u64::MAX },
            Request::Query("SELECT * FROM ra".into()),
            Request::Explain("SELECT * FROM ra UNION rb".into()),
            Request::Merge {
                name: "m0".into(),
                query: "SELECT * FROM ra UNION rb".into(),
            },
        ] {
            assert_eq!(Request::parse(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn verb_labels_are_lowercase_and_distinct() {
        let verbs: Vec<&str> = [
            Request::Ping,
            Request::Query(String::new()),
            Request::Explain(String::new()),
            Request::Merge {
                name: String::new(),
                query: String::new(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Follow { from: 0 },
            Request::Promote,
            Request::Shutdown,
        ]
        .iter()
        .map(Request::verb)
        .collect();
        let unique: std::collections::BTreeSet<&&str> = verbs.iter().collect();
        assert_eq!(unique.len(), verbs.len(), "labels must be distinct");
        for v in verbs {
            assert_eq!(v, v.to_ascii_lowercase(), "labels are lowercase");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "",
            "FROBNICATE",
            "QUERY",
            "QUERY\n   ",
            "MERGE\nSELECT * FROM ra",
            "MERGE 1bad\nSELECT * FROM ra",
            "MERGE name-with-dash\nSELECT * FROM ra",
            "MERGE two names\nSELECT * FROM ra",
            "PING extra",
            "METRICS now",
            "FOLLOW",
            "FOLLOW abc",
            "FOLLOW -1",
            "FOLLOW 3 4",
            "PROMOTE now",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [&b""[..], &b"\x00"[..], &b"\xff\x00\x7f evirel"[..]] {
            assert_eq!(from_hex(&to_hex(bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digit");
        // Uppercase input is tolerated on decode.
        assert_eq!(from_hex("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn stream_frames_round_trip() {
        use evirel_store::{JournalRecord, ManifestEntry};
        for frame in [
            StreamFrame::Seg {
                file: "seg-000007.evb".into(),
                offset: 1024,
                total_len: 4096,
                chunk: vec![0, 1, 2, 0xff],
            },
            StreamFrame::Seg {
                file: "seg-000001.evb".into(),
                offset: 0,
                total_len: 0,
                chunk: vec![],
            },
            StreamFrame::Rec(JournalRecord::Bind {
                name: "m3".into(),
                file: "seg-000003.evb".into(),
                format_version: 3,
                checksum: 0xDEAD_BEEF,
                tuple_count: 42,
                generation: 7,
            }),
            StreamFrame::Rec(JournalRecord::Drop {
                name: "m3".into(),
                generation: 8,
            }),
            StreamFrame::Snap {
                generation: 12,
                entries: vec![
                    ManifestEntry {
                        name: "a".into(),
                        file: "seg-000001.evb".into(),
                        format_version: 3,
                        checksum: 1,
                        tuple_count: 2,
                        generation: 3,
                    },
                    ManifestEntry {
                        name: "b".into(),
                        file: "seg-000002.evb".into(),
                        format_version: 3,
                        checksum: 4,
                        tuple_count: 5,
                        generation: 12,
                    },
                ],
            },
            StreamFrame::Snap {
                generation: 1,
                entries: vec![],
            },
            StreamFrame::SnapEnd { generation: 12 },
            StreamFrame::Gen { committed: 99 },
        ] {
            assert_eq!(
                StreamFrame::parse(&frame.encode()),
                Ok(frame.clone()),
                "{frame:?}"
            );
        }
    }

    #[test]
    fn malformed_stream_frames_are_typed_errors() {
        for bad in [
            "",
            "WAT 1",
            "SEG ../../etc/passwd 0 4\nabcd",
            "SEG seg-1.evj 0 4\nabcd",
            "SEG seg-000001.evb 0 4\nxyzw",
            "SEG seg-000001.evb 0\nabcd",
            "REC BIND bad-name seg-000001.evb 3 1 2 3",
            "REC BIND m1 nope.evb 3 1 2 3",
            "REC UPSERT m1 4",
            "REC DROP m1",
            "SNAP 3 2\na seg-000001.evb 3 1 2 3",
            "SNAP 3 1\na seg-000001.evb 3 1 2 3 junk",
            "SNAPEND",
            "GEN",
            "GEN 1 2",
        ] {
            assert!(StreamFrame::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok {
                body: "pong".into(),
            },
            Response::error("parse", "parse error at offset 3"),
            Response::Busy {
                message: "64 pending".into(),
            },
        ] {
            assert_eq!(Response::parse(&resp.encode()), Ok(resp));
        }
    }
}
