//! Integration tests for the query service: the workload driver
//! against an in-process server (this is also the compatibility gate
//! between `evirel_workload::driver`'s re-implemented protocol and
//! [`evirel_serve::protocol`] — the two must interoperate perfectly
//! or these tests fail), plus targeted admission-control and
//! robustness probes.

use evirel_query::Catalog;
use evirel_serve::protocol::{read_frame, write_frame, Response};
use evirel_serve::{start, ServeConfig};
use evirel_workload::driver::{run_load, LoadConfig};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::net::TcpStream;
use std::time::Duration;

fn seeded_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    let (ga, gb) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: 128,
            seed: 42,
            ..GeneratorConfig::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.25,
    })
    .expect("generator config is valid");
    catalog.register("ga", ga);
    catalog.register("gb", gb);
    catalog
}

/// One frame round-trip on an existing connection.
fn roundtrip(stream: &mut TcpStream, payload: &str) -> Response {
    write_frame(stream, payload).expect("request frame writes");
    let reply = read_frame(stream)
        .expect("response frame reads")
        .expect("server replied");
    Response::parse(&reply).expect("response parses")
}

#[test]
fn driver_sustains_64_mixed_sessions_with_zero_errors() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let report = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        sessions: 64,
        ops_per_session: 8,
        merge_every: 10, // ~10% MERGE writes
        ..LoadConfig::default()
    });

    assert_eq!(report.protocol_errors, 0, "{report:?}");
    assert_eq!(report.server_errors, 0, "{report:?}");
    assert_eq!(report.sessions_completed, 64, "{report:?}");
    assert_eq!(report.ops_ok, 64 * 8, "{report:?}");
    assert!(report.merges_ok > 0, "write mix must exercise MERGE");
    assert!(
        report.cached_plans > 0,
        "repeated traffic must hit the prepared-plan cache"
    );
    // Client-observed latency: every successful op left a sample in
    // exactly one verb bucket, and the percentiles are ordered.
    let (q, m) = (report.query_latency, report.merge_latency);
    assert_eq!(q.count + m.count, report.ops_ok, "{report:?}");
    for lat in [q, m] {
        assert!(
            lat.p50_us <= lat.p90_us && lat.p90_us <= lat.p99_us && lat.p99_us <= lat.max_us,
            "percentiles must be monotone: {lat:?}"
        );
    }
    assert!(q.max_us > 0, "a TCP round-trip takes measurable time");

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.requests, 64 * 8, "{stats:?}");
    assert!(
        stats.merges > 0,
        "MERGE writes must bump generations: {stats:?}"
    );
}

#[test]
fn overload_is_a_typed_busy_never_a_hang() {
    // One worker, a one-slot queue: the third concurrent connection
    // must be rejected with BUSY at the admission gate.
    let handle = start(
        seeded_catalog(),
        ServeConfig {
            workers: 1,
            max_pending: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Occupy the single worker (round-trip proves it picked us up).
    let mut occupant = TcpStream::connect(addr).expect("connects");
    occupant
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    assert!(matches!(
        roundtrip(&mut occupant, "PING"),
        Response::Ok { .. }
    ));

    // Fill the one queue slot (never served while the occupant
    // holds the worker), then overflow it.
    let _queued = TcpStream::connect(addr).expect("connects");
    // The queued connection is admitted asynchronously; give the
    // accept thread a moment before probing the full queue.
    std::thread::sleep(Duration::from_millis(200));
    let mut rejected = TcpStream::connect(addr).expect("connects");
    rejected
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let frame = read_frame(&mut rejected)
        .expect("BUSY frame reads")
        .expect("BUSY frame present");
    assert!(
        matches!(Response::parse(&frame), Ok(Response::Busy { .. })),
        "over-capacity connection must get a typed BUSY, got {frame:?}"
    );

    assert!(handle.stats().rejected_busy >= 1);
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 0);
}

#[test]
fn malformed_requests_round_trip_as_typed_errors() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let cases: &[(&str, &str)] = &[
        ("FROBNICATE", "protocol"),
        ("QUERY\n", "protocol"),
        ("MERGE not an identifier\nSELECT * FROM ra", "protocol"),
        ("QUERY\nSELEC * FROM ra", "parse"),
        ("QUERY\nSELECT * FROM ghost", "unknown-relation"),
        ("QUERY\nSELECT phantom FROM ra", "unknown-attribute"),
        ("QUERY\n\u{0}\u{1}garbage", "lex"),
    ];
    for (payload, expected_kind) in cases {
        match roundtrip(&mut conn, payload) {
            Response::Err { kind, .. } => {
                assert_eq!(&kind, expected_kind, "for request {payload:?}")
            }
            other => panic!("{payload:?} must be a typed ERR, got {other:?}"),
        }
        // The session survives every malformed request: the very next
        // request on the same connection succeeds.
        assert!(
            matches!(roundtrip(&mut conn, "PING"), Response::Ok { .. }),
            "session must stay usable after {payload:?}"
        );
    }

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 0, "typed errors, not panics: {stats:?}");
    assert_eq!(stats.errors, cases.len() as u64);
}

#[test]
fn merge_publishes_a_new_generation_and_is_queryable() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let merged = roundtrip(&mut conn, "MERGE m0\nSELECT * FROM ra UNION rb");
    let Response::Ok { body } = merged else {
        panic!("MERGE must succeed, got {merged:?}");
    };
    assert!(body.contains("merged m0"), "{body}");
    assert!(body.contains("generation=1"), "{body}");

    // The merged binding is immediately queryable...
    let queried = roundtrip(&mut conn, "QUERY\nSELECT * FROM m0 WITH SN > 0");
    let Response::Ok { body } = queried else {
        panic!("query over merged binding must succeed, got {queried:?}");
    };
    assert!(body.starts_with("tuples=6"), "{body}");
    // ... at the bumped generation.
    assert!(body.contains("generation=1"), "{body}");

    handle.shutdown();
    assert_eq!(handle.join().merges, 1);
}

#[test]
fn explain_reports_cache_hits_after_execution() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let q = "EXPLAIN\nSELECT * FROM ra UNION rb WITH SN > 0.5";
    let Response::Ok { body } = roundtrip(&mut conn, q) else {
        panic!("explain fails")
    };
    assert!(body.contains("plan cache: miss"), "{body}");

    let Response::Ok { .. } =
        roundtrip(&mut conn, "QUERY\nSELECT * FROM ra UNION rb WITH SN > 0.5")
    else {
        panic!("query fails")
    };
    let Response::Ok { body } = roundtrip(&mut conn, q) else {
        panic!("explain fails")
    };
    assert!(
        body.contains("plan cache: hit — lowering/rewrite skipped"),
        "{body}"
    );

    handle.shutdown();
    handle.join();
}
