//! End-to-end replication over real sockets: a durable primary and a
//! durable follower exchange the FOLLOW stream; the follower serves
//! reads at the applied generation, rejects writes, survives its own
//! restarts, and promotes into a writable primary — by verb, and
//! automatically when the primary dies.

use evirel_query::{Catalog, DurableCatalog};
use evirel_serve::protocol::{read_frame, write_frame, Response};
use evirel_serve::{start_with_durability, FollowConfig, ServeConfig, ServerHandle};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-serve-repl-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn seeded() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    catalog
}

fn config() -> ServeConfig {
    ServeConfig {
        poll_interval: Duration::from_millis(25),
        ..ServeConfig::default()
    }
}

/// Boot a durable server over `dir` the way the binary does: recover
/// first, recovered bindings win collisions with the seeds.
fn boot_with(dir: &PathBuf, config: ServeConfig) -> ServerHandle {
    let (durable, recovered) = DurableCatalog::open(dir).expect("data dir recovers");
    let mut catalog = seeded();
    for name in recovered
        .names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>()
    {
        if let Some(stored) = recovered.get_stored(&name) {
            catalog.attach(name, stored);
        }
    }
    start_with_durability(catalog, config, Some(durable)).expect("server starts")
}

fn boot_primary(dir: &PathBuf) -> ServerHandle {
    boot_with(dir, config())
}

/// Boot a primary on a *fixed* address (so a reborn incarnation is
/// reachable where the follower keeps dialing).
fn boot_primary_at(dir: &PathBuf, addr: &str) -> ServerHandle {
    boot_with(
        dir,
        ServeConfig {
            addr: addr.to_owned(),
            ..config()
        },
    )
}

/// Reserve an ephemeral port and release it for immediate reuse.
fn reserved_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

fn boot_follower_of(dir: &PathBuf, primary_addr: &str) -> ServerHandle {
    let follow = FollowConfig {
        initial_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(100),
        ..FollowConfig::new(primary_addr)
    };
    boot_with(
        dir,
        ServeConfig {
            follow: Some(follow),
            ..config()
        },
    )
}

fn boot_follower(dir: &PathBuf, primary: &ServerHandle) -> ServerHandle {
    boot_follower_with(dir, primary, FollowConfig::new(primary.addr().to_string()))
}

fn boot_follower_with(dir: &PathBuf, primary: &ServerHandle, follow: FollowConfig) -> ServerHandle {
    let follow = FollowConfig {
        primary: primary.addr().to_string(),
        initial_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(100),
        ..follow
    };
    boot_with(
        dir,
        ServeConfig {
            follow: Some(follow),
            ..config()
        },
    )
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn roundtrip(stream: &mut TcpStream, payload: &str) -> Response {
    write_frame(stream, payload).expect("request frame writes");
    let reply = read_frame(stream)
        .expect("response frame reads")
        .expect("server replied");
    Response::parse(&reply).expect("response parses")
}

fn ok_body(r: Response) -> String {
    match r {
        Response::Ok { body } => body,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// Block until `cond` holds (polling), or panic after 10 s.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Block until the follower's applied catalog generation reaches
/// `generation`.
fn wait_applied(follower: &ServerHandle, generation: u64) {
    wait_until(
        &format!("follower to apply generation {generation}"),
        || follower.catalog().generation() >= generation,
    );
}

#[test]
fn follower_applies_merges_and_serves_reads_but_rejects_writes() {
    let pdir = fresh_dir("p-basic");
    let fdir = fresh_dir("f-basic");
    let primary = boot_primary(&pdir);
    let follower = boot_follower(&fdir, &primary);

    // Replicated state flows: merge on the primary, read on the
    // follower at the very generation the primary published.
    let mut pc = connect(&primary);
    let body = ok_body(roundtrip(&mut pc, "MERGE m1\nSELECT * FROM ra UNION rb"));
    assert!(body.contains("generation=1"), "{body}");
    wait_applied(&follower, 1);
    let mut fc = connect(&follower);
    let q = ok_body(roundtrip(&mut fc, "QUERY\nSELECT * FROM m1 WITH SN > 0"));
    assert!(q.starts_with("tuples=6"), "follower must serve m1: {q}");
    assert!(q.contains("generation=1"), "{q}");

    // The replicated record is *durable* on the follower before it is
    // readable: its own STATS durability line says so.
    let fstats = ok_body(roundtrip(&mut fc, "STATS"));
    assert!(fstats.contains("generation_committed=1"), "{fstats}");
    assert!(fstats.contains("role=follower"), "{fstats}");
    assert!(fstats.contains("connected=1"), "{fstats}");

    // Writes are refused with the typed kind, and refused *cheaply*
    // (no generation consumed).
    match roundtrip(&mut fc, "MERGE nope\nSELECT * FROM ra WITH SN > 0") {
        Response::Err { kind, message } => {
            assert_eq!(kind, "readonly");
            assert!(message.contains("standby"), "{message}");
        }
        other => panic!("MERGE on a follower must ERR readonly, got {other:?}"),
    }
    assert_eq!(follower.catalog().generation(), 1);

    // The primary sees its subscriber.
    let pstats = ok_body(roundtrip(&mut pc, "STATS"));
    assert!(pstats.contains("role=primary"), "{pstats}");
    assert!(pstats.contains("followers=1"), "{pstats}");

    // A second merge streams too — including DROP-free rebinds of the
    // same name (last writer wins on both sides).
    ok_body(roundtrip(
        &mut pc,
        "MERGE m1\nSELECT * FROM ra WHERE speciality IS {si} WITH SN > 0",
    ));
    wait_applied(&follower, 2);
    let q = ok_body(roundtrip(&mut fc, "QUERY\nSELECT * FROM m1 WITH SN > 0"));
    assert!(q.starts_with("tuples=2"), "rebound m1 must shrink: {q}");

    roundtrip(&mut pc, "SHUTDOWN");
    follower.shutdown();
    assert_eq!(follower.join().panics, 0);
    assert_eq!(primary.join().panics, 0);
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn promote_verb_flips_a_follower_into_a_writable_server() {
    let pdir = fresh_dir("p-promote");
    let fdir = fresh_dir("f-promote");
    let primary = boot_primary(&pdir);
    let follower = boot_follower(&fdir, &primary);

    let mut pc = connect(&primary);
    ok_body(roundtrip(&mut pc, "MERGE base\nSELECT * FROM ra UNION rb"));
    wait_applied(&follower, 1);

    let mut fc = connect(&follower);
    let body = ok_body(roundtrip(&mut fc, "PROMOTE"));
    assert!(body.starts_with("promoted generation=1"), "{body}");
    // Idempotent: a second PROMOTE still succeeds.
    ok_body(roundtrip(&mut fc, "PROMOTE"));

    // The promoted server accepts writes, continuing the generation
    // sequence from the last applied one.
    let body = ok_body(roundtrip(
        &mut fc,
        "MERGE local\nSELECT * FROM base WITH SN > 0.4",
    ));
    assert!(body.contains("generation=2"), "{body}");
    let fstats = ok_body(roundtrip(&mut fc, "STATS"));
    assert!(fstats.contains("role=promoted"), "{fstats}");
    // ...and the write is durable on the *follower's* directory.
    assert!(fstats.contains("generation_committed=2"), "{fstats}");

    // PROMOTE on a primary is a cheap no-op.
    let body = ok_body(roundtrip(&mut pc, "PROMOTE"));
    assert!(body.starts_with("already primary"), "{body}");

    roundtrip(&mut pc, "SHUTDOWN");
    roundtrip(&mut fc, "SHUTDOWN");
    primary.join();
    follower.join();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn fresh_follower_resyncs_past_a_checkpointed_primary_history() {
    let pdir = fresh_dir("p-resync");
    let fdir = fresh_dir("f-resync");

    // Incarnation 1 of the primary: two merges, clean shutdown — the
    // join() checkpoint folds the journal into the manifest, so the
    // reborn primary has *no* retained records below generation 2.
    {
        let primary = boot_primary(&pdir);
        let mut pc = connect(&primary);
        ok_body(roundtrip(&mut pc, "MERGE m1\nSELECT * FROM ra UNION rb"));
        ok_body(roundtrip(
            &mut pc,
            "MERGE m2\nSELECT * FROM ra WITH SN > 0.4",
        ));
        roundtrip(&mut pc, "SHUTDOWN");
        primary.join();
    }

    // A brand-new follower (cursor 0) cannot tail a history that
    // starts at the checkpoint floor — it must take the resync path
    // and still converge.
    let primary = boot_primary(&pdir);
    let follower = boot_follower(&fdir, &primary);
    wait_applied(&follower, 2);
    assert!(
        follower.replication().resyncs >= 1,
        "a fresh follower behind the checkpoint floor must resync, got {:?}",
        follower.replication()
    );
    let mut fc = connect(&follower);
    for (name, tuples) in [("m1", "tuples=6"), ("m2", "tuples=")] {
        let q = ok_body(roundtrip(
            &mut fc,
            &format!("QUERY\nSELECT * FROM {name} WITH SN > 0"),
        ));
        assert!(q.starts_with(tuples), "{name} after resync: {q}");
    }
    // Post-resync, the stream degrades to ordinary tailing.
    let mut pc = connect(&primary);
    ok_body(roundtrip(&mut pc, "MERGE m3\nSELECT * FROM m1 WITH SN > 0"));
    wait_applied(&follower, 3);

    roundtrip(&mut pc, "SHUTDOWN");
    follower.shutdown();
    follower.join();
    primary.join();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn restarted_follower_resumes_from_its_applied_generation() {
    let pdir = fresh_dir("p-resume");
    let fdir = fresh_dir("f-resume");
    let primary = boot_primary(&pdir);
    let mut pc = connect(&primary);

    // Follower incarnation 1 applies generation 1, then shuts down
    // cleanly (checkpointing its own directory).
    {
        let follower = boot_follower(&fdir, &primary);
        ok_body(roundtrip(&mut pc, "MERGE m1\nSELECT * FROM ra UNION rb"));
        wait_applied(&follower, 1);
        follower.shutdown();
        follower.join();
    }

    // The primary advances while the follower is down.
    ok_body(roundtrip(
        &mut pc,
        "MERGE m2\nSELECT * FROM ra WITH SN > 0.4",
    ));

    // Incarnation 2 recovers generation 1 from its own directory and
    // resumes the stream from there — applying only the missed merge.
    let follower = boot_follower(&fdir, &primary);
    wait_applied(&follower, 2);
    let mut fc = connect(&follower);
    for name in ["m1", "m2"] {
        let q = ok_body(roundtrip(
            &mut fc,
            &format!("QUERY\nSELECT * FROM {name} WITH SN > 0"),
        ));
        assert!(q.starts_with("tuples="), "{name} after resume: {q}");
    }

    roundtrip(&mut pc, "SHUTDOWN");
    follower.shutdown();
    follower.join();
    primary.join();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn promote_on_disconnect_fails_over_when_the_primary_dies() {
    let pdir = fresh_dir("p-failover");
    let fdir = fresh_dir("f-failover");
    let primary = boot_primary(&pdir);
    let follower = boot_follower_with(
        &fdir,
        &primary,
        FollowConfig {
            promote_on_disconnect: true,
            retry_budget: 2,
            ..FollowConfig::new(String::new())
        },
    );

    let mut pc = connect(&primary);
    ok_body(roundtrip(
        &mut pc,
        "MERGE committed\nSELECT * FROM ra UNION rb",
    ));
    wait_applied(&follower, 1);

    // The primary dies (clean join here; the kill -9 variant lives in
    // scripts/failover.sh). The follower's reconnects exhaust the
    // budget and it promotes itself.
    roundtrip(&mut pc, "SHUTDOWN");
    primary.join();
    wait_until("automatic promotion", || {
        follower.replication().role == "promoted"
    });

    // Zero committed merges lost, and the survivor accepts writes.
    let mut fc = connect(&follower);
    let q = ok_body(roundtrip(
        &mut fc,
        "QUERY\nSELECT * FROM committed WITH SN > 0",
    ));
    assert!(q.starts_with("tuples=6"), "{q}");
    let body = ok_body(roundtrip(
        &mut fc,
        "MERGE after\nSELECT * FROM committed WITH SN > 0",
    ));
    assert!(body.contains("generation=2"), "{body}");

    roundtrip(&mut fc, "SHUTDOWN");
    follower.join();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

/// Regression: a FOLLOW stream dropped by an **unclean** primary
/// death must resume from the follower's *applied* generation — not
/// from the generation the follower session originally subscribed
/// at. The reborn primary (recovered from its journal, so its
/// retained window still starts at generation 1) will happily offer
/// the whole history to a stale cursor; a follower that re-requests
/// from its session-start generation would then try to re-apply
/// records it already holds (rejected, reconnect, forever — never
/// converging) or, with a laxer apply, double-apply them. The
/// resume cursor must be re-read from the follower's durable state
/// at every reconnect.
#[test]
fn torn_stream_resumes_from_applied_generation_never_reapplies_or_skips() {
    let pdir = fresh_dir("p-torn");
    let fdir = fresh_dir("f-torn");
    let addr = reserved_addr();

    // Incarnation 1: the follower applies generation 1, then the
    // primary dies mid-stream WITHOUT a checkpoint (its journal, and
    // therefore its reborn retained window, still begins at
    // generation 1).
    let primary = boot_primary_at(&pdir, &addr);
    let follower = boot_follower_of(&fdir, &addr);
    let mut pc = connect(&primary);
    ok_body(roundtrip(&mut pc, "MERGE m1\nSELECT * FROM ra UNION rb"));
    wait_applied(&follower, 1);
    assert_eq!(follower.replication().records_applied, 1);
    primary.shutdown();
    std::mem::forget(primary);
    std::thread::sleep(Duration::from_millis(200));

    // Incarnation 2 on the same port advances the history by one.
    let primary = boot_primary_at(&pdir, &addr);
    let mut pc = connect(&primary);
    ok_body(roundtrip(
        &mut pc,
        "MERGE m2\nSELECT * FROM m1 WITH SN > 0.4",
    ));

    // The follower reconnects on its own. With a stale resume cursor
    // it would be offered generation 1 again and never converge;
    // resuming from the applied generation it applies exactly the
    // one record it misses.
    wait_applied(&follower, 2);
    assert_eq!(
        follower.replication().records_applied,
        2,
        "exactly one record applied per generation — no re-apply, no skip: {:?}",
        follower.replication()
    );
    assert_eq!(
        follower.replication().resyncs,
        0,
        "{:?}",
        follower.replication()
    );
    let mut fc = connect(&follower);
    let q = ok_body(roundtrip(&mut fc, "QUERY\nSELECT * FROM m2 WITH SN > 0"));
    assert!(q.starts_with("tuples="), "{q}");

    roundtrip(&mut pc, "SHUTDOWN");
    follower.shutdown();
    follower.join();
    primary.join();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

#[test]
fn follow_without_durability_is_a_typed_error_both_ways() {
    // A server without a data dir refuses FOLLOW...
    let handle = evirel_serve::start(seeded(), config()).expect("server starts");
    let mut c = connect(&handle);
    write_frame(&mut c, "FOLLOW 0").expect("writes");
    let reply = read_frame(&mut c).expect("reads").expect("replied");
    match Response::parse(&reply).expect("parses") {
        Response::Err { kind, .. } => assert_eq!(kind, "unsupported"),
        other => panic!("expected ERR unsupported, got {other:?}"),
    }
    roundtrip(&mut c, "SHUTDOWN");
    handle.join();

    // ...and a follower cannot even start without one.
    match start_with_durability(
        seeded(),
        ServeConfig {
            follow: Some(FollowConfig::new("127.0.0.1:1")),
            ..config()
        },
        None,
    ) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("follower without durability must not start"),
    }
}

#[test]
fn diverged_follower_is_refused() {
    // A subscriber claiming a generation ahead of the primary's
    // committed history gets ERR diverged, not an idle stream.
    let pdir = fresh_dir("p-diverged");
    let primary = boot_primary(&pdir);
    let mut c = connect(&primary);
    ok_body(roundtrip(&mut c, "MERGE m1\nSELECT * FROM ra UNION rb"));
    write_frame(&mut c, "FOLLOW 99").expect("writes");
    let reply = read_frame(&mut c).expect("reads").expect("replied");
    match Response::parse(&reply).expect("parses") {
        Response::Err { kind, message } => {
            assert_eq!(kind, "diverged");
            assert!(message.contains("ahead"), "{message}");
        }
        other => panic!("expected ERR diverged, got {other:?}"),
    }
    let mut c2 = connect(&primary);
    roundtrip(&mut c2, "SHUTDOWN");
    primary.join();
    std::fs::remove_dir_all(&pdir).ok();
}
