//! Durable-service integration: a server started with a data
//! directory journals every MERGE, checkpoints on shutdown, and a
//! *re-started* server recovers the merged catalog — same bindings,
//! same tuples, monotonic generations — whether the previous
//! incarnation shut down cleanly (checkpoint) or was dropped with
//! only the journal on disk.

use evirel_query::{Catalog, DurableCatalog};
use evirel_serve::protocol::{read_frame, write_frame, Response};
use evirel_serve::{start_with_durability, ServeConfig, ServerHandle};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-serve-dur-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn seeded() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    catalog
}

/// Boot a durable server over `dir`, overlaying seeds the way the
/// binary does: recover first, recovered bindings win collisions.
fn boot(dir: &PathBuf) -> ServerHandle {
    let (durable, recovered) = DurableCatalog::open(dir).expect("data dir recovers");
    let mut catalog = seeded();
    for name in recovered
        .names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>()
    {
        if let Some(stored) = recovered.get_stored(&name) {
            catalog.attach(name, stored);
        }
    }
    start_with_durability(catalog, ServeConfig::default(), Some(durable)).expect("server starts")
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("connects");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn roundtrip(stream: &mut TcpStream, payload: &str) -> Response {
    write_frame(stream, payload).expect("request frame writes");
    let reply = read_frame(stream)
        .expect("response frame reads")
        .expect("server replied");
    Response::parse(&reply).expect("response parses")
}

fn ok_body(r: Response) -> String {
    match r {
        Response::Ok { body } => body,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// Extract `key=value` as u64 from a STATS body.
fn stat(body: &str, key: &str) -> u64 {
    body.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {body:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("{key} not a number: {e}"))
}

#[test]
fn merge_survives_clean_shutdown_and_restart() {
    let dir = fresh_dir("clean");

    // Incarnation 1: merge, confirm the STATS durability line, clean
    // shutdown (join checkpoints).
    let gen_after_merge;
    {
        let handle = boot(&dir);
        let mut c = connect(&handle);
        let body = ok_body(roundtrip(&mut c, "MERGE m1\nSELECT * FROM ra UNION rb"));
        assert!(body.starts_with("merged m1"), "{body}");
        let stats = ok_body(roundtrip(&mut c, "STATS"));
        assert!(
            stats.contains("durability dir="),
            "STATS must report durability: {stats}"
        );
        assert_eq!(stat(&stats, "generation_committed"), 1);
        assert_eq!(stat(&stats, "journal_records"), 1);
        gen_after_merge = stat(&stats, "generation");
        assert_eq!(gen_after_merge, 1);
        // The merged binding serves from its durable segment at once.
        let q = ok_body(roundtrip(&mut c, "QUERY\nSELECT * FROM m1 WITH SN > 0"));
        assert!(q.starts_with("tuples=6"), "{q}");
        roundtrip(&mut c, "SHUTDOWN");
        let final_stats = handle.join();
        assert_eq!(final_stats.panics, 0);
    }
    // Clean shutdown checkpointed: manifest present, journal empty
    // (8-byte header only).
    assert!(dir.join("MANIFEST.evm").exists());
    assert_eq!(std::fs::metadata(dir.join("journal.evj")).unwrap().len(), 8);

    // Incarnation 2: the merge is back, the generation continues past
    // the recovered one, and a further merge also persists.
    {
        let handle = boot(&dir);
        let mut c = connect(&handle);
        let stats = ok_body(roundtrip(&mut c, "STATS"));
        assert_eq!(
            stat(&stats, "generation"),
            gen_after_merge,
            "published generation must resume from the recovered one"
        );
        let q = ok_body(roundtrip(&mut c, "QUERY\nSELECT * FROM m1 WITH SN > 0"));
        assert!(q.starts_with("tuples=6"), "recovered m1 must serve: {q}");
        let body = ok_body(roundtrip(
            &mut c,
            "MERGE m2\nSELECT * FROM m1 WITH SN > 0.4",
        ));
        assert!(body.contains("generation=2"), "{body}");
        roundtrip(&mut c, "SHUTDOWN");
        handle.join();
    }

    // Incarnation 3: both merges recovered.
    {
        let handle = boot(&dir);
        let mut c = connect(&handle);
        let stats = ok_body(roundtrip(&mut c, "STATS"));
        assert_eq!(stat(&stats, "generation"), 2);
        for name in ["m1", "m2"] {
            let q = ok_body(roundtrip(
                &mut c,
                &format!("QUERY\nSELECT * FROM {name} WITH SN > 0"),
            ));
            assert!(q.starts_with("tuples="), "{name}: {q}");
        }
        roundtrip(&mut c, "SHUTDOWN");
        handle.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_survives_unclean_drop_via_journal_alone() {
    let dir = fresh_dir("unclean");

    // Incarnation 1: merge, then *abandon* the server without
    // SHUTDOWN/join — no checkpoint happens; only the fsync'd journal
    // and segment are on disk. (Dropping the handle doesn't stop the
    // server, so ask it to stop but skip join's checkpoint by opening
    // the next incarnation on the directory after the workers exit.)
    {
        let handle = boot(&dir);
        let mut c = connect(&handle);
        ok_body(roundtrip(&mut c, "MERGE crashy\nSELECT * FROM ra UNION rb"));
        // Stop the server WITHOUT the join() checkpoint: simulate the
        // crash by shutting down workers and forgetting the handle.
        handle.shutdown();
        std::mem::forget(handle);
        // Give workers a moment to release the port/files (they hold
        // nothing that blocks recovery; this just quiets the test).
        std::thread::sleep(Duration::from_millis(200));
    }
    // No checkpoint ran: the manifest is absent, the journal is not.
    assert!(!dir.join("MANIFEST.evm").exists());
    assert!(std::fs::metadata(dir.join("journal.evj")).unwrap().len() > 8);

    // Incarnation 2: journal replay alone recovers the merge.
    let handle = boot(&dir);
    let mut c = connect(&handle);
    let stats = ok_body(roundtrip(&mut c, "STATS"));
    assert_eq!(stat(&stats, "generation"), 1);
    let q = ok_body(roundtrip(&mut c, "QUERY\nSELECT * FROM crashy WITH SN > 0"));
    assert!(q.starts_with("tuples=6"), "{q}");
    roundtrip(&mut c, "SHUTDOWN");
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
