//! Integration tests for the observability surface: the `METRICS`
//! scrape endpoint over a live server, and the satellite guarantee
//! that `STATS` and `METRICS` read the *same* registry — the two
//! renderings can never disagree on a number.

use evirel_query::Catalog;
use evirel_serve::protocol::{read_frame, write_frame, Response};
use evirel_serve::{start, ServeConfig};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::net::TcpStream;
use std::time::Duration;

fn seeded_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    catalog
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn roundtrip(stream: &mut TcpStream, payload: &str) -> Response {
    write_frame(stream, payload).expect("request frame writes");
    let reply = read_frame(stream)
        .expect("response frame reads")
        .expect("server replied");
    Response::parse(&reply).expect("response parses")
}

fn ok_body(response: Response) -> String {
    match response {
        Response::Ok { body } => body,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// The value of an exact series (name including labels, if any) in a
/// Prometheus text exposition.
fn series(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (series_name, value) = line.split_once(' ')?;
            (series_name == name).then(|| {
                value
                    .parse()
                    .unwrap_or_else(|e| panic!("series {name} value {value:?}: {e}"))
            })
        })
        .unwrap_or_else(|| panic!("series {name} missing from exposition:\n{exposition}"))
}

/// The value of `key=` on the `STATS` line starting with `prefix`.
fn stat(body: &str, prefix: &str, key: &str) -> u64 {
    let line = body
        .lines()
        .find(|line| line.starts_with(prefix))
        .unwrap_or_else(|| panic!("no line starting with {prefix:?} in:\n{body}"));
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= on {line:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("{key} on {line:?}: {e}"))
}

#[test]
fn metrics_scrape_covers_every_subsystem() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let mut stream = connect(handle.addr());

    // Traffic across verbs: a cold query, the same query warm (cache
    // hit), and a write.
    let query = "QUERY\nSELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;";
    assert!(matches!(roundtrip(&mut stream, query), Response::Ok { .. }));
    assert!(matches!(roundtrip(&mut stream, query), Response::Ok { .. }));
    assert!(matches!(
        roundtrip(
            &mut stream,
            "MERGE merged\nSELECT * FROM ra UNION rb WITH SN > 0;"
        ),
        Response::Ok { .. }
    ));

    let exposition = ok_body(roundtrip(&mut stream, "METRICS"));

    // One family per subsystem, with `# TYPE` lines — the scrape is
    // self-describing.
    for family in [
        "# TYPE evirel_serve_requests_total counter",
        "# TYPE evirel_serve_request_seconds histogram",
        "# TYPE evirel_serve_queue_depth gauge",
        "# TYPE evirel_query_cache_hits_total counter",
        "# TYPE evirel_query_seconds histogram",
        "# TYPE evirel_store_pool_hits_total counter",
        "# TYPE evirel_catalog_generation gauge",
        "# TYPE evirel_repl_generation_lag gauge",
    ] {
        assert!(
            exposition.contains(family),
            "missing {family:?} in:\n{exposition}"
        );
    }

    // Per-verb counters reflect exactly the traffic sent above (the
    // METRICS request itself is counted before it renders).
    assert_eq!(
        series(&exposition, "evirel_serve_requests_total{verb=\"query\"}"),
        2
    );
    assert_eq!(
        series(&exposition, "evirel_serve_requests_total{verb=\"merge\"}"),
        1
    );
    assert_eq!(
        series(&exposition, "evirel_serve_requests_total{verb=\"metrics\"}"),
        1
    );
    assert_eq!(series(&exposition, "evirel_query_cache_hits_total"), 1);
    // Two cold plans: the first SELECT and the MERGE body.
    assert_eq!(series(&exposition, "evirel_query_cache_misses_total"), 2);
    assert_eq!(series(&exposition, "evirel_serve_merges_total"), 1);
    assert_eq!(series(&exposition, "evirel_serve_request_errors_total"), 0);
    assert_eq!(series(&exposition, "evirel_serve_panics_total"), 0);
    // The warm query's latency was observed into the per-verb
    // histogram: its _count matches the request counter.
    assert_eq!(
        series(
            &exposition,
            "evirel_serve_request_seconds_count{verb=\"query\"}"
        ),
        2
    );

    drop(stream);
    handle.shutdown();
    handle.join();
}

#[test]
fn stats_and_metrics_read_the_same_registry() {
    let handle = start(seeded_catalog(), ServeConfig::default()).expect("server starts");
    let mut stream = connect(handle.addr());

    let query = "QUERY\nSELECT * FROM rb WHERE rating >= 'gd' WITH SN > 0;";
    for _ in 0..3 {
        assert!(matches!(roundtrip(&mut stream, query), Response::Ok { .. }));
    }
    assert!(matches!(
        roundtrip(
            &mut stream,
            "MERGE both\nSELECT * FROM ra UNION rb WITH SN > 0;"
        ),
        Response::Ok { .. }
    ));

    let stats = ok_body(roundtrip(&mut stream, "STATS"));
    let exposition = ok_body(roundtrip(&mut stream, "METRICS"));

    // Every number STATS printed must come back identical from the
    // scrape — shared registry, one source of truth. Only the
    // request counter moved between the two calls: by exactly one,
    // for the METRICS request itself.
    assert_eq!(
        series(&exposition, "evirel_serve_requests_handled_total"),
        stat(&stats, "server ", "requests") + 1
    );
    for (series_name, prefix, key) in [
        (
            "evirel_serve_connections_accepted_total",
            "server ",
            "accepted",
        ),
        ("evirel_serve_busy_rejected_total", "server ", "busy"),
        ("evirel_serve_sessions_total", "server ", "sessions"),
        ("evirel_serve_request_errors_total", "server ", "errors"),
        ("evirel_serve_merges_total", "server ", "merges"),
        ("evirel_query_cache_entries", "cache ", "entries"),
        ("evirel_query_cache_hits_total", "cache ", "hits"),
        ("evirel_query_cache_misses_total", "cache ", "misses"),
        ("evirel_query_cache_stale_total", "cache ", "stale"),
        ("evirel_store_pool_hits_total", "pool ", "hits"),
        ("evirel_store_pool_misses_total", "pool ", "misses"),
        ("evirel_repl_records_sent_total", "replication ", "sent"),
        (
            "evirel_repl_records_applied_total",
            "replication ",
            "applied",
        ),
    ] {
        assert_eq!(
            series(&exposition, series_name),
            stat(&stats, prefix, key),
            "{series_name} disagrees with STATS {key}"
        );
    }

    drop(stream);
    handle.shutdown();
    handle.join();
}
