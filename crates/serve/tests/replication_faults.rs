//! The replication fault matrix, wire-free: the primary's FOLLOW
//! stream is captured into bytes, then
//!
//! * the **primary is killed at every send boundary** — the byte
//!   stream is truncated at every frame edge (±bytes into the header
//!   and payload) and at a sweep of interior positions; the follower
//!   applies the torn prefix, reconnects from its applied
//!   generation, and must converge bit-for-bit, never re-applying or
//!   skipping a record;
//! * the **follower is killed at every apply boundary** — a
//!   [`FailpointFs`] sweep over every fsync (and a stride of every
//!   write unit) of the apply path; after each simulated crash the
//!   follower recovers from its own directory, resumes, and must
//!   converge.
//!
//! Convergence means: same committed generation, same manifest
//! entries, same raw segment bytes as the primary.

use evirel_query::{DurableCatalog, SharedCatalog};
use evirel_serve::replicate::{apply_stream, serve_follow, ApplyCtx, SenderCtx};
use evirel_store::failpoint::FailpointFs;
use evirel_workload::generator::{generate, GeneratorConfig};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-replfault-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn rel(seed: u64, tuples: usize) -> evirel_relation::ExtendedRelation {
    generate(
        "R",
        &GeneratorConfig {
            tuples,
            domain_size: 4,
            evidential_attrs: 1,
            max_focal: 2,
            max_focal_size: 2,
            omega_mass: 0.2,
            uncertain_membership: 0.25,
            seed,
        },
    )
    .expect("generator config is valid")
}

/// A primary with a short history: five binds (two names rebound)
/// and one drop — six generations, several segment payloads.
fn build_primary(dir: &Path) -> (Mutex<DurableCatalog>, SharedCatalog) {
    let (durable, recovered) = DurableCatalog::open(dir).expect("primary dir opens");
    let shared = SharedCatalog::with_generation(recovered, 0);
    let durable = Mutex::new(durable);
    for (name, seed, tuples) in [
        ("ra", 1u64, 6usize),
        ("rb", 2, 3),
        ("ra", 3, 4),
        ("rc", 4, 5),
        ("rb", 5, 2),
    ] {
        let r = rel(seed, tuples);
        shared
            .update_at(|catalog, generation| {
                let path = durable.lock().unwrap().record_bind(name, &r, generation)?;
                catalog.attach_stored(name.to_owned(), path)?;
                Ok(())
            })
            .expect("primary bind");
    }
    shared
        .update_at(|catalog, generation| {
            durable.lock().unwrap().record_drop("rc", generation)?;
            catalog.deregister("rc");
            Ok(())
        })
        .expect("primary drop");
    (durable, shared)
}

/// A sink that records the stream and trips the sender's stop flag
/// at the first idle heartbeat — by then every record up to the
/// committed generation has been framed.
struct CaptureUntilIdle<'a> {
    buf: Vec<u8>,
    stop: &'a AtomicBool,
}

impl Write for CaptureUntilIdle<'_> {
    fn write(&mut self, b: &[u8]) -> io::Result<usize> {
        // write_frame sends each frame as one buffer: 4-byte header
        // then payload. A GEN heartbeat marks the stream idle.
        if b.len() > 4 && b[4..].starts_with(b"GEN ") {
            self.stop.store(true, Ordering::SeqCst);
            return Ok(b.len()); // swallow the heartbeat
        }
        self.buf.extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Capture the FOLLOW stream from `from` to the committed tip as raw
/// bytes (handshake frame stripped, trailing heartbeat swallowed).
fn capture(durable: &Mutex<DurableCatalog>, shared: &SharedCatalog, from: u64) -> Vec<u8> {
    let stop = AtomicBool::new(false);
    let sent = AtomicU64::new(0);
    let ctx = SenderCtx {
        catalog: shared,
        durable,
        stop: &stop,
        poll: Duration::from_millis(1),
        records_sent: &sent,
    };
    let mut sink = CaptureUntilIdle {
        buf: Vec::new(),
        stop: &stop,
    };
    serve_follow(&mut sink, &ctx, from).expect("capture never fails");
    // Strip the OK handshake frame — apply_stream consumes stream
    // frames only (the real follower reads the handshake itself).
    let hello_len = u32::from_be_bytes(sink.buf[..4].try_into().unwrap()) as usize;
    sink.buf.split_off(4 + hello_len)
}

/// Byte offsets where frames start within `stream` (plus the end).
fn frame_boundaries(stream: &[u8]) -> Vec<usize> {
    let mut at = 0usize;
    let mut bounds = vec![0];
    while at + 4 <= stream.len() {
        let len = u32::from_be_bytes(stream[at..at + 4].try_into().unwrap()) as usize;
        at += 4 + len;
        bounds.push(at.min(stream.len()));
    }
    bounds
}

/// The follower half, rebuilt after every simulated crash.
struct Follower {
    dir: PathBuf,
    durable: Mutex<DurableCatalog>,
    shared: SharedCatalog,
    applied: AtomicU64,
    resyncs: AtomicU64,
    primary_generation: AtomicU64,
    heartbeat_unix_ms: AtomicU64,
}

impl Follower {
    fn open(dir: PathBuf) -> Follower {
        let (durable, recovered) = DurableCatalog::open(&dir).expect("follower dir recovers");
        let generation = durable.recovered_generation();
        Follower {
            dir,
            durable: Mutex::new(durable),
            shared: SharedCatalog::with_generation(recovered, generation),
            applied: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            primary_generation: AtomicU64::new(0),
            heartbeat_unix_ms: AtomicU64::new(0),
        }
    }

    fn committed(&self) -> u64 {
        self.durable.lock().unwrap().committed_generation()
    }

    /// Feed `stream` through the real apply loop. Errors (torn
    /// frames, failpoint kills) are returned, not panicked — they
    /// are the point.
    fn apply(&self, stream: &[u8]) -> io::Result<()> {
        let stop = || false;
        let ctx = ApplyCtx {
            catalog: &self.shared,
            durable: &self.durable,
            stop: &stop,
            records_applied: &self.applied,
            resyncs: &self.resyncs,
            primary_generation: &self.primary_generation,
            heartbeat_unix_ms: &self.heartbeat_unix_ms,
        };
        let mut r = stream;
        apply_stream(&mut r, &ctx)
    }
}

/// Bit-for-bit convergence: committed generation, manifest entries,
/// raw segment bytes.
fn assert_converged(primary: &Mutex<DurableCatalog>, pdir: &Path, follower: &Follower) {
    let p = primary.lock().unwrap();
    let f = follower.durable.lock().unwrap();
    assert_eq!(
        f.committed_generation(),
        p.committed_generation(),
        "committed generations diverge"
    );
    let p_entries: Vec<_> = p.entries().cloned().collect();
    let f_entries: Vec<_> = f.entries().cloned().collect();
    assert_eq!(p_entries, f_entries, "manifest entries diverge");
    for entry in &p_entries {
        let want = std::fs::read(pdir.join(&entry.file)).expect("primary segment reads");
        let got = std::fs::read(follower.dir.join(&entry.file)).expect("follower segment reads");
        assert_eq!(want, got, "segment {} bytes diverge", entry.file);
    }
    assert_eq!(
        follower.shared.generation(),
        p.committed_generation(),
        "published generation lags the durable one"
    );
}

#[test]
fn primary_killed_at_every_send_boundary_converges_after_resume() {
    let pdir = fresh_dir("send-p");
    let (durable, shared) = build_primary(&pdir);
    let full = capture(&durable, &shared, 0);
    assert!(!full.is_empty());

    // Cut at every frame edge (±2 bytes: torn headers, torn
    // payloads) and a stride of interior positions.
    let mut cuts: Vec<usize> = frame_boundaries(&full)
        .into_iter()
        .flat_map(|b| [b.saturating_sub(2), b.saturating_sub(1), b, b + 1, b + 2])
        .filter(|&c| c <= full.len())
        .collect();
    let stride = (full.len() / 64).max(1);
    cuts.extend((0..full.len()).step_by(stride));
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let follower = Follower::open(fresh_dir("send-f"));
        // The wire dies mid-stream: apply whatever arrived. A torn
        // frame is an error; a cut between frames is a clean EOF.
        let _ = follower.apply(&full[..cut]);
        let applied = follower.committed();

        // Reconnect: resume from the applied generation. Nothing is
        // re-sent at or below it, and the suffix completes the
        // history.
        let resume = capture(&durable, &shared, applied);
        follower
            .apply(&resume)
            .unwrap_or_else(|e| panic!("resume after cut {cut} (applied {applied}): {e}"));
        assert_converged(&durable, &pdir, &follower);
        std::fs::remove_dir_all(&follower.dir).ok();
    }
    std::fs::remove_dir_all(&pdir).ok();
}

#[test]
fn follower_killed_at_every_fsync_and_write_stride_recovers_and_converges() {
    let pdir = fresh_dir("kill-p");
    let (durable, shared) = build_primary(&pdir);
    let full = capture(&durable, &shared, 0);

    // Pass 1: count the apply path's cost. The follower opens
    // *before* arming, matching the kill pass — the directory open
    // itself is the boot sequence, not the apply path under test.
    let (fsyncs, units) = {
        let fdir = fresh_dir("kill-observe");
        let follower = Follower::open(fdir.clone());
        let fp = FailpointFs::observe();
        follower.apply(&full).expect("observed apply succeeds");
        assert_converged(&durable, &pdir, &follower);
        let counts = (fp.fsyncs(), fp.units());
        drop(fp);
        std::fs::remove_dir_all(&fdir).ok();
        counts
    };
    assert!(fsyncs > 0, "the apply path must fsync");

    // Pass 2a: kill at every fsync boundary.
    let mut kill_points: Vec<(&str, u64)> = (1..=fsyncs).map(|k| ("fsync", k)).collect();
    // Pass 2b: kill at a stride of write-unit budgets (0 = before
    // the first durable byte).
    let stride = (units / 48).max(1);
    kill_points.extend((0..=units).step_by(stride as usize).map(|b| ("budget", b)));

    for (mode, at) in kill_points {
        let fdir = fresh_dir("kill-f");
        {
            let follower = Follower::open(fdir.clone());
            let fp = match mode {
                "fsync" => FailpointFs::kill_at_fsync(at),
                _ => FailpointFs::kill_after(at),
            };
            let outcome = follower.apply(&full);
            if !fp.fired() {
                // The kill point lies beyond this run's cost (e.g.
                // budget == units): the apply simply succeeded.
                outcome.unwrap_or_else(|e| panic!("unfired {mode} {at} must succeed: {e}"));
            }
            drop(fp);
            // The in-memory follower "dies" here with everything it
            // journaled before the kill.
        }
        // Reboot from disk alone, resume from the recovered applied
        // generation, converge.
        let follower = Follower::open(fdir.clone());
        let resume = capture(&durable, &shared, follower.committed());
        follower
            .apply(&resume)
            .unwrap_or_else(|e| panic!("resume after {mode} kill {at}: {e}"));
        assert_converged(&durable, &pdir, &follower);
        std::fs::remove_dir_all(&fdir).ok();
    }
    std::fs::remove_dir_all(&pdir).ok();
}

#[test]
fn resync_stream_survives_the_same_fault_matrix() {
    // Same two sweeps, but over a RESYNC stream: checkpoint the
    // primary so a cursor-0 follower is below the retained floor.
    let pdir = fresh_dir("resync-p");
    let (durable, shared) = build_primary(&pdir);
    durable.lock().unwrap().checkpoint().expect("checkpoint");
    let full = capture(&durable, &shared, 0);

    // Truncation sweep at frame edges.
    for cut in frame_boundaries(&full)
        .into_iter()
        .flat_map(|b| [b.saturating_sub(1), b, b + 3])
        .filter(|&c| c <= full.len())
    {
        let follower = Follower::open(fresh_dir("resync-cut-f"));
        let _ = follower.apply(&full[..cut]);
        // A torn snapshot must be invisible: either nothing was
        // installed (committed 0) or the whole snapshot was.
        let applied = follower.committed();
        assert!(
            applied == 0 || applied == durable.lock().unwrap().committed_generation(),
            "partial snapshot must never commit (got generation {applied})"
        );
        let resume = capture(&durable, &shared, applied);
        follower
            .apply(&resume)
            .unwrap_or_else(|e| panic!("resync resume after cut {cut}: {e}"));
        assert_converged(&durable, &pdir, &follower);
        std::fs::remove_dir_all(&follower.dir).ok();
    }

    // Fsync sweep over the install path.
    let fsyncs = {
        let fdir = fresh_dir("resync-observe");
        let follower = Follower::open(fdir.clone());
        let fp = FailpointFs::observe();
        follower.apply(&full).expect("observed resync succeeds");
        let n = fp.fsyncs();
        drop(fp);
        std::fs::remove_dir_all(&fdir).ok();
        n
    };
    for k in 1..=fsyncs {
        let fdir = fresh_dir("resync-kill-f");
        {
            let follower = Follower::open(fdir.clone());
            let fp = FailpointFs::kill_at_fsync(k);
            let _ = follower.apply(&full);
            drop(fp);
        }
        let follower = Follower::open(fdir.clone());
        let resume = capture(&durable, &shared, follower.committed());
        follower
            .apply(&resume)
            .unwrap_or_else(|e| panic!("resync resume after fsync kill {k}: {e}"));
        assert_converged(&durable, &pdir, &follower);
        std::fs::remove_dir_all(&fdir).ok();
    }
    std::fs::remove_dir_all(&pdir).ok();
}
