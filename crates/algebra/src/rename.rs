//! Renaming of relations and attributes (the classical ρ operator).
//!
//! Not described explicitly in the paper, but required by any usable
//! algebra — e.g. to align attribute names before a union, or to
//! disambiguate before a self-product.

use crate::error::AlgebraError;
use evirel_relation::{AttrType, ExtendedRelation, Schema};
use std::sync::Arc;

/// Rename the relation itself.
pub fn rename_relation(rel: &ExtendedRelation, name: &str) -> ExtendedRelation {
    let schema = Arc::new(rel.schema().renamed(name.to_owned()));
    rebuild(rel, schema)
}

/// Rename one attribute, preserving its type and key-ness.
///
/// # Errors
/// * [`AlgebraError::Relation`] if `from` does not exist or `to`
///   already exists.
pub fn rename_attribute(
    rel: &ExtendedRelation,
    from: &str,
    to: &str,
) -> Result<ExtendedRelation, AlgebraError> {
    let out_schema = Arc::new(attribute_renamed_schema(rel.schema(), from, to)?);
    Ok(rebuild(rel, out_schema))
}

/// The schema of [`rename_attribute`]'s result — exposed for the plan
/// layer's streaming rename operator.
///
/// # Errors
/// As [`rename_attribute`].
pub fn attribute_renamed_schema(
    schema: &Schema,
    from: &str,
    to: &str,
) -> Result<Schema, AlgebraError> {
    let pos = schema.position(from)?;
    if schema.position(to).is_ok() {
        return Err(AlgebraError::Relation(
            evirel_relation::RelationError::DuplicateAttribute {
                name: to.to_owned(),
            },
        ));
    }
    let mut builder = Schema::builder(schema.name().to_owned());
    for (i, attr) in schema.attrs().iter().enumerate() {
        let name = if i == pos { to } else { attr.name() };
        builder = match (attr.is_key(), attr.ty()) {
            (true, AttrType::Definite(kind)) => builder.key(name, *kind),
            (false, AttrType::Definite(kind)) => builder.definite(name, *kind),
            (_, AttrType::Evidential(domain)) => builder.evidential(name, Arc::clone(domain)),
        };
    }
    Ok(builder.build()?)
}

fn rebuild(rel: &ExtendedRelation, schema: Arc<Schema>) -> ExtendedRelation {
    let mut out = ExtendedRelation::new(Arc::clone(&schema));
    for t in rel.iter() {
        // Tuple values are positionally identical; only names changed.
        let rebuilt = evirel_relation::Tuple::new(&schema, t.values().to_vec(), t.membership())
            .expect("renaming preserves tuple validity");
        out.insert(rebuilt)
            .expect("renaming preserves keys and CWA");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Value};

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build()
    }

    #[test]
    fn rename_relation_keeps_tuples() {
        let r = rename_relation(&rel(), "S");
        assert_eq!(r.schema().name(), "S");
        assert_eq!(r.len(), 1);
        assert!(r.contains_key(&[Value::str("a")]));
    }

    #[test]
    fn rename_attribute_works() {
        let r = rename_attribute(&rel(), "d", "evidence").unwrap();
        assert!(r.schema().position("evidence").is_ok());
        assert!(r.schema().position("d").is_err());
        // Key attribute renaming keeps key-ness.
        let r = rename_attribute(&rel(), "k", "key").unwrap();
        assert!(r.schema().attr_by_name("key").unwrap().is_key());
    }

    #[test]
    fn rename_attribute_errors() {
        assert!(rename_attribute(&rel(), "zz", "y").is_err());
        assert!(rename_attribute(&rel(), "d", "k").is_err());
    }
}
