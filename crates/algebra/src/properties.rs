//! Empirical verifiers for the Closure and Boundedness properties
//! (§3.6, Theorem 1).
//!
//! * **Closure**: for any extended operation `o` and input relations
//!   with `sn > 0` tuples only, every tuple of `o(R₁, …, Rₙ)` has
//!   `sn > 0`.
//! * **Boundedness**: `{t ∈ o(R) : sn > 0} = {t ∈ o(R ∪̃ R̄) : sn > 0}`
//!   where `R̄` is the (hypothetical) complement of `R` — tuples with
//!   fresh keys and no necessary support (`sn = 0`). Query processing
//!   therefore never needs to consult complements, keeping evaluation
//!   finite.
//!
//! The paper proves Theorem 1 in technical report TR93-14, which is
//! not publicly retrievable; these verifiers check the properties
//! empirically on arbitrary inputs and back the property-based test
//! suite.

use crate::error::AlgebraError;
use evirel_relation::cwa::CwaPolicy;
use evirel_relation::{AttrType, AttrValue, ExtendedRelation, SupportPair, Tuple, Value};

/// Closure check: every stored tuple of `rel` has `sn > 0`.
pub fn satisfies_closure(rel: &ExtendedRelation) -> bool {
    rel.iter().all(|t| t.membership().is_positive())
}

/// Materialize `n` complement tuples for `rel`: fresh keys not present
/// in `rel`, default attribute values, and membership `(0, 1)` — the
/// CWA_ER interpretation of absent tuples.
///
/// # Errors
/// Tuple-construction errors (should not occur for well-formed
/// schemas).
pub fn complement_tuples(rel: &ExtendedRelation, n: usize) -> Result<Vec<Tuple>, AlgebraError> {
    let schema = rel.schema();
    let mut out = Vec::with_capacity(n);
    let mut counter = 0usize;
    while out.len() < n {
        let mut values = Vec::with_capacity(schema.arity());
        for attr in schema.attrs() {
            let v = match attr.ty() {
                AttrType::Definite(kind) => {
                    let v = if attr.is_key() {
                        fresh_value(*kind, counter)
                    } else {
                        default_value(*kind)
                    };
                    AttrValue::Definite(v)
                }
                AttrType::Evidential(domain) => AttrValue::Evidential(
                    evirel_evidence::MassFunction::vacuous(std::sync::Arc::clone(domain.frame()))
                        .map_err(evirel_relation::RelationError::from)?,
                ),
            };
            values.push(v);
        }
        let tuple = Tuple::new(schema, values, SupportPair::unknown())?;
        let key = tuple.key(schema);
        counter += 1;
        if rel.contains_key(&key) {
            continue; // extraordinarily unlikely, but keys must be fresh
        }
        out.push(tuple);
    }
    Ok(out)
}

fn fresh_value(kind: evirel_relation::ValueKind, i: usize) -> Value {
    match kind {
        evirel_relation::ValueKind::Str => Value::str(format!("⊥complement-{i}")),
        evirel_relation::ValueKind::Int => Value::int(i64::MIN / 2 + i as i64),
        evirel_relation::ValueKind::Float => Value::float(-1e308 + i as f64),
    }
}

fn default_value(kind: evirel_relation::ValueKind) -> Value {
    match kind {
        evirel_relation::ValueKind::Str => Value::str(""),
        evirel_relation::ValueKind::Int => Value::int(0),
        evirel_relation::ValueKind::Float => Value::float(0.0),
    }
}

/// `rel` with `n` complement tuples admitted (`sn = 0`), representing
/// `R ∪̃ R̄` from the boundedness statement.
///
/// # Errors
/// As [`complement_tuples`].
pub fn augment_with_complement(
    rel: &ExtendedRelation,
    n: usize,
) -> Result<ExtendedRelation, AlgebraError> {
    let mut out = rel.clone();
    for t in complement_tuples(rel, n)? {
        out.insert_with_policy(t, CwaPolicy::AllowZero)
            .map_err(AlgebraError::Relation)?;
    }
    Ok(out)
}

/// Boundedness check for a unary operation: `op(R)` and
/// `op(R ∪̃ R̄)` must agree on their `sn > 0` tuples.
///
/// # Errors
/// Errors raised by `op` itself.
pub fn check_boundedness_unary<F>(op: F, rel: &ExtendedRelation) -> Result<bool, AlgebraError>
where
    F: Fn(&ExtendedRelation) -> Result<ExtendedRelation, AlgebraError>,
{
    let plain = op(rel)?;
    let augmented = op(&augment_with_complement(rel, COMPLEMENT_SAMPLE)?)?;
    Ok(positive_eq(&plain, &augmented))
}

/// Boundedness check for a binary operation: both operands are
/// augmented with complements.
///
/// # Errors
/// Errors raised by `op` itself.
pub fn check_boundedness_binary<F>(
    op: F,
    left: &ExtendedRelation,
    right: &ExtendedRelation,
) -> Result<bool, AlgebraError>
where
    F: Fn(&ExtendedRelation, &ExtendedRelation) -> Result<ExtendedRelation, AlgebraError>,
{
    let plain = op(left, right)?;
    let augmented = op(
        &augment_with_complement(left, COMPLEMENT_SAMPLE)?,
        &augment_with_complement(right, COMPLEMENT_SAMPLE)?,
    )?;
    Ok(positive_eq(&plain, &augmented))
}

/// Number of complement tuples materialized per relation by the
/// boundedness verifiers.
pub const COMPLEMENT_SAMPLE: usize = 3;

/// Compare the `sn > 0` tuple sets of two relations (keyed, order
/// independent, `f64` tolerance).
fn positive_eq(a: &ExtendedRelation, b: &ExtendedRelation) -> bool {
    let a_pos: Vec<_> = a
        .iter_keyed()
        .filter(|(_, t)| t.membership().is_positive())
        .collect();
    let b_pos: Vec<_> = b
        .iter_keyed()
        .filter(|(_, t)| t.membership().is_positive())
        .collect();
    if a_pos.len() != b_pos.len() {
        return false;
    }
    a_pos
        .iter()
        .all(|(key, t)| b.get_by_key(key).is_some_and(|o| o.approx_eq(t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::predicate::{Operand, ThetaOp};
    use crate::select::select;
    use crate::threshold::Threshold;
    use crate::union::union_extended;
    use crate::{join, product, project};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, ValueKind};
    use std::sync::Arc;

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap())
    }

    fn rel(name: &str, rows: &[(&str, &str, f64)]) -> ExtendedRelation {
        let schema = Arc::new(
            Schema::builder(name)
                .key_str("k")
                .definite("v", ValueKind::Int)
                .evidential("d", domain())
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for (k, label, sn) in rows {
            b = b
                .tuple(|t| {
                    t.set_str("k", *k)
                        .set_int("v", 1)
                        .set_evidence_with_omega("d", [(&[*label][..], 0.6)], 0.4)
                        .membership_pair(*sn, 1.0)
                })
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn closure_of_all_operations() {
        let a = rel("A", &[("p", "x", 1.0), ("q", "y", 0.5)]);
        let b = rel("B", &[("q", "x", 0.8), ("r", "z", 1.0)]);
        let pred = Predicate::is("d", ["x"]);
        assert!(satisfies_closure(
            &select(&a, &pred, &Threshold::POSITIVE).unwrap()
        ));
        assert!(satisfies_closure(&union_extended(&a, &b).unwrap().relation));
        assert!(satisfies_closure(&project(&a, &["k", "d"]).unwrap()));
        let b2 = crate::rename::rename_relation(&b, "B2");
        let b2 = crate::rename::rename_attribute(&b2, "k", "k2").unwrap();
        let b2 = crate::rename::rename_attribute(&b2, "v", "v2").unwrap();
        let b2 = crate::rename::rename_attribute(&b2, "d", "d2").unwrap();
        assert!(satisfies_closure(&product(&a, &b2).unwrap()));
        assert!(satisfies_closure(
            &join(
                &a,
                &b2,
                &Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::attr("k2")),
                &Threshold::POSITIVE
            )
            .unwrap()
        ));
    }

    #[test]
    fn complement_tuples_are_fresh_and_zero() {
        let a = rel("A", &[("p", "x", 1.0)]);
        let comps = complement_tuples(&a, 3).unwrap();
        assert_eq!(comps.len(), 3);
        for t in &comps {
            assert!(!t.membership().is_positive());
            assert!(!a.contains_key(&t.key(a.schema())));
        }
    }

    #[test]
    fn boundedness_of_select() {
        let a = rel("A", &[("p", "x", 1.0), ("q", "y", 0.5)]);
        let pred = Predicate::is("d", ["x"]);
        let ok = check_boundedness_unary(|r| select(r, &pred, &Threshold::POSITIVE), &a).unwrap();
        assert!(ok);
    }

    #[test]
    fn boundedness_of_project() {
        let a = rel("A", &[("p", "x", 1.0), ("q", "y", 0.5)]);
        let ok = check_boundedness_unary(|r| project(r, &["k", "d"]), &a).unwrap();
        assert!(ok);
    }

    #[test]
    fn boundedness_of_union() {
        let a = rel("A", &[("p", "x", 1.0), ("q", "y", 0.5)]);
        let b = rel("B", &[("q", "x", 0.8), ("r", "z", 1.0)]);
        let ok =
            check_boundedness_binary(|l, r| Ok(union_extended(l, r)?.relation), &a, &b).unwrap();
        assert!(ok);
    }

    #[test]
    fn boundedness_of_product_and_join() {
        let a = rel("A", &[("p", "x", 1.0)]);
        let b = rel("B", &[("q", "y", 0.8)]);
        let b = crate::rename::rename_relation(&b, "B2");
        let b = crate::rename::rename_attribute(&b, "k", "k2").unwrap();
        let b = crate::rename::rename_attribute(&b, "v", "v2").unwrap();
        let b = crate::rename::rename_attribute(&b, "d", "d2").unwrap();
        let ok = check_boundedness_binary(product, &a, &b).unwrap();
        assert!(ok);
        let pred = Predicate::is("d", ["x"]);
        let ok = check_boundedness_binary(|l, r| join(l, r, &pred, &Threshold::POSITIVE), &a, &b)
            .unwrap();
        assert!(ok);
    }
}
