//! The selection support function `F_SS` (§3.1.1).
//!
//! `F_SS(r, P)` assigns a support pair `(sn, sp)` quantifying the
//! degree to which tuple `r` satisfies selection condition `P`:
//!
//! * **is-predicate** `A is C`: `sn = Bel(C)`, `sp = Pls(C)` of the
//!   attribute's evidence set;
//! * **θ-predicate** `A θ B`:
//!   `sn = Σ_{aᵢ θ bⱼ is TRUE} m_A(aᵢ)·m_B(bⱼ)` where `aᵢ θ bⱼ` *is
//!   TRUE* iff the comparison holds for **all** pairs of members
//!   (∀s∀t), and `sp` sums pairs where it *may be TRUE* (∃s∃t);
//! * **conjunction**: the multiplicative rule
//!   `(sn_S·sn_T, sp_S·sp_T)` for independent predicates
//!   (Baldwin 1987; Hau & Kashyap 1990).
//!
//! θ comparisons are evaluated in *domain order* — the declared order
//! of the attribute domain's values (numeric order for integer
//! domains).

use crate::error::AlgebraError;
use crate::predicate::{Operand, Predicate, ThetaOp};
use evirel_evidence::{FocalSet, MassFunction};
use evirel_relation::{AttrDomain, AttrValue, Schema, SupportPair, Tuple, Value};
use std::sync::Arc;

/// A predicate operand resolved against a tuple.
enum Resolved {
    /// A definite value (from a definite attribute or a literal).
    Definite(Value),
    /// An evidence set together with the typed domain that orders it.
    Evidence(MassFunction<f64>, Arc<AttrDomain>),
    /// An evidence literal awaiting a domain from the opposite operand.
    PendingLiteral(Vec<(Vec<Value>, f64)>),
}

/// Compute `F_SS(r, P)` for tuple `tuple` of `schema`.
///
/// # Errors
/// * [`AlgebraError::Relation`] for unknown attributes or
///   out-of-domain values;
/// * [`AlgebraError::PredicateType`] for incomparable operands.
pub fn predicate_support(
    schema: &Schema,
    tuple: &Tuple,
    pred: &Predicate,
) -> Result<SupportPair, AlgebraError> {
    match pred {
        Predicate::Is { attr, values } => is_support(schema, tuple, attr, values),
        Predicate::Theta { left, op, right } => theta_support(schema, tuple, left, *op, right),
        Predicate::And(a, b) => {
            let sa = predicate_support(schema, tuple, a)?;
            let sb = predicate_support(schema, tuple, b)?;
            // §3.1.1: multiplicative rule for independent predicates.
            Ok(sa.and_independent(&sb))
        }
        Predicate::Or(a, b) => {
            let sa = predicate_support(schema, tuple, a)?;
            let sb = predicate_support(schema, tuple, b)?;
            // Extension: independent-event disjunction.
            let sn = 1.0 - (1.0 - sa.sn()) * (1.0 - sb.sn());
            let sp = 1.0 - (1.0 - sa.sp()) * (1.0 - sb.sp());
            Ok(SupportPair::new(sn, sp)?)
        }
        Predicate::Not(a) => {
            let sa = predicate_support(schema, tuple, a)?;
            // Extension: belief/plausibility duality.
            Ok(SupportPair::new(1.0 - sa.sp(), 1.0 - sa.sn())?)
        }
    }
}

/// Support of `A is C` (§3.1.1): `(Bel(C), Pls(C))`.
fn is_support(
    schema: &Schema,
    tuple: &Tuple,
    attr: &str,
    values: &[Value],
) -> Result<SupportPair, AlgebraError> {
    let pos = schema.position(attr)?;
    let def = schema.attr(pos);
    match (def.ty().domain(), tuple.value(pos)) {
        // Evidential attribute: Bel/Pls of the target set.
        (Some(domain), value) => {
            let target = domain.subset_of_values(values.iter())?;
            let m = value.to_evidence(domain)?;
            Ok(SupportPair::new(m.bel(&target), m.pls(&target))?)
        }
        // Definite open-domain attribute: crisp membership.
        (None, AttrValue::Definite(v)) => {
            let hit = values.contains(v);
            Ok(if hit {
                SupportPair::certain()
            } else {
                SupportPair::impossible()
            })
        }
        (None, AttrValue::Evidential(_)) => Err(AlgebraError::PredicateType {
            reason: format!("attribute {attr:?} is declared definite but holds evidence"),
        }),
    }
}

/// `aᵢ θ bⱼ` *is TRUE*: the comparison holds for all member pairs
/// (∀s∀t). Order operators reduce to extreme-member comparisons.
fn definitely(op: ThetaOp, x: &FocalSet, y: &FocalSet) -> bool {
    let (xmin, xmax) = (
        x.min_index().expect("focal nonempty"),
        x.max_index().expect("focal nonempty"),
    );
    let (ymin, ymax) = (
        y.min_index().expect("focal nonempty"),
        y.max_index().expect("focal nonempty"),
    );
    match op {
        ThetaOp::Le => xmax <= ymin,
        ThetaOp::Lt => xmax < ymin,
        ThetaOp::Ge => xmin >= ymax,
        ThetaOp::Gt => xmin > ymax,
        ThetaOp::Eq => x.len() == 1 && y.len() == 1 && xmin == ymin,
        ThetaOp::Ne => !x.intersects(y),
    }
}

/// `aᵢ θ bⱼ` *may be TRUE*: the comparison holds for some member pair
/// (∃s∃t).
fn maybe(op: ThetaOp, x: &FocalSet, y: &FocalSet) -> bool {
    let (xmin, xmax) = (
        x.min_index().expect("focal nonempty"),
        x.max_index().expect("focal nonempty"),
    );
    let (ymin, ymax) = (
        y.min_index().expect("focal nonempty"),
        y.max_index().expect("focal nonempty"),
    );
    match op {
        ThetaOp::Le => xmin <= ymax,
        ThetaOp::Lt => xmin < ymax,
        ThetaOp::Ge => xmax >= ymin,
        ThetaOp::Gt => xmax > ymin,
        ThetaOp::Eq => x.intersects(y),
        ThetaOp::Ne => !(x.len() == 1 && y.len() == 1 && x == y),
    }
}

/// θ-support between two evidence sets over the same frame (the
/// paper's double sum).
///
/// # Errors
/// [`AlgebraError::PredicateType`] if the frames differ.
pub fn theta_evidence_support(
    a: &MassFunction<f64>,
    op: ThetaOp,
    b: &MassFunction<f64>,
) -> Result<SupportPair, AlgebraError> {
    if a.frame() != b.frame() {
        return Err(AlgebraError::PredicateType {
            reason: format!(
                "θ-predicate operands are over different domains ({} vs {})",
                a.frame().name(),
                b.frame().name()
            ),
        });
    }
    let mut sn = 0.0;
    let mut sp = 0.0;
    for (x, wx) in a.iter() {
        for (y, wy) in b.iter() {
            let product = wx * wy;
            if definitely(op, x, y) {
                sn += product;
            }
            if maybe(op, x, y) {
                sp += product;
            }
        }
    }
    Ok(SupportPair::new(sn, sp)?)
}

/// θ-support between two evidence-set *literals* over an explicit
/// domain — used to reproduce the paper's inline §3.1.1 example, where
/// neither operand is an attribute.
///
/// # Errors
/// As [`theta_evidence_support`], plus domain lookup failures.
pub fn theta_support_with_domain(
    domain: &Arc<AttrDomain>,
    left: &[(Vec<Value>, f64)],
    op: ThetaOp,
    right: &[(Vec<Value>, f64)],
) -> Result<SupportPair, AlgebraError> {
    let l = literal_to_mass(domain, left)?;
    let r = literal_to_mass(domain, right)?;
    theta_evidence_support(&l, op, &r)
}

fn literal_to_mass(
    domain: &Arc<AttrDomain>,
    entries: &[(Vec<Value>, f64)],
) -> Result<MassFunction<f64>, AlgebraError> {
    let mut b = MassFunction::<f64>::builder(Arc::clone(domain.frame()));
    for (vals, w) in entries {
        let set = domain.subset_of_values(vals.iter())?;
        b = b
            .add_set(set, *w)
            .map_err(evirel_relation::RelationError::from)?;
    }
    Ok(b.build().map_err(evirel_relation::RelationError::from)?)
}

fn resolve(schema: &Schema, tuple: &Tuple, operand: &Operand) -> Result<Resolved, AlgebraError> {
    match operand {
        Operand::Attr(name) => {
            let pos = schema.position(name)?;
            let def = schema.attr(pos);
            match (def.ty().domain(), tuple.value(pos)) {
                (Some(domain), value) => Ok(Resolved::Evidence(
                    value.to_evidence(domain)?,
                    Arc::clone(domain),
                )),
                (None, AttrValue::Definite(v)) => Ok(Resolved::Definite(v.clone())),
                (None, AttrValue::Evidential(_)) => Err(AlgebraError::PredicateType {
                    reason: format!("attribute {name:?} is declared definite but holds evidence"),
                }),
            }
        }
        Operand::Value(v) => Ok(Resolved::Definite(v.clone())),
        Operand::Evidence(entries) => Ok(Resolved::PendingLiteral(entries.clone())),
    }
}

fn theta_support(
    schema: &Schema,
    tuple: &Tuple,
    left: &Operand,
    op: ThetaOp,
    right: &Operand,
) -> Result<SupportPair, AlgebraError> {
    let l = resolve(schema, tuple, left)?;
    let r = resolve(schema, tuple, right)?;
    match (l, r) {
        (Resolved::Definite(a), Resolved::Definite(b)) => Ok(if op.test_values(&a, &b) {
            SupportPair::certain()
        } else {
            SupportPair::impossible()
        }),
        (Resolved::Evidence(a, dom), Resolved::Evidence(b, _)) => {
            theta_evidence_support_checked(&a, op, &b, &dom)
        }
        (Resolved::Evidence(a, dom), Resolved::Definite(v)) => {
            let b = promote(&dom, &v)?;
            theta_evidence_support(&a, op, &b)
        }
        (Resolved::Definite(v), Resolved::Evidence(b, dom)) => {
            let a = promote(&dom, &v)?;
            theta_evidence_support(&a, op, &b)
        }
        (Resolved::Evidence(a, dom), Resolved::PendingLiteral(entries)) => {
            let b = literal_to_mass(&dom, &entries)?;
            theta_evidence_support(&a, op, &b)
        }
        (Resolved::PendingLiteral(entries), Resolved::Evidence(b, dom)) => {
            let a = literal_to_mass(&dom, &entries)?;
            theta_evidence_support(&a, op, &b)
        }
        _ => Err(AlgebraError::PredicateType {
            reason: "θ-predicate needs at least one attribute operand to anchor literal \
                     evidence to a domain"
                .to_owned(),
        }),
    }
}

fn theta_evidence_support_checked(
    a: &MassFunction<f64>,
    op: ThetaOp,
    b: &MassFunction<f64>,
    _domain: &Arc<AttrDomain>,
) -> Result<SupportPair, AlgebraError> {
    theta_evidence_support(a, op, b)
}

fn promote(domain: &Arc<AttrDomain>, v: &Value) -> Result<MassFunction<f64>, AlgebraError> {
    let idx = domain.index_of(v)?;
    Ok(MassFunction::from_entries(
        Arc::clone(domain.frame()),
        [(FocalSet::singleton(idx), 1.0)],
    )
    .map_err(evirel_relation::RelationError::from)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{RelationBuilder, Schema, ValueKind};

    fn speciality_domain() -> Arc<AttrDomain> {
        Arc::new(
            AttrDomain::categorical("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"])
                .unwrap(),
        )
    }

    fn rating_domain() -> Arc<AttrDomain> {
        // Declared order avg < gd < ex is the θ order.
        Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap())
    }

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder("ra")
                .key_str("rname")
                .definite("bldg", ValueKind::Int)
                .evidential("speciality", speciality_domain())
                .evidential("rating", rating_domain())
                .build()
                .unwrap(),
        )
    }

    fn garden() -> (Arc<Schema>, Tuple) {
        let s = schema();
        let rel = RelationBuilder::new(Arc::clone(&s))
            .tuple(|t| {
                t.set_str("rname", "garden")
                    .set_int("bldg", 2011)
                    .set_evidence_with_omega(
                        "speciality",
                        [(&["si"][..], 0.5), (&["hu"][..], 0.25)],
                        0.25,
                    )
                    .set_evidence(
                        "rating",
                        [
                            (&["ex"][..], 0.33),
                            (&["gd"][..], 0.5),
                            (&["avg"][..], 0.17),
                        ],
                    )
            })
            .unwrap()
            .build();
        let t = rel.get_by_key(&[Value::str("garden")]).unwrap().clone();
        (s, t)
    }

    /// Table 2's garden row: speciality is {si} → (Bel, Pls) = (0.5, 0.75).
    #[test]
    fn paper_is_predicate_garden() {
        let (s, t) = garden();
        let p = Predicate::is("speciality", ["si"]);
        let sp = predicate_support(&s, &t, &p).unwrap();
        assert!((sp.sn() - 0.5).abs() < 1e-12);
        assert!((sp.sp() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn is_predicate_multi_value_target() {
        let (s, t) = garden();
        // Bel({si, hu}) = 0.75, Pls = 1.0.
        let p = Predicate::is("speciality", ["si", "hu"]);
        let sp = predicate_support(&s, &t, &p).unwrap();
        assert!((sp.sn() - 0.75).abs() < 1e-12);
        assert!((sp.sp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn is_predicate_on_definite_attr() {
        let (s, t) = garden();
        let hit = Predicate::is("bldg", [2011i64]);
        assert!(predicate_support(&s, &t, &hit).unwrap().is_certain());
        let miss = Predicate::is("bldg", [1i64]);
        assert!(!predicate_support(&s, &t, &miss).unwrap().is_positive());
    }

    /// Compound predicate via the multiplicative rule — Table 3
    /// semantics: (speciality is {mu}) ∧ (rating is {ex}) on a tuple
    /// with supports (0.8, 0.8) and (0.8, 0.8) gives (0.64, 0.64).
    #[test]
    fn paper_compound_predicate_multiplicative() {
        let s = schema();
        let rel = RelationBuilder::new(Arc::clone(&s))
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_int("bldg", 820)
                    .set_evidence("speciality", [(&["mu"][..], 0.8), (&["ta"][..], 0.2)])
                    .set_evidence("rating", [(&["ex"][..], 0.8), (&["gd"][..], 0.2)])
                    .membership_pair(0.5, 0.5)
            })
            .unwrap()
            .build();
        let t = rel.get_by_key(&[Value::str("mehl")]).unwrap();
        let p = Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"]));
        let sp = predicate_support(&s, t, &p).unwrap();
        assert!((sp.sn() - 0.64).abs() < 1e-12);
        assert!((sp.sp() - 0.64).abs() < 1e-12);
    }

    /// The paper's printed §3.1.1 θ example operands evaluate to
    /// (0.12, 1.0) under the paper's own ∀∀/∃∃ definition; see
    /// DESIGN.md for the typo analysis. The corrected right-hand
    /// operand `[{4,7}^0.8, 5^0.2]` yields the printed (0.6, 1.0).
    #[test]
    fn paper_theta_example_as_printed_and_corrected() {
        let domain = Arc::new(AttrDomain::integers("n", 1, 8).unwrap());
        let left = vec![
            (vec![Value::int(1), Value::int(4)], 0.6),
            (vec![Value::int(2), Value::int(6)], 0.4),
        ];
        let printed_right = vec![
            (vec![Value::int(2), Value::int(4)], 0.8),
            (vec![Value::int(5)], 0.2),
        ];
        let sp = theta_support_with_domain(&domain, &left, ThetaOp::Le, &printed_right).unwrap();
        assert!((sp.sn() - 0.12).abs() < 1e-12);
        assert!((sp.sp() - 1.0).abs() < 1e-12);

        let corrected_right = vec![
            (vec![Value::int(4), Value::int(7)], 0.8),
            (vec![Value::int(5)], 0.2),
        ];
        let sp = theta_support_with_domain(&domain, &left, ThetaOp::Le, &corrected_right).unwrap();
        assert!((sp.sn() - 0.6).abs() < 1e-12);
        assert!((sp.sp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theta_attr_vs_value() {
        let (s, t) = garden();
        // rating >= gd: focal {ex}(0.33) definitely, {gd}(0.5) definitely,
        // {avg}(0.17) not. sn = 0.83, sp = 0.83.
        let p = Predicate::theta(Operand::attr("rating"), ThetaOp::Ge, Operand::value("gd"));
        let sp = predicate_support(&s, &t, &p).unwrap();
        assert!((sp.sn() - 0.83).abs() < 1e-12);
        assert!((sp.sp() - 0.83).abs() < 1e-12);
    }

    #[test]
    fn theta_definite_vs_definite() {
        let (s, t) = garden();
        let p = Predicate::theta(Operand::attr("bldg"), ThetaOp::Le, Operand::value(3000i64));
        assert!(predicate_support(&s, &t, &p).unwrap().is_certain());
        let p = Predicate::theta(Operand::attr("bldg"), ThetaOp::Gt, Operand::value(3000i64));
        assert!(!predicate_support(&s, &t, &p).unwrap().is_positive());
    }

    #[test]
    fn theta_attr_vs_attr_same_domain() {
        // speciality = speciality is reflexive only in the definite
        // case; with evidence it yields Bel-style support.
        let (s, t) = garden();
        let p = Predicate::theta(
            Operand::attr("speciality"),
            ThetaOp::Eq,
            Operand::attr("speciality"),
        );
        let sp = predicate_support(&s, &t, &p).unwrap();
        // Definitely-equal pairs: ({si},{si}) 0.25, ({hu},{hu}) 0.0625.
        assert!((sp.sn() - 0.3125).abs() < 1e-12);
        assert!(sp.sp() <= 1.0);
    }

    #[test]
    fn theta_mismatched_domains_rejected() {
        let (s, t) = garden();
        let p = Predicate::theta(
            Operand::attr("speciality"),
            ThetaOp::Eq,
            Operand::attr("rating"),
        );
        assert!(matches!(
            predicate_support(&s, &t, &p),
            Err(AlgebraError::PredicateType { .. })
        ));
    }

    #[test]
    fn theta_two_literals_rejected_without_anchor() {
        let (s, t) = garden();
        let p = Predicate::theta(
            Operand::Evidence(vec![(vec![Value::str("si")], 1.0)]),
            ThetaOp::Eq,
            Operand::Evidence(vec![(vec![Value::str("si")], 1.0)]),
        );
        assert!(matches!(
            predicate_support(&s, &t, &p),
            Err(AlgebraError::PredicateType { .. })
        ));
    }

    #[test]
    fn theta_literal_anchored_by_attr() {
        let (s, t) = garden();
        let p = Predicate::theta(
            Operand::attr("speciality"),
            ThetaOp::Eq,
            Operand::Evidence(vec![(vec![Value::str("si")], 1.0)]),
        );
        let sp = predicate_support(&s, &t, &p).unwrap();
        // Equal-definite pairs: {si}·1.0·0.5; maybe adds {si,...}∩ via Ω.
        assert!((sp.sn() - 0.5).abs() < 1e-12);
        assert!((sp.sp() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn or_and_not_extensions() {
        let (s, t) = garden();
        let si = Predicate::is("speciality", ["si"]); // (0.5, 0.75)
        let not_si = si.clone().negate();
        let sp = predicate_support(&s, &t, &not_si).unwrap();
        assert!((sp.sn() - 0.25).abs() < 1e-12);
        assert!((sp.sp() - 0.5).abs() < 1e-12);

        let hu = Predicate::is("speciality", ["hu"]); // (0.25, 0.5)
        let either = si.or(hu);
        let sp = predicate_support(&s, &t, &either).unwrap();
        // 1 - 0.5*0.75 = 0.625 ; 1 - 0.25*0.5 = 0.875
        assert!((sp.sn() - 0.625).abs() < 1e-12);
        assert!((sp.sp() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn unknown_attr_is_error() {
        let (s, t) = garden();
        let p = Predicate::is("nope", ["x"]);
        assert!(matches!(
            predicate_support(&s, &t, &p),
            Err(AlgebraError::Relation(_))
        ));
    }

    #[test]
    fn out_of_domain_target_is_error() {
        let (s, t) = garden();
        let p = Predicate::is("speciality", ["french"]);
        assert!(predicate_support(&s, &t, &p).is_err());
    }
}
