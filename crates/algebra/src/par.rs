//! Parallel extended union.
//!
//! Tuple merging is embarrassingly parallel: matched pairs are
//! independent, so the key space can be partitioned by hash and merged
//! on separate threads. Uses only `std::thread::scope` — no extra
//! dependencies — and reproduces exactly the sequential result
//! (deterministic: partitions are re-assembled in left-relation
//! insertion order before right-only tuples, and the conflict report
//! is re-assembled the same way).
//!
//! Unmatched tuples travel as [`Arc<Tuple>`] shared handles on both
//! sides, exactly like the sequential [`crate::union::union_with`] and
//! the streaming merge operator in `evirel-plan` — the workers only
//! allocate for genuinely merged pairs. Slot assignment goes through
//! the shared [`Partitioner`] (multiply-shift mixed key hash), so a
//! skewed raw hash cannot leave workers idle.
//!
//! The `benches/union.rs` harness compares this path against the
//! sequential [`crate::union::union_with`].

use crate::conflict::ConflictReport;
use crate::error::AlgebraError;
use crate::partition::Partitioner;
use crate::union::{UnionOptions, UnionOutcome};
use evirel_relation::{ExtendedRelation, Tuple, Value};
use std::sync::Arc;

/// Parallel `left ∪̃ right` over `threads` worker threads.
///
/// Falls back to the sequential implementation when `threads <= 1` or
/// the combined input is small enough that partitioning cannot pay
/// off (the threshold looks at `left.len() + right.len()`, so a small
/// left joined with a huge right still parallelizes).
///
/// # Errors
/// As [`crate::union::union_with`].
pub fn par_union(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
    options: &UnionOptions,
    threads: usize,
) -> Result<UnionOutcome, AlgebraError> {
    const MIN_TUPLES_PER_THREAD: usize = 64;
    if threads <= 1 || left.len() + right.len() < threads * MIN_TUPLES_PER_THREAD {
        return crate::union::union_with(left, right, options);
    }
    let ls = left.schema();
    let rs = right.schema();
    ls.check_union_compatible(rs)?;

    // Partition the left tuples (with their match, if any) by key hash.
    let partitioner = Partitioner::new(threads);
    type Partition<'a> = Vec<(usize, Vec<Value>, &'a Arc<Tuple>, Option<&'a Tuple>)>;
    let mut partitions: Vec<Partition<'_>> = (0..threads).map(|_| Vec::new()).collect();
    for (order, (key, l_tuple)) in left.iter_keyed_shared().enumerate() {
        let slot = partitioner.slot_for_key(&key);
        let m = right.get_by_key(&key);
        partitions[slot].push((order, key, l_tuple, m));
    }

    // Merge each partition on its own thread. Unmatched left tuples
    // pass through as cheap `Arc` clones; only merged pairs allocate.
    type Merged = Vec<(usize, Option<Arc<Tuple>>, ConflictReport)>;
    let results: Vec<Result<Merged, AlgebraError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| {
                scope.spawn(move || {
                    let mut merged: Merged = Vec::with_capacity(part.len());
                    // One combination-memo scratch per worker pass.
                    let mut scratch = crate::union::MergeScratch::new();
                    for (order, key, l_tuple, r_tuple) in part {
                        let mut report = ConflictReport::new();
                        let out = match r_tuple {
                            None => {
                                if l_tuple.membership().is_positive() {
                                    Some(Arc::clone(l_tuple))
                                } else {
                                    None
                                }
                            }
                            Some(r) => crate::union::merge_tuples_with(
                                ls,
                                key,
                                l_tuple,
                                r,
                                options,
                                &mut report,
                                &mut scratch,
                            )?
                            .map(Arc::new),
                        };
                        merged.push((*order, out, report));
                    }
                    Ok(merged)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Re-assemble deterministically: left order first, then right-only.
    let mut all: Vec<(usize, Option<Arc<Tuple>>, ConflictReport)> = Vec::with_capacity(left.len());
    for r in results {
        all.extend(r?);
    }
    all.sort_by_key(|(order, _, _)| *order);

    let out_schema = Arc::new(ls.renamed(format!("{}∪{}", ls.name(), rs.name())));
    let mut out = ExtendedRelation::new(Arc::clone(&out_schema));
    let mut report = ConflictReport::new();
    for (_, tuple, r) in all {
        for c in r.conflicts() {
            report.record(c.clone());
        }
        if let Some(t) = tuple {
            out.insert_shared(t)?;
        }
    }
    for (key, r_tuple) in right.iter_keyed_shared() {
        if !left.contains_key(&key) && r_tuple.membership().is_positive() {
            out.insert_shared(Arc::clone(r_tuple))?;
        }
    }
    Ok(UnionOutcome {
        relation: out,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};

    fn big_pair(n: usize) -> (ExtendedRelation, ExtendedRelation) {
        let domain = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = |name: &str| {
            Arc::new(
                Schema::builder(name)
                    .key_str("k")
                    .evidential("d", Arc::clone(&domain))
                    .build()
                    .unwrap(),
            )
        };
        let mut a = RelationBuilder::new(schema("A"));
        let mut b = RelationBuilder::new(schema("B"));
        for i in 0..n {
            let k = format!("key-{i}");
            a = a
                .tuple(|t| {
                    t.set_str("k", k.clone())
                        .set_evidence_with_omega("d", [(&["x"][..], 0.6)], 0.4)
                })
                .unwrap();
            if i % 2 == 0 {
                b = b
                    .tuple(|t| {
                        t.set_str("k", k.clone()).set_evidence_with_omega(
                            "d",
                            [(&["x"][..], 0.3), (&["y"][..], 0.3)],
                            0.4,
                        )
                    })
                    .unwrap();
            }
        }
        (a.build(), b.build())
    }

    /// Parallel execution must reproduce the sequential result
    /// *exactly*: same relation, and the same conflict report with
    /// observations in the same (left-insertion) order.
    #[test]
    fn parallel_matches_sequential() {
        let (a, b) = big_pair(512);
        let seq = crate::union::union_with(&a, &b, &UnionOptions::default()).unwrap();
        let par = par_union(&a, &b, &UnionOptions::default(), 4).unwrap();
        assert!(seq.relation.approx_eq(&par.relation));
        // Full report equality, not just length: every observation
        // (key, attr, κ, total flag) in the same order.
        assert!(!seq.report.is_empty());
        assert_eq!(seq.report.conflicts(), par.report.conflicts());
        // Output insertion order matches too (left order, then
        // right-only in right order).
        for (s, p) in seq.relation.iter().zip(par.relation.iter()) {
            assert_eq!(s.key(seq.relation.schema()), p.key(par.relation.schema()));
        }
    }

    /// A small left against a large right must still parallelize: the
    /// fallback threshold looks at the combined size.
    #[test]
    fn small_left_large_right_parallelizes() {
        let (mut a, b) = big_pair(1024);
        // Shrink the left to 8 tuples; the combined size is still well
        // above threads × 64, so the parallel path runs (and must
        // agree with the sequential one).
        let schema = Arc::clone(a.schema());
        let mut small = ExtendedRelation::new(Arc::clone(&schema));
        for t in a.iter().take(8) {
            small.insert(t.clone()).unwrap();
        }
        a = small;
        let seq = crate::union::union_with(&a, &b, &UnionOptions::default()).unwrap();
        let par = par_union(&a, &b, &UnionOptions::default(), 4).unwrap();
        assert!(seq.relation.approx_eq(&par.relation));
        assert_eq!(seq.report.conflicts(), par.report.conflicts());
    }

    #[test]
    fn small_inputs_fall_back() {
        let (a, b) = big_pair(8);
        let par = par_union(&a, &b, &UnionOptions::default(), 4).unwrap();
        let seq = crate::union::union_with(&a, &b, &UnionOptions::default()).unwrap();
        assert!(seq.relation.approx_eq(&par.relation));
    }

    #[test]
    fn single_thread_falls_back() {
        let (a, b) = big_pair(512);
        let par = par_union(&a, &b, &UnionOptions::default(), 1).unwrap();
        assert_eq!(par.relation.len(), a.len());
    }
}
