//! Extended join ⋈̃ (§3.5).
//!
//! Defined exactly as in the paper: an extended cartesian product
//! followed by an extended selection,
//! `R ⋈̃QP S ≡ σ̃QP(R ×̃ S)`.
//!
//! Join predicates reference the product's (possibly qualified)
//! attribute names — e.g. `R.rname = RM.rname` when both relations
//! carry an `rname` attribute.

use crate::error::AlgebraError;
use crate::predicate::Predicate;
use crate::product::product;
use crate::select::select;
use crate::threshold::Threshold;
use evirel_relation::ExtendedRelation;

/// Compute `left ⋈̃QP right`.
///
/// # Errors
/// Errors from [`product`] and [`select`].
pub fn join(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
    pred: &Predicate,
    threshold: &Threshold,
) -> Result<ExtendedRelation, AlgebraError> {
    let p = product(left, right)?;
    select(&p, pred, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, SupportPair, Value, ValueKind};
    use std::sync::Arc;

    /// The paper's Figure 2 schema fragment: restaurants and the
    /// Managed-by relationship, joined on rname.
    fn restaurants() -> ExtendedRelation {
        let spec = Arc::new(AttrDomain::categorical("spec", ["mu", "it"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("rname")
                .evidential("spec", spec)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_evidence("spec", [(&["mu"][..], 0.8), (&["it"][..], 0.2)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_evidence("spec", [(&["it"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    fn managed_by() -> ExtendedRelation {
        let schema = Arc::new(
            Schema::builder("RM")
                .key_str("rname")
                .definite("mname", ValueKind::Str)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("mname", "alice")
                    .membership_pair(0.9, 1.0)
            })
            .unwrap()
            .tuple(|t| t.set_str("rname", "wok").set_str("mname", "bob"))
            .unwrap()
            .build()
    }

    #[test]
    fn key_join_matches_pairs() {
        let joined = join(
            &restaurants(),
            &managed_by(),
            &Predicate::theta(
                Operand::attr("R.rname"),
                ThetaOp::Eq,
                Operand::attr("RM.rname"),
            ),
            &Threshold::POSITIVE,
        )
        .unwrap();
        // Only (mehl, mehl) matches definitely; (olive, wok) etc. get
        // support (0,0) and are dropped.
        assert_eq!(joined.len(), 1);
        let t = joined
            .get_by_key(&[Value::str("mehl"), Value::str("mehl")])
            .unwrap();
        // Membership: (1,1) × (0.9,1.0) via product, predicate (1,1).
        assert!(t
            .membership()
            .approx_eq(&SupportPair::new(0.9, 1.0).unwrap()));
    }

    #[test]
    fn join_with_evidential_condition() {
        let joined = join(
            &restaurants(),
            &managed_by(),
            &Predicate::theta(
                Operand::attr("R.rname"),
                ThetaOp::Eq,
                Operand::attr("RM.rname"),
            )
            .and(Predicate::is("spec", ["mu"])),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert_eq!(joined.len(), 1);
        let t = joined
            .get_by_key(&[Value::str("mehl"), Value::str("mehl")])
            .unwrap();
        // 0.9 (membership product) × 0.8 (Bel of spec is {mu}).
        assert!((t.membership().sn() - 0.72).abs() < 1e-9);
    }

    #[test]
    fn join_threshold_filters() {
        let joined = join(
            &restaurants(),
            &managed_by(),
            &Predicate::theta(
                Operand::attr("R.rname"),
                ThetaOp::Eq,
                Operand::attr("RM.rname"),
            )
            .and(Predicate::is("spec", ["mu"])),
            &Threshold::SnAtLeast(0.8),
        )
        .unwrap();
        assert!(joined.is_empty());
    }

    #[test]
    fn join_is_product_then_select() {
        let pred = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Eq,
            Operand::attr("RM.rname"),
        );
        let direct = join(&restaurants(), &managed_by(), &pred, &Threshold::POSITIVE).unwrap();
        let via = select(
            &product(&restaurants(), &managed_by()).unwrap(),
            &pred,
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert!(direct.approx_eq(&via));
    }
}
