//! Hash partitioning of tuples by key — the slot-assignment scheme
//! shared by the parallel executors.
//!
//! Both [`crate::par::par_union`] and `evirel-plan`'s exchange
//! operator split work by routing every tuple to one of `shards`
//! slots based on its key hash. The raw [`DefaultHasher`] output is
//! fine as a 64-bit hash but its low bits are not uniform enough to
//! feed a bare `% shards` — with few shards and structured keys
//! (`"key-0"`, `"key-1"`, …) the modulo can leave whole workers idle.
//! [`Partitioner`] therefore finalizes the hash with a multiply-shift
//! mix (the 64-bit finalizer of MurmurHash3/SplitMix64) and selects
//! the slot by multiply-high range reduction, which uses the *high*
//! bits of the mixed hash and needs no division.

use evirel_relation::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Assigns tuple keys to one of `shards` slots, deterministically.
///
/// The assignment is a pure function of the key, so every scan of the
/// same relation — on any thread, in any run — routes a tuple to the
/// same shard, which is what makes hash-partitioned execution
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// A partitioner over `shards` slots (at least 1).
    pub fn new(shards: usize) -> Partitioner {
        Partitioner {
            shards: shards.max(1),
        }
    }

    /// Number of slots.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The slot for a tuple key.
    pub fn slot_for_key(&self, key: &[Value]) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        self.slot_for_hash(h.finish())
    }

    /// The slot for a precomputed 64-bit key hash.
    pub fn slot_for_hash(&self, hash: u64) -> usize {
        let mixed = mix64(hash);
        // Multiply-high range reduction: maps the mixed hash onto
        // [0, shards) using its high bits, without `%`.
        ((u128::from(mixed) * self.shards as u128) >> 64) as usize
    }
}

/// The MurmurHash3 64-bit finalizer: a multiply-shift (xor-shift ×
/// odd-constant) avalanche so every input bit diffuses into every
/// output bit.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_deterministic_and_in_range() {
        let p = Partitioner::new(4);
        for i in 0..1000 {
            let key = vec![Value::str(format!("key-{i}"))];
            let slot = p.slot_for_key(&key);
            assert!(slot < 4);
            assert_eq!(slot, p.slot_for_key(&key));
        }
    }

    #[test]
    fn structured_keys_spread_over_all_slots() {
        // The regression the mix exists for: sequential string keys
        // must not collapse onto a subset of slots.
        for shards in [2usize, 3, 4, 8] {
            let p = Partitioner::new(shards);
            let mut counts = vec![0usize; shards];
            for i in 0..4096 {
                counts[p.slot_for_key(&[Value::str(format!("key-{i}"))])] += 1;
            }
            let expected = 4096 / shards;
            for (slot, &n) in counts.iter().enumerate() {
                assert!(
                    n > expected / 2 && n < expected * 2,
                    "slot {slot}/{shards} got {n} of 4096 (expected ≈{expected})"
                );
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let p = Partitioner::new(0);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.slot_for_key(&[Value::int(7)]), 0);
    }
}
