//! Extended union ∪̃ (§3.2) — the attribute-value conflict resolution
//! operation.
//!
//! For two union-compatible extended relations `R`, `S` with common
//! key `K̃` and non-key attributes `Ñ`:
//!
//! * a tuple of `R` whose key matches no tuple of `S` (or vice versa)
//!   is retained as-is — the other relation is totally ignorant about
//!   that entity, and combining with total ignorance is the identity;
//! * matched tuples are merged: every common non-key attribute is
//!   combined with Dempster's rule (`t.C = r.C ⊕ s.C`), and the
//!   membership pairs are combined with the paper's `F` — Dempster's
//!   rule over Ψ = {true, false}.
//!
//! Like the ordinary union, ∪̃ is commutative and associative (checked
//! by the property suite). Conflicts are recorded per
//! [`crate::conflict`]; total conflict on an attribute or on
//! membership is resolved by the configured [`ConflictPolicy`].

use crate::conflict::{AttributeConflict, ConflictPolicy, ConflictReport};
use crate::error::AlgebraError;
use evirel_evidence::{rules::CombinationRule, EvidenceError, MassFunction};
use evirel_relation::{
    AttrType, AttrValue, ExtendedRelation, RelationError, SupportPair, Tuple, Value,
};
use std::sync::Arc;

/// Options for the extended union.
#[derive(Debug, Clone, Default)]
pub struct UnionOptions {
    /// How to resolve total conflict (κ = 1) on an attribute or on
    /// tuple membership.
    pub on_total_conflict: ConflictPolicy,
    /// Combination rule for attribute evidence. The paper uses
    /// Dempster's rule; the alternatives exist for ablation studies.
    /// Membership pairs always use the paper's `F` (Dempster over Ψ).
    pub rule: CombinationRule,
    /// If set, summarize each combined attribute evidence set to at
    /// most this many focal elements (see
    /// [`evirel_evidence::approx::summarize`]).
    pub max_focal: Option<usize>,
}

/// The result of an extended union: the integrated relation plus the
/// conflict report for the data administrator.
#[derive(Debug, Clone)]
pub struct UnionOutcome {
    /// `R ∪̃ S`.
    pub relation: ExtendedRelation,
    /// Attribute- and membership-level conflict observations.
    pub report: ConflictReport,
}

/// Compute `left ∪̃ right` with default options (Dempster's rule,
/// error on total conflict).
///
/// # Errors
/// * [`AlgebraError::Relation`] if the schemas are not
///   union-compatible;
/// * [`AlgebraError::TotalConflict`] under
///   [`ConflictPolicy::Error`].
pub fn union_extended(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
) -> Result<UnionOutcome, AlgebraError> {
    union_with(left, right, &UnionOptions::default())
}

/// Compute `left ∪̃ right` with explicit options.
///
/// # Errors
/// See [`union_extended`].
pub fn union_with(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
    options: &UnionOptions,
) -> Result<UnionOutcome, AlgebraError> {
    let ls = left.schema();
    let rs = right.schema();
    ls.check_union_compatible(rs)?;

    let out_schema = Arc::new(ls.renamed(format!("{}∪{}", ls.name(), rs.name())));
    let mut out = ExtendedRelation::new(Arc::clone(&out_schema));
    let mut report = ConflictReport::new();

    // Matched keys and left-only tuples, in left insertion order.
    // Unmatched tuples pass through as shared `Arc<Tuple>` handles —
    // zero deep copies, exactly like the streaming `MergeOp` in
    // `evirel-plan`.
    let mut scratch = MergeScratch::new(); // one memo table for the whole pass
    for (key, l_tuple) in left.iter_keyed_shared() {
        match right.get_by_key(&key) {
            None => {
                // Closure: zero-support tuples (possible when the input
                // is an augmented complement relation) are not stored.
                if l_tuple.membership().is_positive() {
                    out.insert_shared(Arc::clone(l_tuple))?;
                }
            }
            Some(r_tuple) => {
                if let Some(merged) = merge_tuples_with(
                    ls,
                    &key,
                    l_tuple,
                    r_tuple,
                    options,
                    &mut report,
                    &mut scratch,
                )? {
                    out.insert(merged)?;
                }
            }
        }
    }
    // Right-only tuples, in right insertion order.
    for (key, r_tuple) in right.iter_keyed_shared() {
        if !left.contains_key(&key) && r_tuple.membership().is_positive() {
            out.insert_shared(Arc::clone(r_tuple))?;
        }
    }
    Ok(UnionOutcome {
        relation: out,
        report,
    })
}

/// Reusable per-pass scratch for [`merge_tuples_with`]: the
/// combination engine's memo table, held once per merge pass instead
/// of allocated per Dempster call (the remaining hot-path headroom
/// the ROADMAP's Dempster item named).
pub type MergeScratch = evirel_evidence::combine::Scratch<f64>;

/// Merge one matched tuple pair. Returns `None` when the combined
/// membership has `sn = 0` (the merged tuple is then not stored,
/// consistent with CWA_ER). This is the per-pair kernel of ∪̃, shared
/// with the parallel executor in [`crate::par`] and with the
/// streaming merge operator in `evirel-plan`.
pub fn merge_tuples(
    schema: &evirel_relation::Schema,
    key: &[Value],
    l: &Tuple,
    r: &Tuple,
    options: &UnionOptions,
    report: &mut ConflictReport,
) -> Result<Option<Tuple>, AlgebraError> {
    merge_tuples_with(schema, key, l, r, options, report, &mut MergeScratch::new())
}

/// [`merge_tuples`] reusing a caller-held [`MergeScratch`] across a
/// whole merge pass — bit-for-bit the same result, minus one memo
/// table allocation per attribute combination.
#[allow(clippy::too_many_arguments)]
pub fn merge_tuples_with(
    schema: &evirel_relation::Schema,
    key: &[Value],
    l: &Tuple,
    r: &Tuple,
    options: &UnionOptions,
    report: &mut ConflictReport,
    scratch: &mut MergeScratch,
) -> Result<Option<Tuple>, AlgebraError> {
    let mut values: Vec<AttrValue> = Vec::with_capacity(schema.arity());
    for (pos, attr) in schema.attrs().iter().enumerate() {
        let lv = l.value(pos);
        let rv = r.value(pos);
        if attr.is_key() {
            values.push(lv.clone());
            continue;
        }
        match attr.ty() {
            AttrType::Definite(_) => {
                // Open-domain definite attributes cannot be combined
                // evidentially; equal values merge trivially, unequal
                // values are a total conflict.
                if lv == rv {
                    values.push(lv.clone());
                } else {
                    report.record(AttributeConflict {
                        key: key.to_vec(),
                        attr: attr.name().to_owned(),
                        kappa: 1.0,
                        total: true,
                    });
                    match options.on_total_conflict {
                        ConflictPolicy::Error => {
                            return Err(AlgebraError::TotalConflict {
                                key: Value::render_key(key),
                                attr: attr.name().to_owned(),
                            })
                        }
                        ConflictPolicy::KeepLeft => values.push(lv.clone()),
                        ConflictPolicy::KeepRight => values.push(rv.clone()),
                        // There is no vacuous definite value; keep left
                        // (documented behaviour for definite attrs).
                        ConflictPolicy::Vacuous => values.push(lv.clone()),
                    }
                }
            }
            AttrType::Evidential(domain) => {
                let lm = lv.to_evidence(domain)?;
                let rm = rv.to_evidence(domain)?;
                let combined = options.rule.combine_reporting_with(&lm, &rm, scratch);
                match combined {
                    Ok((mass, kappa)) => {
                        if kappa > 0.0 {
                            report.record(AttributeConflict {
                                key: key.to_vec(),
                                attr: attr.name().to_owned(),
                                kappa,
                                total: false,
                            });
                        }
                        let mass = match options.max_focal {
                            Some(k) => evirel_evidence::approx::summarize(&mass, k)
                                .map_err(RelationError::from)?,
                            None => mass,
                        };
                        values.push(AttrValue::Evidential(mass));
                    }
                    Err(EvidenceError::TotalConflict) => {
                        report.record(AttributeConflict {
                            key: key.to_vec(),
                            attr: attr.name().to_owned(),
                            kappa: 1.0,
                            total: true,
                        });
                        match options.on_total_conflict {
                            ConflictPolicy::Error => {
                                return Err(AlgebraError::TotalConflict {
                                    key: Value::render_key(key),
                                    attr: attr.name().to_owned(),
                                })
                            }
                            ConflictPolicy::KeepLeft => values.push(AttrValue::Evidential(lm)),
                            ConflictPolicy::KeepRight => values.push(AttrValue::Evidential(rm)),
                            ConflictPolicy::Vacuous => values.push(AttrValue::Evidential(
                                MassFunction::vacuous(Arc::clone(domain.frame()))
                                    .map_err(RelationError::from)?,
                            )),
                        }
                    }
                    Err(e) => return Err(AlgebraError::Evidence(e)),
                }
            }
        }
    }

    // Membership: the paper's F — Dempster over Ψ.
    let membership = match l.membership().combine_dempster(&r.membership()) {
        Ok(m) => m,
        Err(RelationError::Evidence(EvidenceError::TotalConflict)) => {
            report.record(AttributeConflict {
                key: key.to_vec(),
                attr: "(sn,sp)".to_owned(),
                kappa: 1.0,
                total: true,
            });
            match options.on_total_conflict {
                ConflictPolicy::Error => {
                    return Err(AlgebraError::TotalConflict {
                        key: Value::render_key(key),
                        attr: "(sn,sp)".to_owned(),
                    })
                }
                ConflictPolicy::KeepLeft => l.membership(),
                ConflictPolicy::KeepRight => r.membership(),
                ConflictPolicy::Vacuous => SupportPair::unknown(),
            }
        }
        Err(e) => return Err(AlgebraError::Relation(e)),
    };

    if !membership.is_positive() {
        // CWA_ER: the merged tuple has no necessary support — not stored.
        return Ok(None);
    }
    Ok(Some(Tuple::new(schema, values, membership)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, ValueKind};

    fn rating_domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap())
    }

    fn schema(name: &str) -> Arc<Schema> {
        Arc::new(
            Schema::builder(name)
                .key_str("rname")
                .definite("phone", ValueKind::Str)
                .evidential("rating", rating_domain())
                .build()
                .unwrap(),
        )
    }

    fn garden_a() -> ExtendedRelation {
        RelationBuilder::new(schema("RA"))
            .tuple(|t| {
                t.set_str("rname", "garden")
                    .set_str("phone", "371-2155")
                    .set_evidence(
                        "rating",
                        [
                            (&["ex"][..], 0.33),
                            (&["gd"][..], 0.5),
                            (&["avg"][..], 0.17),
                        ],
                    )
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "ashiana")
                    .set_str("phone", "371-0824")
                    .set_evidence("rating", [(&["ex"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    fn garden_b() -> ExtendedRelation {
        RelationBuilder::new(schema("RB"))
            .tuple(|t| {
                t.set_str("rname", "garden")
                    .set_str("phone", "371-2155")
                    .set_evidence("rating", [(&["ex"][..], 0.2), (&["gd"][..], 0.8)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "wok")
                    .set_str("phone", "382-4165")
                    .set_evidence("rating", [(&["gd"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    /// Table 4's garden rating: [ex^0.33, gd^0.5, avg^0.17] ⊕
    /// [ex^0.2, gd^0.8] = [ex^0.143, gd^0.857] (κ = 0.534).
    #[test]
    fn paper_table4_garden_rating() {
        let out = union_extended(&garden_a(), &garden_b()).unwrap();
        assert_eq!(out.relation.len(), 3);
        let garden = out.relation.get_by_key(&[Value::str("garden")]).unwrap();
        let rating = garden.value(2).as_evidential().unwrap();
        let ex = rating_domain()
            .subset_of_values([&Value::str("ex")])
            .unwrap();
        let gd = rating_domain()
            .subset_of_values([&Value::str("gd")])
            .unwrap();
        assert!((rating.mass_of(&ex) - 0.066 / 0.466).abs() < 1e-9);
        assert!((rating.mass_of(&gd) - 0.4 / 0.466).abs() < 1e-9);
        assert!(garden.membership().is_certain());
        // Conflict κ = 0.534 was reported.
        assert_eq!(out.report.len(), 1);
        assert!((out.report.conflicts()[0].kappa - 0.534).abs() < 1e-9);
    }

    /// Unmatched tuples pass through unchanged — the other relation is
    /// totally ignorant about them.
    #[test]
    fn unmatched_tuples_retained() {
        let out = union_extended(&garden_a(), &garden_b()).unwrap();
        let ashiana = out.relation.get_by_key(&[Value::str("ashiana")]).unwrap();
        let orig = garden_a();
        let orig_ashiana = orig.get_by_key(&[Value::str("ashiana")]).unwrap();
        assert!(ashiana.approx_eq(orig_ashiana));
        assert!(out.relation.contains_key(&[Value::str("wok")]));
    }

    /// ∪̃ is commutative (up to tuple order, which approx_eq ignores).
    #[test]
    fn union_commutative() {
        let ab = union_extended(&garden_a(), &garden_b()).unwrap();
        let ba = union_extended(&garden_b(), &garden_a()).unwrap();
        assert!(ab.relation.approx_eq(&ba.relation));
    }

    #[test]
    fn union_requires_compatibility() {
        let other_schema = Arc::new(
            Schema::builder("X")
                .key_str("id")
                .evidential("rating", rating_domain())
                .build()
                .unwrap(),
        );
        let other = ExtendedRelation::new(other_schema);
        assert!(matches!(
            union_extended(&garden_a(), &other),
            Err(AlgebraError::Relation(
                RelationError::NotUnionCompatible { .. }
            ))
        ));
    }

    #[test]
    fn definite_attr_conflict_policies() {
        let mk = |phone: &str| {
            RelationBuilder::new(schema("R"))
                .tuple(|t| {
                    t.set_str("rname", "wok")
                        .set_str("phone", phone)
                        .set_evidence("rating", [(&["gd"][..], 1.0)])
                })
                .unwrap()
                .build()
        };
        let a = mk("111");
        let b = mk("222");
        // Default policy errors.
        assert!(matches!(
            union_extended(&a, &b),
            Err(AlgebraError::TotalConflict { .. })
        ));
        // KeepLeft keeps 111 and records the conflict.
        let out = union_with(
            &a,
            &b,
            &UnionOptions {
                on_total_conflict: ConflictPolicy::KeepLeft,
                ..Default::default()
            },
        )
        .unwrap();
        let t = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert_eq!(t.value(1).as_definite().unwrap(), &Value::str("111"));
        assert_eq!(out.report.total_conflicts().count(), 1);
        // KeepRight keeps 222.
        let out = union_with(
            &a,
            &b,
            &UnionOptions {
                on_total_conflict: ConflictPolicy::KeepRight,
                ..Default::default()
            },
        )
        .unwrap();
        let t = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert_eq!(t.value(1).as_definite().unwrap(), &Value::str("222"));
    }

    #[test]
    fn evidential_total_conflict_policies() {
        let mk = |label: &str| {
            RelationBuilder::new(schema("R"))
                .tuple(|t| {
                    t.set_str("rname", "wok")
                        .set_str("phone", "111")
                        .set_evidence("rating", [(&[label][..], 1.0)])
                })
                .unwrap()
                .build()
        };
        let a = mk("ex");
        let b = mk("avg");
        assert!(matches!(
            union_extended(&a, &b),
            Err(AlgebraError::TotalConflict { .. })
        ));
        let out = union_with(
            &a,
            &b,
            &UnionOptions {
                on_total_conflict: ConflictPolicy::Vacuous,
                ..Default::default()
            },
        )
        .unwrap();
        let t = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert!(t.value(2).as_evidential().unwrap().is_vacuous());
        assert_eq!(out.report.total_conflicts().count(), 1);
    }

    /// Membership combination mirrors Table 4's mehl row:
    /// (0.5, 0.5) ⊕ (0.8, 1) = (0.83, 0.83).
    #[test]
    fn membership_combined_with_paper_f() {
        let a = RelationBuilder::new(schema("RA"))
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("phone", "333-4035")
                    .set_evidence("rating", [(&["ex"][..], 0.8), (&["gd"][..], 0.2)])
                    .membership_pair(0.5, 0.5)
            })
            .unwrap()
            .build();
        let b = RelationBuilder::new(schema("RB"))
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("phone", "333-4035")
                    .set_evidence("rating", [(&["ex"][..], 1.0)])
                    .membership_pair(0.8, 1.0)
            })
            .unwrap()
            .build();
        let out = union_extended(&a, &b).unwrap();
        let mehl = out.relation.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!((mehl.membership().sn() - 5.0 / 6.0).abs() < 1e-9);
        assert!((mehl.membership().sp() - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn alternative_rule_still_reports_dempster_kappa() {
        let out = union_with(
            &garden_a(),
            &garden_b(),
            &UnionOptions {
                rule: CombinationRule::Yager,
                ..Default::default()
            },
        )
        .unwrap();
        // Yager absorbs the conflict into Ω but the report still shows κ.
        assert!((out.report.conflicts()[0].kappa - 0.534).abs() < 1e-9);
        let garden = out.relation.get_by_key(&[Value::str("garden")]).unwrap();
        let rating = garden.value(2).as_evidential().unwrap();
        let omega = rating.frame().omega();
        assert!(rating.mass_of(&omega) > 0.5);
    }

    #[test]
    fn max_focal_summarizes() {
        let out = union_with(
            &garden_a(),
            &garden_b(),
            &UnionOptions {
                max_focal: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let garden = out.relation.get_by_key(&[Value::str("garden")]).unwrap();
        assert!(garden.value(2).as_evidential().unwrap().focal_count() <= 1);
    }

    #[test]
    fn union_result_is_cwa_consistent() {
        let out = union_extended(&garden_a(), &garden_b()).unwrap();
        assert!(out.relation.validate().is_ok());
    }
}
