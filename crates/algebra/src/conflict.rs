//! Conflict reporting for the extended union.
//!
//! §2.2: *"In case none of the focal elements of two mass functions
//! intersect, we use ∅ to denote the conflicting information provided
//! by the source databases. Some actions may be necessary to inform
//! the data administrators or integrators about the conflict."*
//!
//! The extended union therefore records, per merged attribute, the
//! observed conflict mass κ, and resolves κ = 1 (total conflict)
//! according to a caller-chosen [`ConflictPolicy`]. The accumulated
//! [`ConflictReport`] is the artifact handed to the data
//! administrator.

use evirel_relation::Value;
use std::fmt;

/// What to do when two matched tuples are in *total* conflict (κ = 1)
/// on some attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Abort the union with [`crate::AlgebraError::TotalConflict`] —
    /// the strictest reading of the paper's "inform the integrators".
    #[default]
    Error,
    /// Keep the left relation's value, record the conflict.
    KeepLeft,
    /// Keep the right relation's value, record the conflict.
    KeepRight,
    /// Replace the value with total ignorance (the vacuous evidence
    /// set), record the conflict. This mirrors Yager's treatment of
    /// conflict as ignorance.
    Vacuous,
}

impl fmt::Display for ConflictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictPolicy::Error => "error",
            ConflictPolicy::KeepLeft => "keep-left",
            ConflictPolicy::KeepRight => "keep-right",
            ConflictPolicy::Vacuous => "vacuous",
        };
        f.write_str(s)
    }
}

/// One attribute-level conflict observation from a tuple merge.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeConflict {
    /// Key of the matched tuple pair.
    pub key: Vec<Value>,
    /// Attribute that was merged.
    pub attr: String,
    /// Conflict mass κ of the Dempster combination (1.0 for total
    /// conflict).
    pub kappa: f64,
    /// `true` if κ = 1 and a [`ConflictPolicy`] had to be applied.
    pub total: bool,
}

/// The union's conflict artifact: every nonzero κ observed, plus any
/// total conflicts and how they were resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConflictReport {
    conflicts: Vec<AttributeConflict>,
}

impl ConflictReport {
    /// An empty report.
    pub fn new() -> ConflictReport {
        ConflictReport::default()
    }

    /// Record an observation.
    pub fn record(&mut self, c: AttributeConflict) {
        self.conflicts.push(c);
    }

    /// All observations in merge order.
    pub fn conflicts(&self) -> &[AttributeConflict] {
        &self.conflicts
    }

    /// Observations with κ = 1.
    pub fn total_conflicts(&self) -> impl Iterator<Item = &AttributeConflict> {
        self.conflicts.iter().filter(|c| c.total)
    }

    /// `true` when no conflict at all was observed.
    pub fn is_empty(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.conflicts.len()
    }

    /// The largest κ observed (0.0 for an empty report).
    pub fn max_kappa(&self) -> f64 {
        self.conflicts.iter().map(|c| c.kappa).fold(0.0, f64::max)
    }

    /// Mean κ over all observations (0.0 for an empty report).
    pub fn mean_kappa(&self) -> f64 {
        if self.conflicts.is_empty() {
            0.0
        } else {
            self.conflicts.iter().map(|c| c.kappa).sum::<f64>() / self.conflicts.len() as f64
        }
    }
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no attribute conflicts");
        }
        writeln!(
            f,
            "{} attribute conflict(s), max κ = {:.3}, mean κ = {:.3}",
            self.len(),
            self.max_kappa(),
            self.mean_kappa()
        )?;
        for c in &self.conflicts {
            writeln!(
                f,
                "  key {} attr {:?}: κ = {:.3}{}",
                Value::render_key(&c.key),
                c.attr,
                c.kappa,
                if c.total {
                    " (TOTAL, policy applied)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kappa: f64, total: bool) -> AttributeConflict {
        AttributeConflict {
            key: vec![Value::str("wok")],
            attr: "rating".into(),
            kappa,
            total,
        }
    }

    #[test]
    fn report_statistics() {
        let mut r = ConflictReport::new();
        assert!(r.is_empty());
        assert_eq!(r.max_kappa(), 0.0);
        assert_eq!(r.mean_kappa(), 0.0);
        r.record(obs(0.2, false));
        r.record(obs(0.6, false));
        r.record(obs(1.0, true));
        assert_eq!(r.len(), 3);
        assert!((r.max_kappa() - 1.0).abs() < 1e-12);
        assert!((r.mean_kappa() - 0.6).abs() < 1e-12);
        assert_eq!(r.total_conflicts().count(), 1);
    }

    #[test]
    fn report_display() {
        let mut r = ConflictReport::new();
        assert_eq!(r.to_string(), "no attribute conflicts");
        r.record(obs(1.0, true));
        let text = r.to_string();
        assert!(text.contains("(wok)"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn policy_display_and_default() {
        assert_eq!(ConflictPolicy::default(), ConflictPolicy::Error);
        assert_eq!(ConflictPolicy::Vacuous.to_string(), "vacuous");
    }
}
