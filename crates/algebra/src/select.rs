//! Extended selection σ̃ (§3.1).
//!
//! ```text
//! σ̃QP(R) = { (r.Ã, t_TM) | r ∈ R ∧ t_TM = F_TM(r.(sn,sp), F_SS(r, P)) ∧ Q(t_TM) }
//! ```
//!
//! For each tuple: evaluate the selection condition's support
//! `F_SS(r, P)` (see [`crate::support`]), derive the revised
//! membership with the multiplicative `F_TM` (§3.1.2, independent
//! events), and keep the tuple iff the membership threshold `Q`
//! admits the revised pair. Original attribute values are **retained**
//! (footnote 4: unlike DeMichiel's approach, selection does not modify
//! attribute values).

use crate::error::AlgebraError;
use crate::predicate::Predicate;
use crate::support::predicate_support;
use crate::threshold::Threshold;
use evirel_relation::ExtendedRelation;
use std::sync::Arc;

/// Apply the extended selection to `rel`.
///
/// # Errors
/// * [`AlgebraError::ThresholdNotPositive`] if `Q` could admit tuples
///   with `sn = 0`;
/// * predicate-evaluation errors from [`predicate_support`].
pub fn select(
    rel: &ExtendedRelation,
    pred: &Predicate,
    threshold: &Threshold,
) -> Result<ExtendedRelation, AlgebraError> {
    if !threshold.ensures_positive_support() {
        return Err(AlgebraError::ThresholdNotPositive {
            threshold: threshold.to_string(),
        });
    }
    let schema = rel.schema();
    let out_schema = Arc::new(schema.renamed(format!("σ({})", schema.name())));
    let mut out = ExtendedRelation::new(Arc::clone(&out_schema));
    for tuple in rel.iter() {
        let fss = predicate_support(schema, tuple, pred)?;
        // F_TM: selection support and original membership are
        // independent events (§3.1.2).
        let revised = tuple.membership().and_independent(&fss);
        if threshold.admits(&revised) && revised.is_positive() {
            out.insert(tuple.with_membership(revised))
                .map_err(AlgebraError::Relation)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, SupportPair, Value, ValueKind};

    fn speciality_domain() -> Arc<AttrDomain> {
        Arc::new(
            AttrDomain::categorical("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"])
                .unwrap(),
        )
    }

    fn rating_domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap())
    }

    /// A three-tuple slice of the paper's R_A (garden, wok, ashiana).
    fn ra() -> ExtendedRelation {
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg", ValueKind::Int)
                .evidential("speciality", speciality_domain())
                .evidential("rating", rating_domain())
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "garden")
                    .set_int("bldg", 2011)
                    .set_evidence_with_omega(
                        "speciality",
                        [(&["si"][..], 0.5), (&["hu"][..], 0.25)],
                        0.25,
                    )
                    .set_evidence(
                        "rating",
                        [
                            (&["ex"][..], 0.33),
                            (&["gd"][..], 0.5),
                            (&["avg"][..], 0.17),
                        ],
                    )
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "wok")
                    .set_int("bldg", 600)
                    .set_evidence("speciality", [(&["si"][..], 1.0)])
                    .set_evidence("rating", [(&["gd"][..], 0.25), (&["avg"][..], 0.75)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "ashiana")
                    .set_int("bldg", 353)
                    .set_evidence_with_omega("speciality", [(&["mu"][..], 0.9)], 0.1)
                    .set_evidence("rating", [(&["ex"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    /// Table 2: σ̃_{sn>0, speciality is {si}} keeps garden at
    /// (0.5, 0.75) and wok at (1,1); ashiana (sn = 0) is dropped.
    #[test]
    fn paper_table2_selection() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["si"]),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert_eq!(result.len(), 2);
        let garden = result.get_by_key(&[Value::str("garden")]).unwrap();
        assert!(garden
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.75).unwrap()));
        let wok = result.get_by_key(&[Value::str("wok")]).unwrap();
        assert!(wok.membership().is_certain());
        assert!(result.get_by_key(&[Value::str("ashiana")]).is_none());
    }

    /// Attribute values are retained in the selection result
    /// (footnote 4).
    #[test]
    fn selection_retains_attribute_values() {
        let input = ra();
        let result = select(
            &input,
            &Predicate::is("speciality", ["si"]),
            &Threshold::POSITIVE,
        )
        .unwrap();
        let orig = input.get_by_key(&[Value::str("garden")]).unwrap();
        let got = result.get_by_key(&[Value::str("garden")]).unwrap();
        assert_eq!(orig.values(), got.values());
    }

    /// Table 3 shape: compound predicate with the multiplicative rule,
    /// then F_TM against the original membership.
    #[test]
    fn paper_table3_compound_selection() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"])),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        let ashiana = result.get_by_key(&[Value::str("ashiana")]).unwrap();
        // F_SS = (0.9, 1.0) × (1, 1) = (0.9, 1.0); membership (1,1).
        assert!(ashiana
            .membership()
            .approx_eq(&SupportPair::new(0.9, 1.0).unwrap()));
    }

    #[test]
    fn definite_threshold_selects_certain_only() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["si"]),
            &Threshold::Definite,
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert!(result.contains_key(&[Value::str("wok")]));
    }

    #[test]
    fn theta_predicate_selection() {
        // rating >= gd with threshold sn >= 0.5.
        let result = select(
            &ra(),
            &Predicate::theta(Operand::attr("rating"), ThetaOp::Ge, Operand::value("gd")),
            &Threshold::SnAtLeast(0.5),
        )
        .unwrap();
        // garden: 0.83; wok: 0.25 (dropped); ashiana: 1.0.
        assert_eq!(result.len(), 2);
        assert!(result.contains_key(&[Value::str("garden")]));
        assert!(result.contains_key(&[Value::str("ashiana")]));
    }

    #[test]
    fn bad_threshold_rejected() {
        let err = select(
            &ra(),
            &Predicate::is("speciality", ["si"]),
            &Threshold::SnAtLeast(0.0),
        );
        assert!(matches!(
            err,
            Err(AlgebraError::ThresholdNotPositive { .. })
        ));
    }

    #[test]
    fn selection_result_satisfies_cwa() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["si", "mu"]),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert!(evirel_relation::cwa::satisfies_cwa(&result));
        assert!(result.validate().is_ok());
    }

    #[test]
    fn empty_selection_is_fine() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["it"]),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn result_schema_is_renamed_copy() {
        let result = select(
            &ra(),
            &Predicate::is("speciality", ["si"]),
            &Threshold::POSITIVE,
        )
        .unwrap();
        assert_eq!(result.schema().name(), "σ(RA)");
        assert_eq!(result.schema().arity(), ra().schema().arity());
    }
}
