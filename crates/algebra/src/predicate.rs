//! Selection-condition AST (§3.1.1).
//!
//! A selection condition is an *atomic predicate* or a *compound
//! predicate* built from atomic ones. The paper defines:
//!
//! * **is-predicates** `A is {c₁, …, cₙ}` — does the (evidential)
//!   attribute value commit to the given set of domain values?
//! * **θ-predicates** `A θ B`, θ ∈ {=, <, >, ≤, ≥} — order
//!   comparisons between two evidence sets;
//! * **conjunction** `S ∧ T` of mutually independent predicates.
//!
//! As documented extensions (used by the query language and marked as
//! such), we add disjunction `S ∨ T` and negation `¬S` with the
//! standard independent-event support arithmetic; the paper's
//! operations never require them.

use evirel_relation::Value;
use std::fmt;

/// A θ comparison operator. The paper's set is {=, >, <, ≥, ≤}; `≠` is
/// included as an extension for the query layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThetaOp {
    /// `=`
    Eq,
    /// `≠` (extension)
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl ThetaOp {
    /// Apply the operator to two domain-order indices.
    pub fn test(&self, a: usize, b: usize) -> bool {
        match self {
            ThetaOp::Eq => a == b,
            ThetaOp::Ne => a != b,
            ThetaOp::Lt => a < b,
            ThetaOp::Le => a <= b,
            ThetaOp::Gt => a > b,
            ThetaOp::Ge => a >= b,
        }
    }

    /// Apply the operator to two definite values (natural order).
    pub fn test_values(&self, a: &Value, b: &Value) -> bool {
        let ord = a.cmp(b);
        match self {
            ThetaOp::Eq => ord.is_eq(),
            ThetaOp::Ne => ord.is_ne(),
            ThetaOp::Lt => ord.is_lt(),
            ThetaOp::Le => ord.is_le(),
            ThetaOp::Gt => ord.is_gt(),
            ThetaOp::Ge => ord.is_ge(),
        }
    }
}

impl fmt::Display for ThetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThetaOp::Eq => "=",
            ThetaOp::Ne => "!=",
            ThetaOp::Lt => "<",
            ThetaOp::Le => "<=",
            ThetaOp::Gt => ">",
            ThetaOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One side of a θ-predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An attribute of the tuple under evaluation.
    Attr(String),
    /// A definite literal value. Against an evidential attribute it is
    /// promoted to the certain evidence set `m({v}) = 1`.
    Value(Value),
    /// An evidence-set literal given as `(domain values, mass)` pairs —
    /// resolved against the attribute's domain at evaluation time.
    /// This is how the paper's inline example
    /// `[{1,4}^0.6, {2,6}^0.4] ≤ [{2,4}^0.8, 5^0.2]` is expressed.
    Evidence(Vec<(Vec<Value>, f64)>),
}

impl Operand {
    /// Shorthand for an attribute operand.
    pub fn attr(name: impl Into<String>) -> Operand {
        Operand::Attr(name.into())
    }

    /// Shorthand for a definite literal.
    pub fn value(v: impl Into<Value>) -> Operand {
        Operand::Value(v.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Value(v) => write!(f, "{v}"),
            Operand::Evidence(entries) => {
                write!(f, "[")?;
                for (i, (vals, w)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if vals.len() == 1 {
                        write!(f, "{}", vals[0])?;
                    } else {
                        write!(f, "{{")?;
                        for (j, v) in vals.iter().enumerate() {
                            if j > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, "}}")?;
                    }
                    write!(f, "^{w}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `A is {c₁, …, cₙ}` — support is `(Bel(C), Pls(C))` of the
    /// attribute's evidence set for the target set `C`.
    Is {
        /// Attribute name.
        attr: String,
        /// The target domain values `C`.
        values: Vec<Value>,
    },
    /// `A θ B` over evidence sets, with the paper's ∀∀/∃∃ support
    /// semantics.
    Theta {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: ThetaOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction of independent predicates (multiplicative rule).
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction (extension; independent-event arithmetic).
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (extension; `(sn, sp) ↦ (1 − sp, 1 − sn)`).
    Not(Box<Predicate>),
}

impl Predicate {
    /// Build `attr is {values}`.
    pub fn is<V: Into<Value>>(
        attr: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Predicate {
        Predicate::Is {
            attr: attr.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Build `left θ right`.
    pub fn theta(left: Operand, op: ThetaOp, right: Operand) -> Predicate {
        Predicate::Theta { left, op, right }
    }

    /// Conjoin with another predicate.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjoin with another predicate (extension).
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negate (extension).
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// All attribute names referenced by the predicate.
    pub fn referenced_attrs(&self) -> Vec<&str> {
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a str>) {
            match p {
                Predicate::Is { attr, .. } => out.push(attr),
                Predicate::Theta { left, right, .. } => {
                    for op in [left, right] {
                        if let Operand::Attr(a) = op {
                            out.push(a);
                        }
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Split a top-level conjunction chain into its conjuncts
    /// (`A ∧ (B ∧ C)` → `[A, B, C]`); a non-`And` predicate is its own
    /// single conjunct. The multiplicative rule makes conjunct order
    /// irrelevant, which is what lets the plan optimizer push
    /// individual conjuncts through ×̃.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
            match p {
                Predicate::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from conjuncts; `None` for an empty list.
    pub fn from_conjuncts<I: IntoIterator<Item = Predicate>>(conjuncts: I) -> Option<Predicate> {
        conjuncts.into_iter().reduce(Predicate::and)
    }

    /// A copy with every referenced attribute name passed through `f`
    /// — used by the plan optimizer to unqualify attribute names when
    /// pushing conjuncts below a ×̃ whose schema qualified them.
    pub fn map_attrs(&self, f: &impl Fn(&str) -> String) -> Predicate {
        let map_operand = |o: &Operand| match o {
            Operand::Attr(a) => Operand::Attr(f(a)),
            other => other.clone(),
        };
        match self {
            Predicate::Is { attr, values } => Predicate::Is {
                attr: f(attr),
                values: values.clone(),
            },
            Predicate::Theta { left, op, right } => Predicate::Theta {
                left: map_operand(left),
                op: *op,
                right: map_operand(right),
            },
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_attrs(f)), Box::new(b.map_attrs(f)))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_attrs(f)), Box::new(b.map_attrs(f)))
            }
            Predicate::Not(a) => Predicate::Not(Box::new(a.map_attrs(f))),
        }
    }

    /// `true` if any θ-operand is an evidence-set literal. Such
    /// predicates never have crisp support, which disqualifies them
    /// from the plan optimizer's σ̃-under-∪̃ distribution.
    pub fn has_evidence_literal(&self) -> bool {
        match self {
            Predicate::Is { .. } => false,
            Predicate::Theta { left, right, .. } => {
                matches!(left, Operand::Evidence(_)) || matches!(right, Operand::Evidence(_))
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.has_evidence_literal() || b.has_evidence_literal()
            }
            Predicate::Not(a) => a.has_evidence_literal(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Is { attr, values } => {
                write!(f, "{attr} is {{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Predicate::Theta { left, op, right } => write!(f, "({left} {op} {right})"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_on_indices() {
        assert!(ThetaOp::Le.test(1, 1));
        assert!(ThetaOp::Lt.test(0, 1));
        assert!(!ThetaOp::Gt.test(0, 1));
        assert!(ThetaOp::Ge.test(2, 2));
        assert!(ThetaOp::Eq.test(3, 3));
        assert!(ThetaOp::Ne.test(3, 4));
    }

    #[test]
    fn theta_on_values() {
        assert!(ThetaOp::Lt.test_values(&Value::int(1), &Value::int(2)));
        assert!(ThetaOp::Eq.test_values(&Value::str("a"), &Value::str("a")));
        assert!(ThetaOp::Ge.test_values(&Value::float(2.0), &Value::float(2.0)));
    }

    #[test]
    fn builders_and_display() {
        let p = Predicate::is("speciality", ["si"]).and(Predicate::is("rating", ["ex"]));
        assert_eq!(p.to_string(), "(speciality is {si} AND rating is {ex})");
        let t = Predicate::theta(Operand::attr("bldg"), ThetaOp::Le, Operand::value(1000i64));
        assert_eq!(t.to_string(), "(bldg <= 1000)");
        let n = Predicate::is("a", ["x"])
            .negate()
            .or(Predicate::is("b", ["y"]));
        assert!(n.to_string().contains("NOT"));
        assert!(n.to_string().contains("OR"));
    }

    #[test]
    fn evidence_operand_display() {
        let e = Operand::Evidence(vec![
            (vec![Value::int(1), Value::int(4)], 0.6),
            (vec![Value::int(2), Value::int(6)], 0.4),
        ]);
        assert_eq!(e.to_string(), "[{1,4}^0.6, {2,6}^0.4]");
        let single = Operand::Evidence(vec![(vec![Value::int(5)], 0.2)]);
        assert_eq!(single.to_string(), "[5^0.2]");
    }

    #[test]
    fn referenced_attrs_walks_tree() {
        let p = Predicate::is("a", ["x"])
            .and(Predicate::theta(
                Operand::attr("b"),
                ThetaOp::Eq,
                Operand::attr("c"),
            ))
            .or(Predicate::is("d", ["y"]).negate());
        let attrs = p.referenced_attrs();
        assert_eq!(attrs, vec!["a", "b", "c", "d"]);
    }
}
