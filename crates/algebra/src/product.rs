//! Extended cartesian product ×̃ (§3.4).
//!
//! Concatenates every pair of tuples from `R` and `S` and combines
//! their membership pairs with the multiplicative `F_TM` — the two
//! tuples' memberships are treated as independent events. Attribute
//! names that clash are qualified with the source relation's name
//! (`R.a`, `S.a`); the result key is the concatenation of both keys.

use crate::error::AlgebraError;
use evirel_relation::{AttrType, AttrValue, ExtendedRelation, Schema, Tuple};
use std::collections::HashSet;
use std::sync::Arc;

/// The schema of `left ×̃ right`: both attribute lists concatenated,
/// clashing names qualified with the source relation's name. Exposed
/// so the plan layer's streaming product/join operators derive the
/// exact same schema as the free function.
///
/// # Errors
/// [`AlgebraError::AmbiguousAttribute`] if qualification still leaves
/// duplicate attribute names (e.g. both relations are named
/// identically and share an attribute name).
pub fn product_schema(ls: &Schema, rs: &Schema) -> Result<Schema, AlgebraError> {
    // Determine which names clash and need qualification.
    let left_names: HashSet<&str> = ls.attrs().iter().map(|a| a.name()).collect();
    let right_names: HashSet<&str> = rs.attrs().iter().map(|a| a.name()).collect();

    let qualify = |schema: &Schema, other: &HashSet<&str>, name: &str| -> String {
        if other.contains(name) {
            format!("{}.{}", schema.name(), name)
        } else {
            name.to_owned()
        }
    };

    let mut builder = Schema::builder(format!("{}×{}", ls.name(), rs.name()));
    let mut seen: HashSet<String> = HashSet::new();
    for (schema, other) in [(ls, &right_names), (rs, &left_names)] {
        for attr in schema.attrs() {
            let name = qualify(schema, other, attr.name());
            if !seen.insert(name.clone()) {
                return Err(AlgebraError::AmbiguousAttribute { attr: name });
            }
            builder = match (attr.is_key(), attr.ty()) {
                (true, AttrType::Definite(kind)) => builder.key(name, *kind),
                (false, AttrType::Definite(kind)) => builder.definite(name, *kind),
                (_, AttrType::Evidential(domain)) => builder.evidential(name, Arc::clone(domain)),
            };
        }
    }
    Ok(builder.build()?)
}

/// Compute `left ×̃ right`.
///
/// # Errors
/// [`AlgebraError::AmbiguousAttribute`] if qualification still leaves
/// duplicate attribute names (e.g. both relations are named
/// identically and share an attribute name).
pub fn product(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
) -> Result<ExtendedRelation, AlgebraError> {
    let out_schema = Arc::new(product_schema(left.schema(), right.schema())?);

    let mut out = ExtendedRelation::new(Arc::clone(&out_schema));
    for l in left.iter() {
        for r in right.iter() {
            // F_TM: memberships of independent tuples multiply (§3.4).
            let membership = l.membership().and_independent(&r.membership());
            if !membership.is_positive() {
                continue; // CWA_ER: zero-support results are not stored.
            }
            let values: Vec<AttrValue> = l
                .values()
                .iter()
                .chain(r.values().iter())
                .cloned()
                .collect();
            out.insert(Tuple::new(&out_schema, values, membership)?)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, SupportPair, Value, ValueKind};

    fn restaurants() -> ExtendedRelation {
        let spec = Arc::new(AttrDomain::categorical("spec", ["mu", "it"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("rname")
                .evidential("spec", spec)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_evidence("spec", [(&["mu"][..], 1.0)])
                    .membership_pair(0.5, 0.5)
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_evidence("spec", [(&["it"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    fn managers() -> ExtendedRelation {
        let schema = Arc::new(
            Schema::builder("M")
                .key_str("mname")
                .definite("position", ValueKind::Str)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("mname", "alice")
                    .set_str("position", "chef")
                    .membership_pair(0.8, 1.0)
            })
            .unwrap()
            .build()
    }

    #[test]
    fn product_concatenates_and_multiplies_membership() {
        let p = product(&restaurants(), &managers()).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().arity(), 4);
        // Composite key: both keys.
        assert_eq!(p.schema().key_positions().len(), 2);
        let t = p
            .get_by_key(&[Value::str("mehl"), Value::str("alice")])
            .unwrap();
        // (0.5, 0.5) × (0.8, 1.0) = (0.4, 0.5).
        assert!(t
            .membership()
            .approx_eq(&SupportPair::new(0.4, 0.5).unwrap()));
        let t = p
            .get_by_key(&[Value::str("olive"), Value::str("alice")])
            .unwrap();
        assert!(t
            .membership()
            .approx_eq(&SupportPair::new(0.8, 1.0).unwrap()));
    }

    #[test]
    fn name_clashes_are_qualified() {
        let a = restaurants();
        let schema_b = Arc::new(
            Schema::builder("S")
                .key_str("rname")
                .definite("city", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let b = RelationBuilder::new(schema_b)
            .tuple(|t| t.set_str("rname", "x").set_str("city", "mpls"))
            .unwrap()
            .build();
        let p = product(&a, &b).unwrap();
        let names: Vec<_> = p
            .schema()
            .attrs()
            .iter()
            .map(|x| x.name().to_owned())
            .collect();
        assert!(names.contains(&"R.rname".to_owned()));
        assert!(names.contains(&"S.rname".to_owned()));
        assert!(names.contains(&"spec".to_owned()));
        assert!(names.contains(&"city".to_owned()));
    }

    #[test]
    fn self_product_is_ambiguous() {
        let a = restaurants();
        assert!(matches!(
            product(&a, &a),
            Err(AlgebraError::AmbiguousAttribute { .. })
        ));
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = restaurants();
        let empty = ExtendedRelation::new(Arc::clone(managers().schema()));
        let p = product(&a, &empty).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn zero_support_pairs_not_stored() {
        // A tuple pair whose membership product has sn = 0 is dropped.
        let spec = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("Z")
                .key_str("k")
                .evidential("d", spec)
                .build()
                .unwrap(),
        );
        let z = RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", "a")
                    .set_evidence("d", [(&["x"][..], 1.0)])
                    .membership_pair(0.5, 0.5)
            })
            .unwrap()
            .build();
        // Product with a relation whose only tuple has sn > 0 keeps it:
        let p = product(&z, &managers()).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.validate().is_ok());
    }
}
