//! Extended set operations beyond the paper's union: intersection and
//! difference. **Extensions**, documented as such.
//!
//! * *Extended intersection* `R ∩̃ S`: only key-matched tuples
//!   survive, merged exactly as in the extended union. This is the
//!   natural "both sources know this entity" operator.
//! * *Extended difference* `R −̃ S`: tuples of `R` whose key does not
//!   appear in `S`, unchanged. (Membership subtraction has no sound
//!   evidential semantics — removing it would violate closure — so
//!   difference is key-based, mirroring how the paper treats unmatched
//!   tuples as "the other relation is totally ignorant".)
//!
//! Both operations preserve closure and boundedness (verified in the
//! property suite).

use crate::conflict::ConflictReport;
use crate::error::AlgebraError;
use crate::union::{union_with, UnionOptions};
use evirel_relation::ExtendedRelation;
use std::sync::Arc;

/// Extended intersection: key-matched tuples, merged with the same
/// machinery as the extended union.
///
/// # Errors
/// As [`crate::union::union_with`].
pub fn intersect_extended(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
    options: &UnionOptions,
) -> Result<(ExtendedRelation, ConflictReport), AlgebraError> {
    // Merge via union, then keep only keys present in both inputs.
    let merged = union_with(left, right, options)?;
    let schema = Arc::new(left.schema().renamed(format!(
        "{}∩{}",
        left.schema().name(),
        right.schema().name()
    )));
    let mut out = ExtendedRelation::new(schema);
    for (key, tuple) in merged.relation.iter_keyed_shared() {
        if left.contains_key(&key) && right.contains_key(&key) {
            out.insert_shared(Arc::clone(tuple))?;
        }
    }
    Ok((out, merged.report))
}

/// Extended difference: tuples of `left` whose key is absent from
/// `right`.
///
/// # Errors
/// [`AlgebraError::Relation`] if the schemas are not union-compatible.
pub fn difference_extended(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
) -> Result<ExtendedRelation, AlgebraError> {
    left.schema().check_union_compatible(right.schema())?;
    let schema = Arc::new(left.schema().renamed(format!(
        "{}−{}",
        left.schema().name(),
        right.schema().name()
    )));
    let mut out = ExtendedRelation::new(schema);
    for (key, tuple) in left.iter_keyed_shared() {
        if !right.contains_key(&key) && tuple.membership().is_positive() {
            out.insert_shared(Arc::clone(tuple))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, Value};

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap())
    }

    fn schema(name: &str) -> Arc<Schema> {
        Arc::new(
            Schema::builder(name)
                .key_str("k")
                .evidential("d", domain())
                .build()
                .unwrap(),
        )
    }

    fn rel(name: &str, keys: &[(&str, &str)]) -> ExtendedRelation {
        let mut b = RelationBuilder::new(schema(name));
        for (k, label) in keys {
            b = b
                .tuple(|t| t.set_str("k", *k).set_evidence("d", [(&[*label][..], 1.0)]))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn intersection_keeps_common_keys_merged() {
        let a = rel("A", &[("p", "x"), ("q", "y")]);
        let b = rel("B", &[("q", "y"), ("r", "z")]);
        let (i, report) = intersect_extended(&a, &b, &UnionOptions::default()).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains_key(&[Value::str("q")]));
        assert!(report.is_empty()); // agreeing evidence: no conflict
    }

    #[test]
    fn difference_drops_matched_keys() {
        let a = rel("A", &[("p", "x"), ("q", "y")]);
        let b = rel("B", &[("q", "y"), ("r", "z")]);
        let d = difference_extended(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_key(&[Value::str("p")]));
        // Tuples unchanged.
        let t = d.get_by_key(&[Value::str("p")]).unwrap();
        assert!(t.membership().is_certain());
    }

    #[test]
    fn difference_with_self_is_empty() {
        let a = rel("A", &[("p", "x")]);
        let d = difference_extended(&a, &a).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn intersection_with_disjoint_is_empty() {
        let a = rel("A", &[("p", "x")]);
        let b = rel("B", &[("q", "y")]);
        let (i, _) = intersect_extended(&a, &b, &UnionOptions::default()).unwrap();
        assert!(i.is_empty());
    }

    #[test]
    fn incompatible_schemas_rejected() {
        let a = rel("A", &[("p", "x")]);
        let other_schema = Arc::new(Schema::builder("X").key_int("n").build().unwrap());
        let b = ExtendedRelation::new(other_schema);
        assert!(difference_extended(&a, &b).is_err());
        assert!(intersect_extended(&a, &b, &UnionOptions::default()).is_err());
    }
}
