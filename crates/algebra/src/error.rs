//! Error types for the extended relational algebra.

use evirel_evidence::EvidenceError;
use evirel_relation::RelationError;
use std::fmt;

/// Errors produced by the extended relational operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// An underlying relational-model error.
    Relation(RelationError),
    /// An underlying evidence error.
    Evidence(EvidenceError),
    /// A predicate referenced operands whose types cannot be compared.
    PredicateType {
        /// Human-readable explanation.
        reason: String,
    },
    /// A projection omitted a key attribute; §3.3 requires the
    /// projected attribute list to include the key (and the membership
    /// attribute, which is implicit here).
    ProjectionMissingKey {
        /// The omitted key attribute.
        attr: String,
    },
    /// A projection named the same attribute twice.
    DuplicateProjection {
        /// The repeated attribute.
        attr: String,
    },
    /// A membership threshold that admits `sn = 0` tuples would break
    /// the CWA_ER interpretation of result relations (§3.1.3).
    ThresholdNotPositive {
        /// Rendering of the offending threshold.
        threshold: String,
    },
    /// Total conflict (κ = 1) while merging an attribute of matched
    /// tuples under [`crate::conflict::ConflictPolicy::Error`]. Carries
    /// enough context for the data administrator the paper wants
    /// informed.
    TotalConflict {
        /// Rendered key of the conflicting tuple pair.
        key: String,
        /// The attribute in conflict.
        attr: String,
    },
    /// Cartesian product requires the operand schemas to have disjoint
    /// attribute names after qualification.
    AmbiguousAttribute {
        /// The clashing name.
        attr: String,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Relation(e) => write!(f, "relation error: {e}"),
            Self::Evidence(e) => write!(f, "evidence error: {e}"),
            Self::PredicateType { reason } => write!(f, "predicate type error: {reason}"),
            Self::ProjectionMissingKey { attr } => {
                write!(
                    f,
                    "projection must include key attribute {attr:?} (section 3.3)"
                )
            }
            Self::DuplicateProjection { attr } => {
                write!(f, "attribute {attr:?} appears twice in projection list")
            }
            Self::ThresholdNotPositive { threshold } => {
                write!(
                    f,
                    "membership threshold {threshold} admits sn = 0 tuples, violating CWA_ER"
                )
            }
            Self::TotalConflict { key, attr } => {
                write!(
                    f,
                    "total conflict (κ = 1) merging attribute {attr:?} of tuples with key {key}"
                )
            }
            Self::AmbiguousAttribute { attr } => {
                write!(f, "attribute {attr:?} is ambiguous in the product schema")
            }
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Relation(e) => Some(e),
            Self::Evidence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for AlgebraError {
    fn from(e: RelationError) -> Self {
        AlgebraError::Relation(e)
    }
}

impl From<EvidenceError> for AlgebraError {
    fn from(e: EvidenceError) -> Self {
        AlgebraError::Evidence(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_nest() {
        let e: AlgebraError = RelationError::CwaViolation.into();
        assert!(matches!(e, AlgebraError::Relation(_)));
        let e: AlgebraError = EvidenceError::TotalConflict.into();
        assert!(matches!(e, AlgebraError::Evidence(_)));
    }

    #[test]
    fn messages() {
        let e = AlgebraError::TotalConflict {
            key: "(wok)".into(),
            attr: "rating".into(),
        };
        assert!(e.to_string().contains("rating"));
        assert!(e.to_string().contains("(wok)"));
        let e = AlgebraError::ProjectionMissingKey {
            attr: "rname".into(),
        };
        assert!(e.to_string().contains("rname"));
    }
}
