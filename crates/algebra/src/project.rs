//! Extended projection π̃ (§3.3).
//!
//! `π̃_Ã(R) ≡ { r.Ã | r ∈ R }` where the attribute list `Ã` must
//! include the key attributes and (implicitly) the tuple-membership
//! attribute. Because keys are always retained, projected tuples stay
//! unique and membership values carry over unchanged — Table 5 of the
//! paper.

use crate::error::AlgebraError;
use evirel_relation::{ExtendedRelation, Schema};
use std::collections::HashSet;
use std::sync::Arc;

/// Project `rel` onto the named attributes (in the given order).
///
/// # Errors
/// * [`AlgebraError::ProjectionMissingKey`] if any key attribute is
///   omitted;
/// * [`AlgebraError::DuplicateProjection`] for repeated names;
/// * [`AlgebraError::Relation`] for unknown attributes.
pub fn project(rel: &ExtendedRelation, attrs: &[&str]) -> Result<ExtendedRelation, AlgebraError> {
    let schema = rel.schema();
    let positions = projection_positions(schema, attrs)?;
    let out_schema =
        Arc::new(projected_schema(schema, &positions)?.renamed(format!("π({})", schema.name())));

    let mut out = ExtendedRelation::new(Arc::clone(&out_schema));
    for tuple in rel.iter() {
        // Closure: zero-support tuples are not stored (only possible
        // when projecting a complement-augmented relation).
        if tuple.membership().is_positive() {
            out.insert(tuple.project(&positions))?;
        }
    }
    Ok(out)
}

/// Validate a projection attribute list against `schema` and return
/// the source positions, in list order. Exposed for the plan layer's
/// streaming project operator and plan-time semantic checks.
///
/// # Errors
/// As [`project`]: duplicate names, missing key attributes, unknown
/// attributes.
pub fn projection_positions(schema: &Schema, attrs: &[&str]) -> Result<Vec<usize>, AlgebraError> {
    let mut seen = HashSet::new();
    let mut positions = Vec::with_capacity(attrs.len());
    for name in attrs {
        if !seen.insert(*name) {
            return Err(AlgebraError::DuplicateProjection {
                attr: (*name).to_owned(),
            });
        }
        positions.push(schema.position(name)?);
    }
    for &key_pos in schema.key_positions() {
        if !positions.contains(&key_pos) {
            return Err(AlgebraError::ProjectionMissingKey {
                attr: schema.attr(key_pos).name().to_owned(),
            });
        }
    }
    Ok(positions)
}

/// The schema obtained by keeping `positions` (in order), preserving
/// key-ness, types, and the source relation's name.
///
/// # Errors
/// Schema-construction failures (duplicate names, no key) — cannot
/// occur for positions produced by [`projection_positions`].
pub fn projected_schema(schema: &Schema, positions: &[usize]) -> Result<Schema, AlgebraError> {
    let mut builder = Schema::builder(schema.name().to_owned());
    for &pos in positions {
        let attr = schema.attr(pos);
        builder = match (attr.is_key(), attr.ty()) {
            (true, evirel_relation::AttrType::Definite(kind)) => builder.key(attr.name(), *kind),
            (false, evirel_relation::AttrType::Definite(kind)) => {
                builder.definite(attr.name(), *kind)
            }
            (_, evirel_relation::AttrType::Evidential(domain)) => {
                builder.evidential(attr.name(), Arc::clone(domain))
            }
        };
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, SupportPair, Value, ValueKind};

    fn rel() -> ExtendedRelation {
        let spec = Arc::new(AttrDomain::categorical("spec", ["mu", "ta"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("street", ValueKind::Str)
                .definite("phone", ValueKind::Str)
                .evidential("spec", spec)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("street", "9th-street")
                    .set_str("phone", "333-4035")
                    .set_evidence("spec", [(&["mu"][..], 0.8), (&["ta"][..], 0.2)])
                    .membership_pair(0.5, 0.5)
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_str("street", "nic.ave.")
                    .set_str("phone", "338-0355")
                    .set_evidence("spec", [(&["mu"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    /// Table 5 semantics: membership carries over unchanged; projected
    /// attributes keep their values.
    #[test]
    fn paper_table5_projection() {
        let p = project(&rel(), &["rname", "phone", "spec"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().arity(), 3);
        let mehl = p.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!(mehl
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.5).unwrap()));
        assert_eq!(
            mehl.value(1).as_definite().unwrap(),
            &Value::str("333-4035")
        );
        assert!(mehl.value(2).as_evidential().is_some());
    }

    #[test]
    fn key_must_be_included() {
        let err = project(&rel(), &["phone", "spec"]);
        assert!(matches!(
            err,
            Err(AlgebraError::ProjectionMissingKey { .. })
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let err = project(&rel(), &["rname", "phone", "phone"]);
        assert!(matches!(err, Err(AlgebraError::DuplicateProjection { .. })));
    }

    #[test]
    fn unknown_attr_rejected() {
        let err = project(&rel(), &["rname", "nope"]);
        assert!(matches!(err, Err(AlgebraError::Relation(_))));
    }

    #[test]
    fn projection_reorders() {
        let p = project(&rel(), &["phone", "rname"]).unwrap();
        let attrs: Vec<_> = p
            .schema()
            .attrs()
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        assert_eq!(attrs, vec!["phone", "rname"]);
        // Key-ness preserved on the moved key attribute.
        assert!(p.schema().attr(1).is_key());
        assert!(!p.schema().attr(0).is_key());
    }

    #[test]
    fn identity_projection() {
        let r = rel();
        let all: Vec<&str> = r.schema().attrs().iter().map(|a| a.name()).collect();
        let p = project(&r, &all).unwrap();
        assert!(p.approx_eq(&r));
    }

    #[test]
    fn result_is_cwa_consistent() {
        let p = project(&rel(), &["rname", "spec"]).unwrap();
        assert!(p.validate().is_ok());
    }
}
