//! # evirel-algebra — the extended relational operations
//!
//! The heart of Lim, Srivastava & Shekhar (ICDE 1994), §3: a complete
//! algebra over extended relations. Every operation carries a tilde in
//! the paper (σ̃, ∪̃, π̃, ×̃, ⋈̃); here they are:
//!
//! | paper | module | function |
//! |-------|--------|----------|
//! | σ̃ (selection, §3.1)        | [`mod@select`]  | [`select::select`] |
//! | ∪̃ (extended union, §3.2)   | [`union`]   | [`union::union_extended`] |
//! | π̃ (projection, §3.3)       | [`mod@project`] | [`project::project`] |
//! | ×̃ (cartesian product, §3.4)| [`mod@product`] | [`product::product`] |
//! | ⋈̃ (join, §3.5)             | [`mod@join`]    | [`join::join`] |
//!
//! Supporting machinery:
//!
//! * [`predicate`] — the selection-condition AST: *is*-predicates,
//!   θ-predicates, and conjunctions (§3.1.1), plus the documented
//!   extensions `Or`/`Not`;
//! * [`support`] — the selection support function `F_SS` assigning a
//!   `(sn, sp)` pair to every (tuple, predicate) pair;
//! * [`threshold`] — membership threshold conditions `Q` (§3.1.3);
//! * [`conflict`] — conflict reports and resolution policies for the
//!   extended union (the paper's "inform the data administrators");
//! * [`setops`] — extensions: extended intersection and difference;
//! * [`rename`] — relation/attribute renaming;
//! * [`properties`] — empirical verifiers for the closure and
//!   boundedness properties of Theorem 1 (§3.6);
//! * [`partition`] — the key-hash [`Partitioner`] shared by every
//!   parallel executor (multiply-shift mix, multiply-high slots);
//! * [`par`] — a parallel extended-union executor partitioned by key
//!   hash (std threads only).
//!
//! All operations yield relations that satisfy CWA_ER by construction:
//! result tuples with `sn = 0` are *not stored* (they are exactly the
//! tuples the closed-world interpretation already accounts for), which
//! is how the closure property manifests in an executable system.
//!
//! ## Two layers: free functions vs. plans
//!
//! The free functions here are the *naive single-node
//! implementations*: each takes whole relations and materializes its
//! result. Composed queries should go through `evirel-plan` instead,
//! which builds a logical plan over the same operators, optimizes it
//! (predicate pushdown, threshold fusion, σ̃-under-∪̃ distribution),
//! and executes it with pull-based streaming operators that reuse
//! this crate's per-tuple kernels ([`support::predicate_support`],
//! [`union::merge_tuples`], the schema helpers) — so intermediates
//! are never materialized and ∪̃ conflict reports survive. The free
//! functions deliberately stay independent: they are the oracle the
//! plan layer's equivalence property suite is checked against.

pub mod conflict;
pub mod error;
pub mod join;
pub mod par;
pub mod partition;
pub mod predicate;
pub mod product;
pub mod project;
pub mod properties;
pub mod rename;
pub mod select;
pub mod setops;
pub mod support;
pub mod threshold;
pub mod union;

pub use conflict::{AttributeConflict, ConflictPolicy, ConflictReport};
pub use error::AlgebraError;
pub use join::join;
pub use partition::Partitioner;
pub use predicate::{Operand, Predicate, ThetaOp};
pub use product::product;
pub use project::project;
pub use rename::{rename_attribute, rename_relation};
pub use select::select;
pub use support::predicate_support;
pub use threshold::Threshold;
pub use union::{union_extended, MergeScratch, UnionOptions, UnionOutcome};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
