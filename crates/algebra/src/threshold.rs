//! Membership threshold conditions `Q` (§3.1.3).
//!
//! A threshold constrains the *revised* tuple membership of selection
//! (and join) results. To stay consistent with the CWA_ER
//! interpretation of extended relations, a threshold must guarantee
//! `sn > 0` for admitted tuples; thresholds that admit zero-support
//! tuples are rejected at operation time with
//! [`crate::AlgebraError::ThresholdNotPositive`].

use std::fmt;

use evirel_relation::SupportPair;

/// A membership threshold condition on the revised `(sn, sp)` of a
/// result tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// `sn > c`. The paper's running example uses `sn > 0`.
    SnGreater(f64),
    /// `sn ≥ c` (requires `c > 0` for CWA_ER consistency).
    SnAtLeast(f64),
    /// `sn = 1` — only tuples that *definitely* satisfy the query.
    Definite,
    /// `sp ≥ c` **and** `sn > 0` — plausibility screening; the
    /// explicit `sn > 0` conjunct keeps the result CWA_ER-consistent.
    SpAtLeastPositive(f64),
}

impl Threshold {
    /// The paper's default threshold `sn > 0`.
    pub const POSITIVE: Threshold = Threshold::SnGreater(0.0);

    /// Does the revised membership satisfy the threshold?
    pub fn admits(&self, m: &SupportPair) -> bool {
        match self {
            Threshold::SnGreater(c) => m.sn() > *c,
            Threshold::SnAtLeast(c) => m.sn() >= *c,
            Threshold::Definite => (m.sn() - 1.0).abs() < 1e-9,
            Threshold::SpAtLeastPositive(c) => m.sp() >= *c && m.sn() > 0.0,
        }
    }

    /// `true` iff every admitted pair necessarily has `sn > 0`,
    /// keeping the result a valid extended relation (§3.1.3).
    pub fn ensures_positive_support(&self) -> bool {
        match self {
            Threshold::SnGreater(c) => *c >= 0.0,
            Threshold::SnAtLeast(c) => *c > 0.0,
            Threshold::Definite => true,
            Threshold::SpAtLeastPositive(_) => true,
        }
    }
}

impl Default for Threshold {
    fn default() -> Self {
        Threshold::POSITIVE
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threshold::SnGreater(c) => write!(f, "sn > {c}"),
            Threshold::SnAtLeast(c) => write!(f, "sn >= {c}"),
            Threshold::Definite => write!(f, "sn = 1"),
            Threshold::SpAtLeastPositive(c) => write!(f, "sp >= {c} and sn > 0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(sn: f64, spv: f64) -> SupportPair {
        SupportPair::new(sn, spv).unwrap()
    }

    #[test]
    fn positive_threshold() {
        assert!(Threshold::POSITIVE.admits(&sp(0.01, 0.5)));
        assert!(!Threshold::POSITIVE.admits(&sp(0.0, 1.0)));
        assert!(Threshold::POSITIVE.ensures_positive_support());
    }

    #[test]
    fn definite_threshold() {
        assert!(Threshold::Definite.admits(&sp(1.0, 1.0)));
        assert!(!Threshold::Definite.admits(&sp(0.99, 1.0)));
        assert!(Threshold::Definite.ensures_positive_support());
    }

    #[test]
    fn sn_at_least() {
        let t = Threshold::SnAtLeast(0.5);
        assert!(t.admits(&sp(0.5, 0.7)));
        assert!(!t.admits(&sp(0.49, 0.7)));
        assert!(t.ensures_positive_support());
        // sn >= 0 would admit sn = 0 — not CWA_ER-consistent.
        assert!(!Threshold::SnAtLeast(0.0).ensures_positive_support());
    }

    #[test]
    fn sp_screening_keeps_positivity() {
        let t = Threshold::SpAtLeastPositive(0.8);
        assert!(t.admits(&sp(0.1, 0.9)));
        assert!(!t.admits(&sp(0.0, 0.9)));
        assert!(!t.admits(&sp(0.1, 0.7)));
        assert!(t.ensures_positive_support());
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Threshold::default(), Threshold::POSITIVE);
        assert_eq!(Threshold::SnGreater(0.0).to_string(), "sn > 0");
        assert_eq!(Threshold::Definite.to_string(), "sn = 1");
        assert!(Threshold::SnGreater(-0.5).to_string().contains("-0.5"));
        assert!(!Threshold::SnGreater(-0.5).ensures_positive_support());
    }
}
