//! Property-based verification of Theorem 1 (§3.6): the extended
//! operations σ̃, ∪̃, π̃, ×̃, ⋈̃ satisfy the Closure and Boundedness
//! properties — plus the algebraic laws the paper asserts for ∪̃
//! (commutativity, associativity).

use evirel_algebra::properties::{
    check_boundedness_binary, check_boundedness_unary, satisfies_closure,
};
use evirel_algebra::{
    join, product, project, select, union_extended, Operand, Predicate, ThetaOp, Threshold,
};
use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema, SupportPair, Value};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 5] = ["v0", "v1", "v2", "v3", "v4"];

fn domain() -> Arc<AttrDomain> {
    Arc::new(AttrDomain::categorical("d", LABELS).unwrap())
}

fn schema(name: &str) -> Arc<Schema> {
    Arc::new(
        Schema::builder(name)
            .key_str("k")
            .evidential("d", domain())
            .build()
            .unwrap(),
    )
}

/// One random row: key id, evidence (label-index bitmask + weight
/// split), membership.
#[derive(Debug, Clone)]
struct Row {
    key: u8,
    focal: Vec<(u8, u16)>, // (bitmask over 5 labels, raw weight)
    sn_millis: u16,        // in (0, 1000]
    sp_extra: u16,         // sp = sn + extra, clamped to 1000
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        0u8..12,
        proptest::collection::vec((1u8..32, 1u16..100), 1..4),
        1u16..=1000,
        0u16..=1000,
    )
        .prop_map(|(key, focal, sn_millis, sp_extra)| Row {
            key,
            focal,
            sn_millis,
            sp_extra,
        })
}

fn build_relation(name: &str, rows: &[Row]) -> ExtendedRelation {
    let schema = schema(name);
    let dom = domain();
    let mut builder = RelationBuilder::new(schema);
    let mut seen = std::collections::HashSet::new();
    for row in rows {
        if !seen.insert(row.key) {
            continue; // unique keys
        }
        let total: u32 = row.focal.iter().map(|(_, w)| *w as u32).sum();
        // Deduplicate masks, accumulating weights.
        let mut acc: std::collections::HashMap<u8, u32> = std::collections::HashMap::new();
        for (mask, w) in &row.focal {
            *acc.entry(*mask).or_insert(0) += *w as u32;
        }
        let entries: Vec<(Vec<Value>, f64)> = acc
            .into_iter()
            .map(|(mask, w)| {
                let vals: Vec<Value> = (0..5)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| Value::str(LABELS[i as usize]))
                    .collect();
                (vals, w as f64 / total as f64)
            })
            .collect();
        let sn = row.sn_millis as f64 / 1000.0;
        let sp = ((row.sn_millis + row.sp_extra).min(1000)) as f64 / 1000.0;
        let dom2 = Arc::clone(&dom);
        builder = builder
            .tuple(move |t| {
                let mut t = t.set_str("k", format!("key-{}", row.key));
                // Assemble the evidence via the raw mass builder to
                // allow multi-label focal sets.
                let mut mb =
                    evirel_evidence::MassFunction::<f64>::builder(Arc::clone(dom2.frame()));
                for (vals, w) in &entries {
                    let set = dom2.subset_of_values(vals.iter()).unwrap();
                    mb = mb.add_set(set, *w).unwrap();
                }
                let mass = mb.build().unwrap();
                t = t.set("d", evirel_relation::AttrValue::Evidential(mass));
                t.membership(SupportPair::new(sn, sp).unwrap())
            })
            .unwrap();
    }
    builder.build()
}

fn rel_strategy(name: &'static str) -> impl Strategy<Value = ExtendedRelation> {
    proptest::collection::vec(row_strategy(), 0..8)
        .prop_map(move |rows| build_relation(name, &rows))
}

fn some_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::is("d", ["v0"])),
        Just(Predicate::is("d", ["v1", "v2"])),
        Just(Predicate::is("d", ["v0"]).and(Predicate::is("d", ["v0", "v3"]))),
        Just(Predicate::theta(
            Operand::attr("d"),
            ThetaOp::Ge,
            Operand::value("v2")
        )),
        Just(Predicate::theta(
            Operand::attr("d"),
            ThetaOp::Lt,
            Operand::value("v3")
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_select(rel in rel_strategy("A"), pred in some_predicate()) {
        let out = select(&rel, &pred, &Threshold::POSITIVE).unwrap();
        prop_assert!(satisfies_closure(&out));
        prop_assert!(out.validate().is_ok());
    }

    #[test]
    fn closure_union(a in rel_strategy("A"), b in rel_strategy("B")) {
        if let Ok(out) = union_extended(&a, &b) {
            prop_assert!(satisfies_closure(&out.relation));
            prop_assert!(out.relation.validate().is_ok());
        }
    }

    #[test]
    fn closure_project(rel in rel_strategy("A")) {
        let out = project(&rel, &["k", "d"]).unwrap();
        prop_assert!(satisfies_closure(&out));
    }

    #[test]
    fn boundedness_select(rel in rel_strategy("A"), pred in some_predicate()) {
        prop_assert!(check_boundedness_unary(
            |r| select(r, &pred, &Threshold::POSITIVE),
            &rel
        ).unwrap());
    }

    #[test]
    fn boundedness_project(rel in rel_strategy("A")) {
        prop_assert!(check_boundedness_unary(|r| project(r, &["k", "d"]), &rel).unwrap());
    }

    #[test]
    fn boundedness_union(a in rel_strategy("A"), b in rel_strategy("B")) {
        let result = check_boundedness_binary(
            |l, r| Ok(union_extended(l, r)?.relation),
            &a,
            &b,
        );
        match result {
            Ok(ok) => prop_assert!(ok),
            // Total conflict aborts both runs identically; nothing to compare.
            Err(evirel_algebra::AlgebraError::TotalConflict { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn union_commutative(a in rel_strategy("A"), b in rel_strategy("B")) {
        match (union_extended(&a, &b), union_extended(&b, &a)) {
            (Ok(x), Ok(y)) => prop_assert!(x.relation.approx_eq(&y.relation)),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "conflict asymmetry"),
        }
    }

    #[test]
    fn union_associative(
        a in rel_strategy("A"),
        b in rel_strategy("B"),
        c in rel_strategy("C"),
    ) {
        let left = union_extended(&a, &b)
            .and_then(|ab| union_extended(&ab.relation, &c));
        let right = union_extended(&b, &c)
            .and_then(|bc| union_extended(&a, &bc.relation));
        if let (Ok(l), Ok(r)) = (left, right) {
            // Compare membership and evidence per key with a looser
            // tolerance: three chained f64 normalizations.
            for (key, t) in l.relation.iter_keyed() {
                let o = r.relation.get_by_key(&key);
                prop_assert!(o.is_some(), "key {key:?} missing on one side");
                let o = o.unwrap();
                prop_assert!((t.membership().sn() - o.membership().sn()).abs() < 1e-6);
                prop_assert!((t.membership().sp() - o.membership().sp()).abs() < 1e-6);
            }
            prop_assert_eq!(l.relation.len(), r.relation.len());
        }
    }

    #[test]
    fn product_and_join_closure(a in rel_strategy("A"), b in rel_strategy("B")) {
        // Disambiguate attribute names for the product.
        let b = evirel_algebra::rename::rename_relation(&b, "B2");
        let b = evirel_algebra::rename::rename_attribute(&b, "k", "k2").unwrap();
        let b = evirel_algebra::rename::rename_attribute(&b, "d", "d2").unwrap();
        let p = product(&a, &b).unwrap();
        prop_assert!(satisfies_closure(&p));
        let j = join(
            &a,
            &b,
            &Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::attr("k2")),
            &Threshold::POSITIVE,
        ).unwrap();
        prop_assert!(satisfies_closure(&j));
        // The equi-join on keys can never exceed the smaller operand.
        prop_assert!(j.len() <= a.len().min(b.len()));
    }

    /// Selection monotonicity: a stricter threshold never admits more
    /// tuples.
    #[test]
    fn threshold_monotonicity(rel in rel_strategy("A"), pred in some_predicate()) {
        let loose = select(&rel, &pred, &Threshold::POSITIVE).unwrap();
        let tight = select(&rel, &pred, &Threshold::SnAtLeast(0.5)).unwrap();
        let definite = select(&rel, &pred, &Threshold::Definite).unwrap();
        prop_assert!(tight.len() <= loose.len());
        prop_assert!(definite.len() <= tight.len());
        for (key, _) in tight.iter_keyed() {
            prop_assert!(loose.contains_key(&key));
        }
    }

    /// Selection support is bounded by the original membership:
    /// F_TM can only shrink (sn, sp).
    #[test]
    fn selection_shrinks_membership(rel in rel_strategy("A"), pred in some_predicate()) {
        let out = select(&rel, &pred, &Threshold::POSITIVE).unwrap();
        for (key, t) in out.iter_keyed() {
            let orig = rel.get_by_key(&key).unwrap();
            prop_assert!(t.membership().sn() <= orig.membership().sn() + 1e-9);
            prop_assert!(t.membership().sp() <= orig.membership().sp() + 1e-9);
        }
    }
}
