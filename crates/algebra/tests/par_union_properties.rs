//! Differential property suite for the parallel union executor:
//! `par_union` at 2/4/8 threads must reproduce the sequential
//! `union_with` bit for bit — relation contents, tuple insertion
//! order, and the full conflict report in the same order — over
//! random generated relation pairs of varying size, key overlap, and
//! conflict bias.

use evirel_algebra::par::par_union;
use evirel_algebra::union::{union_with, UnionOptions};
use evirel_algebra::ConflictPolicy;
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_union_matches_union_with(
        seed in 0u64..1_000_000,
        tuples in 32usize..400,
        overlap_pct in 0u8..=100,
        bias_pct in 0u8..=100,
        threads_sel in 0u8..3,
    ) {
        let threads = [2usize, 4, 8][threads_sel as usize];
        let (a, b) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples,
                seed,
                ..Default::default()
            },
            key_overlap: f64::from(overlap_pct) / 100.0,
            conflict_bias: f64::from(bias_pct) / 100.0,
        })
        .expect("generator config is valid");
        // High bias can produce total conflicts; resolve vacuously so
        // both paths complete and the reports can be compared.
        let options = UnionOptions {
            on_total_conflict: ConflictPolicy::Vacuous,
            ..Default::default()
        };
        let seq = union_with(&a, &b, &options).expect("sequential union succeeds");
        let par = par_union(&a, &b, &options, threads).expect("parallel union succeeds");

        // Same relation, same insertion order.
        prop_assert_eq!(seq.relation.len(), par.relation.len());
        for (s, p) in seq.relation.iter().zip(par.relation.iter()) {
            prop_assert_eq!(
                s.key(seq.relation.schema()),
                p.key(par.relation.schema()),
                "tuple order diverged (threads={})", threads
            );
            prop_assert!(s.approx_eq(p), "tuple contents diverged (threads={})", threads);
        }
        // Same conflict report, observation for observation.
        prop_assert_eq!(seq.report.conflicts(), par.report.conflicts());
    }
}
