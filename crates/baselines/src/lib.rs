//! # evirel-baselines — executable versions of the prior approaches
//!
//! §1.3 of the paper relates the evidential approach to three earlier
//! attribute-value-conflict resolution schemes. To make the comparison
//! executable (for the `benches/baselines.rs` harness and the
//! comparison example), each is implemented here against the same
//! inputs the evidential pipeline consumes:
//!
//! * [`partial`] — **DeMichiel (1989)**: *partial values* — a set of
//!   candidate values of which exactly one is correct; combination is
//!   set intersection; queries return *true* tuples and *may-be*
//!   tuples.
//! * [`prob_partial`] — **Tseng, Chen & Yang (1992)**: *probabilistic
//!   partial values* — probabilities on individual values (never on
//!   subsets); extended selection filters on the probability of
//!   satisfying the condition.
//! * [`aggregate`] — **Dayal (1983)**: *aggregate functions* (avg,
//!   min, max, …) over conflicting numeric attribute values.
//! * [`compare`] — instrumentation: converts evidential inputs into
//!   each baseline's representation, merges, and scores information
//!   retention and failure modes, so the trade-offs the paper argues
//!   qualitatively become measurable.

pub mod aggregate;
pub mod compare;
pub mod partial;
pub mod prob_partial;

pub use aggregate::AggregateFn;
pub use compare::{compare_merge, MergeComparison};
pub use partial::{PartialValue, TriBool};
pub use prob_partial::ProbValue;
