//! Tseng, Chen & Yang's probabilistic partial values (1992).
//!
//! Possible values of an attribute are listed with probabilities —
//! crucially, probabilities attach only to *individual* values, never
//! to subsets (the expressiveness gap §1.3 highlights against both the
//! evidential model and Barbará et al.'s PDM). Extended selection
//! filters tuples on the probability that they satisfy the condition.
//!
//! Tseng et al. assume sources may be *inconsistent* and their
//! combination retains the inconsistency; we provide both their
//! source-averaging combination ([`ProbValue::combine_mixing`]) and
//! the consistent-sources Bayesian product
//! ([`ProbValue::combine_bayes`]) for comparison against Dempster's
//! rule.

use evirel_evidence::{transform, FocalSet, MassFunction};
use std::fmt;

/// A probability distribution over individual domain values.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbValue {
    /// `(element index, probability)`, sorted by index, probabilities
    /// summing to 1.
    dist: Vec<(usize, f64)>,
}

impl ProbValue {
    /// Construct from `(index, probability)` pairs; normalizes, drops
    /// non-positive entries. Returns `None` when nothing positive
    /// remains.
    pub fn new(entries: impl IntoIterator<Item = (usize, f64)>) -> Option<ProbValue> {
        let mut acc: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (i, p) in entries {
            if p > 0.0 && p.is_finite() {
                *acc.entry(i).or_insert(0.0) += p;
            }
        }
        let total: f64 = acc.values().sum();
        if total <= 0.0 {
            return None;
        }
        Some(ProbValue {
            dist: acc.into_iter().map(|(i, p)| (i, p / total)).collect(),
        })
    }

    /// A definite value.
    pub fn definite(index: usize) -> ProbValue {
        ProbValue {
            dist: vec![(index, 1.0)],
        }
    }

    /// Flatten an evidence set to a probabilistic partial value via
    /// the pignistic transform — the canonical lossy projection from
    /// mass-on-subsets to mass-on-points. (Tseng's model simply cannot
    /// represent `m({hunan, sichuan}) = 1/3` without committing to a
    /// split.)
    pub fn from_evidence(m: &MassFunction<f64>) -> ProbValue {
        let probs = transform::pignistic(m).expect("f64 arithmetic is total");
        ProbValue::new(probs.into_iter().enumerate()).expect("pignistic output is a distribution")
    }

    /// The distribution entries.
    pub fn dist(&self) -> &[(usize, f64)] {
        &self.dist
    }

    /// Probability of a specific element.
    pub fn prob_of(&self, index: usize) -> f64 {
        self.dist
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// Probability that the value lies in `target` — Tseng's
    /// selection certainty.
    pub fn prob_in(&self, target: &FocalSet) -> f64 {
        self.dist
            .iter()
            .filter(|(i, _)| target.contains(*i))
            .map(|(_, p)| *p)
            .sum()
    }

    /// Source-averaging combination (Tseng et al.: inconsistent
    /// sources are retained, weighted equally). Never fails.
    pub fn combine_mixing(&self, other: &ProbValue) -> ProbValue {
        let entries = self
            .dist
            .iter()
            .map(|(i, p)| (*i, p / 2.0))
            .chain(other.dist.iter().map(|(i, p)| (*i, p / 2.0)));
        ProbValue::new(entries).expect("mixing of distributions is a distribution")
    }

    /// Bayesian product combination for consistent independent
    /// sources; `None` on total conflict (disjoint supports) — the
    /// Bayesian analogue of κ = 1.
    pub fn combine_bayes(&self, other: &ProbValue) -> Option<ProbValue> {
        let entries: Vec<(usize, f64)> = self
            .dist
            .iter()
            .map(|(i, p)| (*i, p * other.prob_of(*i)))
            .filter(|(_, p)| *p > 0.0)
            .collect();
        ProbValue::new(entries)
    }

    /// Shannon entropy (nats) — the information-retention metric used
    /// by the comparison harness.
    pub fn entropy(&self) -> f64 {
        -self
            .dist
            .iter()
            .map(|(_, p)| if *p > 0.0 { p * p.ln() } else { 0.0 })
            .sum::<f64>()
    }
}

impl fmt::Display for ProbValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prob[")?;
        for (k, (i, p)) in self.dist.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{p:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_evidence::Frame;
    use std::sync::Arc;

    fn set(v: &[usize]) -> FocalSet {
        FocalSet::from_indices(v.iter().copied())
    }

    #[test]
    fn construction_normalizes() {
        let pv = ProbValue::new([(0, 2.0), (1, 2.0)]).unwrap();
        assert!((pv.prob_of(0) - 0.5).abs() < 1e-12);
        assert!(ProbValue::new([(0, 0.0)]).is_none());
        assert!(ProbValue::new([(0, -1.0)]).is_none());
        // Duplicate indices accumulate.
        let pv = ProbValue::new([(0, 1.0), (0, 1.0), (1, 2.0)]).unwrap();
        assert!((pv.prob_of(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selection_probability() {
        let pv = ProbValue::new([(0, 0.5), (1, 0.3), (2, 0.2)]).unwrap();
        assert!((pv.prob_in(&set(&[0, 1])) - 0.8).abs() < 1e-12);
        assert_eq!(pv.prob_in(&set(&[7])), 0.0);
    }

    #[test]
    fn mixing_averages() {
        let a = ProbValue::definite(0);
        let b = ProbValue::definite(1);
        let m = a.combine_mixing(&b);
        assert!((m.prob_of(0) - 0.5).abs() < 1e-12);
        assert!((m.prob_of(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bayes_products_and_conflicts() {
        let a = ProbValue::new([(0, 0.6), (1, 0.4)]).unwrap();
        let b = ProbValue::new([(0, 0.5), (1, 0.5)]).unwrap();
        let c = a.combine_bayes(&b).unwrap();
        // 0.3 vs 0.2 → 0.6 vs 0.4.
        assert!((c.prob_of(0) - 0.6).abs() < 1e-12);
        // Disjoint supports conflict.
        let d = ProbValue::definite(5);
        assert!(a.combine_bayes(&d).is_none());
    }

    #[test]
    fn from_evidence_uses_pignistic() {
        let frame = Arc::new(Frame::new("f", ["a", "b", "c"]));
        let m = MassFunction::<f64>::builder(frame)
            .add(["a"], 0.5)
            .unwrap()
            .add(["b", "c"], 0.5)
            .unwrap()
            .build()
            .unwrap();
        let pv = ProbValue::from_evidence(&m);
        assert!((pv.prob_of(0) - 0.5).abs() < 1e-12);
        assert!((pv.prob_of(1) - 0.25).abs() < 1e-12);
        assert!((pv.prob_of(2) - 0.25).abs() < 1e-12);
        // The subset structure ({b,c} vs. b and c independently) is
        // lost — Tseng's model cannot state "b or c but not sure which
        // with joint mass".
    }

    #[test]
    fn entropy() {
        let uniform = ProbValue::new([(0, 0.5), (1, 0.5)]).unwrap();
        let point = ProbValue::definite(0);
        assert!(uniform.entropy() > point.entropy());
        assert!((point.entropy() - 0.0).abs() < 1e-12);
        assert!((uniform.entropy() - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
