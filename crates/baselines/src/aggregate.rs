//! Dayal's aggregate-function resolution (VLDB 1983).
//!
//! Conflicting *numeric* attribute values are resolved by an aggregate
//! function over the conflicting instances — e.g. the integrated
//! salary is the average of the source salaries. The paper positions
//! this as complementary to the evidential approach: usable when
//! values are numeric and definite, inapplicable to non-numeric or
//! uncertain values (which is where evidence sets take over). Both can
//! coexist as attribute integration methods in the framework, and the
//! integration layer's method registry does exactly that.

use evirel_relation::Value;
use std::fmt;

/// The aggregate used to resolve a numeric conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregateFn {
    /// Arithmetic mean (Dayal's canonical example).
    #[default]
    Average,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// First source wins (a degenerate but common policy).
    First,
}

impl AggregateFn {
    /// Resolve a non-empty slice of numeric values.
    ///
    /// Returns `None` for an empty slice.
    pub fn resolve(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            AggregateFn::Average => values.iter().sum::<f64>() / values.len() as f64,
            AggregateFn::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateFn::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateFn::Sum => values.iter().sum(),
            AggregateFn::First => values[0],
        })
    }

    /// Resolve two relational [`Value`]s; only numeric kinds are
    /// resolvable (the paper's point about the method's scope).
    pub fn resolve_values(&self, a: &Value, b: &Value) -> Option<Value> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => {
                let out = self.resolve(&[*x as f64, *y as f64])?;
                // Integer aggregates that stay integral remain Int.
                if (out.fract()).abs() < f64::EPSILON {
                    Some(Value::Int(out as i64))
                } else {
                    Some(Value::Float(out))
                }
            }
            (Value::Float(x), Value::Float(y)) => Some(Value::Float(self.resolve(&[*x, *y])?)),
            (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => {
                Some(Value::Float(self.resolve(&[*x as f64, *y])?))
            }
            _ => None, // non-numeric: out of scope for Dayal's method
        }
    }

    /// All variants, for sweeps.
    pub const ALL: [AggregateFn; 5] = [
        AggregateFn::Average,
        AggregateFn::Min,
        AggregateFn::Max,
        AggregateFn::Sum,
        AggregateFn::First,
    ];
}

impl fmt::Display for AggregateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateFn::Average => "avg",
            AggregateFn::Min => "min",
            AggregateFn::Max => "max",
            AggregateFn::Sum => "sum",
            AggregateFn::First => "first",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_aggregates() {
        let xs = [40_000.0, 44_000.0];
        assert_eq!(AggregateFn::Average.resolve(&xs), Some(42_000.0));
        assert_eq!(AggregateFn::Min.resolve(&xs), Some(40_000.0));
        assert_eq!(AggregateFn::Max.resolve(&xs), Some(44_000.0));
        assert_eq!(AggregateFn::Sum.resolve(&xs), Some(84_000.0));
        assert_eq!(AggregateFn::First.resolve(&xs), Some(40_000.0));
        assert_eq!(AggregateFn::Average.resolve(&[]), None);
    }

    #[test]
    fn value_level_resolution() {
        let out = AggregateFn::Average
            .resolve_values(&Value::int(10), &Value::int(20))
            .unwrap();
        assert_eq!(out, Value::int(15));
        let out = AggregateFn::Average
            .resolve_values(&Value::int(10), &Value::int(11))
            .unwrap();
        assert_eq!(out, Value::float(10.5));
        let out = AggregateFn::Max
            .resolve_values(&Value::float(1.5), &Value::int(2))
            .unwrap();
        assert_eq!(out, Value::float(2.0));
    }

    #[test]
    fn non_numeric_out_of_scope() {
        // Dayal's method cannot resolve string conflicts — the gap the
        // evidential approach fills.
        assert_eq!(
            AggregateFn::Average.resolve_values(&Value::str("hunan"), &Value::str("sichuan")),
            None
        );
    }

    #[test]
    fn display_names() {
        for f in AggregateFn::ALL {
            assert!(!f.to_string().is_empty());
        }
        assert_eq!(AggregateFn::default(), AggregateFn::Average);
    }
}
