//! DeMichiel's partial values (IEEE TKDE 1989).
//!
//! A *partial value* is a set of candidate domain values of which
//! exactly one is the true value. It is precisely an evidence set with
//! a single focal element (all mass on one subset), so the evidential
//! model strictly generalizes it — the paper's claim in §1.3, which
//! [`PartialValue::from_evidence`] makes concrete by collapsing an
//! evidence set to its core (losing the graded mass information).
//!
//! Combination is set intersection; an empty intersection is the
//! conflict case. Queries classify tuples as *true* (candidates ⊆
//! target) or *may-be* (candidates ∩ target ≠ ∅) — DeMichiel's
//! two-result-set semantics, which the evidential model replaces with
//! a single result set carrying `(sn, sp)`.

use evirel_evidence::{FocalSet, MassFunction};
use std::fmt;

/// DeMichiel's three-valued selection status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriBool {
    /// The tuple definitely satisfies the condition.
    True,
    /// The tuple may satisfy the condition.
    MayBe,
    /// The tuple definitely does not satisfy the condition.
    False,
}

/// A partial value: a non-empty candidate set over a domain of `n`
/// elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialValue {
    candidates: FocalSet,
}

impl PartialValue {
    /// Construct from a candidate set.
    ///
    /// Returns `None` for an empty set (not a valid partial value).
    pub fn new(candidates: FocalSet) -> Option<PartialValue> {
        if candidates.is_empty() {
            None
        } else {
            Some(PartialValue { candidates })
        }
    }

    /// A definite value.
    pub fn definite(index: usize) -> PartialValue {
        PartialValue {
            candidates: FocalSet::singleton(index),
        }
    }

    /// Collapse an evidence set to a partial value: the candidate set
    /// is the *core* (union of focal elements). This is lossy — all
    /// mass information is discarded — which is exactly the gap the
    /// evidential model closes.
    pub fn from_evidence(m: &MassFunction<f64>) -> PartialValue {
        PartialValue {
            candidates: m.core(),
        }
    }

    /// The candidate set.
    pub fn candidates(&self) -> &FocalSet {
        &self.candidates
    }

    /// Number of candidates (1 = definite).
    pub fn cardinality(&self) -> usize {
        self.candidates.len()
    }

    /// `true` if only one candidate remains.
    pub fn is_definite(&self) -> bool {
        self.cardinality() == 1
    }

    /// DeMichiel combination: set intersection. `None` signals
    /// conflict (no common candidate) — the analogue of κ = 1.
    pub fn combine(&self, other: &PartialValue) -> Option<PartialValue> {
        PartialValue::new(self.candidates.intersect(&other.candidates))
    }

    /// Selection status against a target set (`A is C`).
    pub fn select_status(&self, target: &FocalSet) -> TriBool {
        if self.candidates.is_subset_of(target) {
            TriBool::True
        } else if self.candidates.intersects(target) {
            TriBool::MayBe
        } else {
            TriBool::False
        }
    }
}

impl fmt::Display for PartialValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partial{:?}", self.candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_evidence::Frame;
    use std::sync::Arc;

    fn set(v: &[usize]) -> FocalSet {
        FocalSet::from_indices(v.iter().copied())
    }

    #[test]
    fn construction() {
        assert!(PartialValue::new(FocalSet::empty()).is_none());
        let pv = PartialValue::new(set(&[1, 2])).unwrap();
        assert_eq!(pv.cardinality(), 2);
        assert!(!pv.is_definite());
        assert!(PartialValue::definite(3).is_definite());
    }

    #[test]
    fn combination_is_intersection() {
        let a = PartialValue::new(set(&[0, 1, 2])).unwrap();
        let b = PartialValue::new(set(&[1, 2, 3])).unwrap();
        let c = a.combine(&b).unwrap();
        assert_eq!(c.candidates(), &set(&[1, 2]));
        // Conflict: disjoint candidate sets.
        let d = PartialValue::new(set(&[5])).unwrap();
        assert!(a.combine(&d).is_none());
    }

    #[test]
    fn selection_statuses() {
        let pv = PartialValue::new(set(&[1, 2])).unwrap();
        assert_eq!(pv.select_status(&set(&[0, 1, 2, 3])), TriBool::True);
        assert_eq!(pv.select_status(&set(&[2, 3])), TriBool::MayBe);
        assert_eq!(pv.select_status(&set(&[4])), TriBool::False);
    }

    #[test]
    fn from_evidence_takes_core() {
        let frame = Arc::new(Frame::new("f", ["a", "b", "c", "d"]));
        let m = MassFunction::<f64>::builder(Arc::clone(&frame))
            .add(["a"], 0.6)
            .unwrap()
            .add(["b", "c"], 0.4)
            .unwrap()
            .build()
            .unwrap();
        let pv = PartialValue::from_evidence(&m);
        assert_eq!(pv.candidates(), &set(&[0, 1, 2]));
        // The graded information (0.6 vs 0.4) is gone — only the
        // support is left. This is the §1.3 generalization claim.
    }

    #[test]
    fn definite_evidence_roundtrips() {
        let frame = Arc::new(Frame::new("f", ["a", "b"]));
        let m = MassFunction::<f64>::certain(frame, "b").unwrap();
        let pv = PartialValue::from_evidence(&m);
        assert!(pv.is_definite());
        assert_eq!(pv.candidates(), &set(&[1]));
    }
}
