//! Instrumented comparison of merge approaches.
//!
//! Takes the same pair of evidential attribute values the extended
//! union would merge, runs all four approaches, and scores:
//!
//! * **specificity** — expected focal cardinality `Σ m(A)·|A|` (1.0 =
//!   definite; |Ω| = vacuous). Lower is more informative;
//! * **failure** — whether the approach aborted on conflict;
//! * whether graded (mass) information survived at all.
//!
//! This turns the paper's qualitative §1.3 comparison into the
//! numbers reported by `benches/baselines.rs` and the comparison
//! example.

use crate::partial::PartialValue;
use crate::prob_partial::ProbValue;
use evirel_evidence::{combine, EvidenceError, MassFunction};

/// Per-approach outcome of merging one attribute-value pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeComparison {
    /// Dempster specificity, or `None` on total conflict.
    pub evidential: Option<f64>,
    /// Conflict κ seen by Dempster's rule.
    pub kappa: f64,
    /// Partial-value specificity (candidate count), or `None` on
    /// conflict (empty intersection).
    pub partial: Option<f64>,
    /// Probabilistic (Bayesian product) entropy, or `None` on
    /// conflict.
    pub prob_bayes_entropy: Option<f64>,
    /// Probabilistic (mixing) entropy — never fails.
    pub prob_mixing_entropy: f64,
}

/// Expected focal cardinality of a mass function.
pub fn specificity(m: &MassFunction<f64>) -> f64 {
    m.iter().map(|(s, w)| s.len() as f64 * w).sum()
}

/// Merge one pair under all approaches.
///
/// # Errors
/// Only structural errors (frame mismatch); conflicts are encoded as
/// `None` fields.
pub fn compare_merge(
    a: &MassFunction<f64>,
    b: &MassFunction<f64>,
) -> Result<MergeComparison, EvidenceError> {
    let kappa = combine::conflict(a, b)?;
    let evidential = match combine::dempster(a, b) {
        Ok(c) => Some(specificity(&c.mass)),
        Err(EvidenceError::TotalConflict) => None,
        Err(e) => return Err(e),
    };
    let partial = PartialValue::from_evidence(a)
        .combine(&PartialValue::from_evidence(b))
        .map(|pv| pv.cardinality() as f64);
    let pa = ProbValue::from_evidence(a);
    let pb = ProbValue::from_evidence(b);
    let prob_bayes_entropy = pa.combine_bayes(&pb).map(|p| p.entropy());
    let prob_mixing_entropy = pa.combine_mixing(&pb).entropy();
    Ok(MergeComparison {
        evidential,
        kappa,
        partial,
        prob_bayes_entropy,
        prob_mixing_entropy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_evidence::Frame;
    use std::sync::Arc;

    fn frame() -> Arc<Frame> {
        Arc::new(Frame::new("f", ["a", "b", "c", "d"]))
    }

    fn m(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
        let mut b = MassFunction::<f64>::builder(frame());
        for (labels, w) in entries {
            b = b.add(labels.iter().copied(), *w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn specificity_metric() {
        assert!((specificity(&m(&[(&["a"], 1.0)])) - 1.0).abs() < 1e-12);
        assert!((specificity(&MassFunction::<f64>::vacuous(frame()).unwrap()) - 4.0).abs() < 1e-12);
        assert!((specificity(&m(&[(&["a", "b"], 0.5), (&["c"], 0.5)])) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn agreeing_sources_sharpen_everywhere() {
        let a = m(&[(&["a", "b"], 0.6), (&["a", "b", "c", "d"], 0.4)]);
        let b = m(&[(&["a"], 0.5), (&["a", "b"], 0.5)]);
        let cmp = compare_merge(&a, &b).unwrap();
        assert!(cmp.kappa.abs() < 1e-12);
        assert!(cmp.evidential.unwrap() < specificity(&a));
        assert!(cmp.partial.unwrap() <= 2.0);
        assert!(cmp.prob_bayes_entropy.is_some());
    }

    #[test]
    fn total_conflict_fails_dempster_and_partial_but_not_mixing() {
        let a = m(&[(&["a"], 1.0)]);
        let b = m(&[(&["b"], 1.0)]);
        let cmp = compare_merge(&a, &b).unwrap();
        assert!((cmp.kappa - 1.0).abs() < 1e-12);
        assert!(cmp.evidential.is_none());
        assert!(cmp.partial.is_none());
        assert!(cmp.prob_bayes_entropy.is_none());
        // Tseng's mixing retains the inconsistency instead.
        assert!(cmp.prob_mixing_entropy > 0.0);
    }

    /// The evidential merge keeps graded structure the partial-value
    /// merge destroys: DeMichiel sees identical candidate sets before
    /// and after, while Dempster shifts mass.
    #[test]
    fn evidential_retains_grading() {
        let a = m(&[(&["a"], 0.9), (&["a", "b"], 0.1)]);
        let b = m(&[(&["a", "b"], 1.0)]);
        let cmp = compare_merge(&a, &b).unwrap();
        // Partial values: {a,b} ∩ {a,b} = {a,b} — cardinality 2,
        // nothing learned.
        assert!((cmp.partial.unwrap() - 2.0).abs() < 1e-12);
        // Evidence: mass stays concentrated near a — specificity ≈ 1.1.
        assert!(cmp.evidential.unwrap() < 1.2);
    }
}
