//! # evirel-relation — the extended relational model
//!
//! Implements §2.3 of Lim, Srivastava & Shekhar (ICDE 1994): relations
//! whose non-key attributes may hold *evidence sets* (Dempster–Shafer
//! mass functions over the attribute domain) and whose tuples carry a
//! *membership* evidence set over Ψ = {true, false}, encoded as a
//! support pair `(sn, sp)` with `0 ≤ sn ≤ sp ≤ 1`.
//!
//! The model enforces the paper's generalized closed-world assumption
//! **CWA_ER**: every *stored* tuple must have positive necessary
//! support (`sn > 0`); tuples absent from the extension implicitly
//! carry `(0, sp)`. See [`cwa`] for details and the escape hatch used
//! by the boundedness verifier.
//!
//! ## Layout
//!
//! * [`value`] — definite values (integers, floats, strings);
//! * [`domain`] — typed finite attribute domains wrapping an evidence
//!   [`Frame`](evirel_evidence::Frame);
//! * [`schema`] — attribute definitions, key declarations,
//!   union-compatibility;
//! * [`membership`] — support pairs and their combination rules
//!   (the paper's `F` and `F_TM`);
//! * [`tuple`](mod@tuple) / [`relation`](mod@relation) — tuples and keyed extended relations;
//! * [`display`] — ASCII tables in the paper's notation;
//! * [`builder`] — ergonomic construction of relations.
//!
//! ## Example
//!
//! ```
//! use evirel_relation::{AttrDomain, Schema, SupportPair, RelationBuilder, Value};
//! use std::sync::Arc;
//!
//! let speciality = Arc::new(AttrDomain::categorical(
//!     "speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"]).unwrap());
//! let schema = Arc::new(Schema::builder("restaurants")
//!     .key_str("rname")
//!     .evidential("speciality", Arc::clone(&speciality))
//!     .build().unwrap());
//!
//! let rel = RelationBuilder::new(Arc::clone(&schema))
//!     .tuple(|t| t
//!         .set_str("rname", "wok")
//!         .set_evidence("speciality", [(&["si"][..], 1.0)])
//!         .membership(SupportPair::certain()))
//!     .unwrap()
//!     .build();
//! assert_eq!(rel.len(), 1);
//! let tuple = rel.get_by_key(&[Value::str("wok")]).unwrap();
//! assert!(tuple.membership().is_certain());
//! ```

pub mod builder;
pub mod cwa;
pub mod display;
pub mod domain;
pub mod error;
pub mod membership;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use builder::{RelationBuilder, TupleBuilder};
pub use domain::AttrDomain;
pub use error::RelationError;
pub use membership::SupportPair;
pub use relation::ExtendedRelation;
pub use schema::{AttrDef, AttrType, Schema, SchemaBuilder};
pub use tuple::{AttrValue, Tuple};
pub use value::{Value, ValueKind};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationError>;
