//! Definite (certain) values stored in key and definite attributes.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type tag of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float with total ordering (`total_cmp`).
    Float,
    /// Interned UTF-8 string.
    Str,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKind::Int => write!(f, "int"),
            ValueKind::Float => write!(f, "float"),
            ValueKind::Str => write!(f, "string"),
        }
    }
}

/// A definite attribute value.
///
/// Floats use `total_cmp` semantics so `Value` is fully `Eq + Ord +
/// Hash` and can serve as a key component. Strings are `Arc<str>` so
/// cloning tuples is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (totally ordered).
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for integers.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for floats.
    pub fn float(x: f64) -> Value {
        Value::Float(x)
    }

    /// The value's type tag.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload, if this is a float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Render a list of values as a parenthesized key, e.g.
    /// `(garden, 2011)`.
    pub fn render_key(values: &[Value]) -> String {
        let mut out = String::from("(");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push(')');
        out
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: within a kind, natural order (floats via
    /// `total_cmp`); across kinds, `Int < Float < Str`. Cross-kind
    /// comparisons only arise in heterogeneous sort keys, never in
    /// type-checked relations.
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Float(_), _) => Ordering::Less,
            (_, Float(_)) => Ordering::Greater,
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Float(x) => {
                1u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn kinds() {
        assert_eq!(Value::int(1).kind(), ValueKind::Int);
        assert_eq!(Value::float(1.5).kind(), ValueKind::Float);
        assert_eq!(Value::str("x").kind(), ValueKind::Str);
        assert_eq!(ValueKind::Str.to_string(), "string");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
    }

    #[test]
    fn ordering_within_kind() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::float(1.0) < Value::float(2.0));
        assert_eq!(
            Value::float(f64::NAN).cmp(&Value::float(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn ordering_across_kinds() {
        assert!(Value::int(9) < Value::float(0.0));
        assert!(Value::float(9.0) < Value::str(""));
    }

    #[test]
    fn hashable_as_key() {
        let mut map: HashMap<Vec<Value>, usize> = HashMap::new();
        map.insert(vec![Value::str("garden"), Value::int(2011)], 1);
        assert_eq!(
            map.get(&vec![Value::str("garden"), Value::int(2011)]),
            Some(&1)
        );
        // Float keys hash by bits.
        let mut map: HashMap<Value, u8> = HashMap::new();
        map.insert(Value::float(0.5), 1);
        assert_eq!(map.get(&Value::float(0.5)), Some(&1));
    }

    #[test]
    fn display_and_key_rendering() {
        assert_eq!(Value::str("wok").to_string(), "wok");
        assert_eq!(Value::int(600).to_string(), "600");
        assert_eq!(
            Value::render_key(&[Value::str("wok"), Value::int(600)]),
            "(wok, 600)"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
        assert_eq!(Value::from(1.5f64), Value::float(1.5));
    }
}
