//! Relation schemas: attribute definitions and key declarations.

use crate::domain::AttrDomain;
use crate::error::RelationError;
use crate::value::ValueKind;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The declared type of an attribute.
#[derive(Debug, Clone)]
pub enum AttrType {
    /// A definite attribute over an open domain of one value kind
    /// (keys, streets, phone numbers, …).
    Definite(ValueKind),
    /// An uncertain attribute whose values are evidence sets over a
    /// finite typed domain (the paper's `†`-prefixed attributes).
    Evidential(Arc<AttrDomain>),
}

impl AttrType {
    /// `true` for evidential attributes.
    pub fn is_evidential(&self) -> bool {
        matches!(self, AttrType::Evidential(_))
    }

    /// The evidential domain, if any.
    pub fn domain(&self) -> Option<&Arc<AttrDomain>> {
        match self {
            AttrType::Evidential(d) => Some(d),
            AttrType::Definite(_) => None,
        }
    }

    /// Structural equality (definite kinds match, evidential domains
    /// identical).
    pub fn same_as(&self, other: &AttrType) -> bool {
        match (self, other) {
            (AttrType::Definite(a), AttrType::Definite(b)) => a == b,
            (AttrType::Evidential(a), AttrType::Evidential(b)) => a.same_as(b),
            _ => false,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Definite(k) => write!(f, "{k}"),
            AttrType::Evidential(d) => write!(f, "evidence<{}>", d.name()),
        }
    }
}

/// One attribute in a schema.
#[derive(Debug, Clone)]
pub struct AttrDef {
    name: Arc<str>,
    ty: AttrType,
    is_key: bool,
}

impl AttrDef {
    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute type.
    pub fn ty(&self) -> &AttrType {
        &self.ty
    }

    /// `true` if the attribute is part of the relation key.
    pub fn is_key(&self) -> bool {
        self.is_key
    }
}

/// A relation schema: a named, ordered list of attributes, at least
/// one of which is a (definite) key attribute. The tuple-membership
/// attribute `(sn, sp)` is implicit on every extended relation and is
/// not part of the schema's attribute list.
#[derive(Debug, Clone)]
pub struct Schema {
    name: Arc<str>,
    attrs: Vec<AttrDef>,
    by_name: HashMap<Arc<str>, usize>,
    key_positions: Vec<usize>,
}

impl Schema {
    /// Start building a schema for a relation called `name`.
    pub fn builder(name: impl Into<Arc<str>>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (excluding the implicit membership
    /// attribute).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute definitions in declaration order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Positions of the key attributes.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Position of attribute `name`.
    ///
    /// # Errors
    /// [`RelationError::UnknownAttribute`] if absent.
    pub fn position(&self, name: &str) -> Result<usize, RelationError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownAttribute {
                name: name.to_owned(),
                schema: self.name.to_string(),
            })
    }

    /// The attribute definition at `pos`.
    pub fn attr(&self, pos: usize) -> &AttrDef {
        &self.attrs[pos]
    }

    /// The attribute definition named `name`.
    ///
    /// # Errors
    /// [`RelationError::UnknownAttribute`] if absent.
    pub fn attr_by_name(&self, name: &str) -> Result<&AttrDef, RelationError> {
        Ok(self.attr(self.position(name)?))
    }

    /// Positions of the non-key attributes.
    pub fn non_key_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.attrs.len()).filter(|i| !self.attrs[*i].is_key)
    }

    /// Union-compatibility (§3.2 footnote): two extended relations are
    /// union-compatible iff they share the same attributes — names,
    /// types, order — including the key attributes.
    ///
    /// # Errors
    /// [`RelationError::NotUnionCompatible`] with a human-readable
    /// reason.
    pub fn check_union_compatible(&self, other: &Schema) -> Result<(), RelationError> {
        if self.attrs.len() != other.attrs.len() {
            return Err(RelationError::NotUnionCompatible {
                reason: format!("arity {} vs {}", self.attrs.len(), other.attrs.len()),
            });
        }
        for (a, b) in self.attrs.iter().zip(other.attrs.iter()) {
            if a.name != b.name {
                return Err(RelationError::NotUnionCompatible {
                    reason: format!("attribute {:?} vs {:?}", a.name, b.name),
                });
            }
            if !a.ty.same_as(&b.ty) {
                return Err(RelationError::NotUnionCompatible {
                    reason: format!("attribute {:?} differs in type", a.name),
                });
            }
            if a.is_key != b.is_key {
                return Err(RelationError::NotUnionCompatible {
                    reason: format!("attribute {:?} differs in key-ness", a.name),
                });
            }
        }
        Ok(())
    }

    /// A copy of this schema under a new relation name (used by the
    /// algebra to name derived relations).
    pub fn renamed(&self, name: impl Into<Arc<str>>) -> Schema {
        let mut s = self.clone();
        s.name = name.into();
        s
    }
}

/// Builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    name: Arc<str>,
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Add a key attribute of the given definite kind.
    pub fn key(mut self, name: impl Into<Arc<str>>, kind: ValueKind) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            ty: AttrType::Definite(kind),
            is_key: true,
        });
        self
    }

    /// Add a string key attribute.
    pub fn key_str(self, name: impl Into<Arc<str>>) -> Self {
        self.key(name, ValueKind::Str)
    }

    /// Add an integer key attribute.
    pub fn key_int(self, name: impl Into<Arc<str>>) -> Self {
        self.key(name, ValueKind::Int)
    }

    /// Add a definite non-key attribute.
    pub fn definite(mut self, name: impl Into<Arc<str>>, kind: ValueKind) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            ty: AttrType::Definite(kind),
            is_key: false,
        });
        self
    }

    /// Add an evidential attribute over `domain` (the paper's
    /// `†attribute`).
    pub fn evidential(mut self, name: impl Into<Arc<str>>, domain: Arc<AttrDomain>) -> Self {
        self.attrs.push(AttrDef {
            name: name.into(),
            ty: AttrType::Evidential(domain),
            is_key: false,
        });
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    /// * [`RelationError::DuplicateAttribute`] on name collisions;
    /// * [`RelationError::NoKey`] if no key attribute was declared.
    pub fn build(self) -> Result<Schema, RelationError> {
        let mut by_name = HashMap::with_capacity(self.attrs.len());
        let mut key_positions = Vec::new();
        for (i, attr) in self.attrs.iter().enumerate() {
            if by_name.insert(Arc::clone(&attr.name), i).is_some() {
                return Err(RelationError::DuplicateAttribute {
                    name: attr.name.to_string(),
                });
            }
            if attr.is_key {
                key_positions.push(i);
            }
        }
        if key_positions.is_empty() {
            return Err(RelationError::NoKey);
        }
        Ok(Schema {
            name: self.name,
            attrs: self.attrs,
            by_name,
            key_positions,
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if a.is_key {
                write!(f, "*")?;
            }
            if a.ty.is_evidential() {
                write!(f, "†")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ", †(sn,sp))")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speciality_domain() -> Arc<AttrDomain> {
        Arc::new(
            AttrDomain::categorical("speciality", ["am", "hu", "si", "ca", "mu", "it"]).unwrap(),
        )
    }

    fn schema() -> Schema {
        Schema::builder("ra")
            .key_str("rname")
            .definite("street", ValueKind::Str)
            .definite("bldg-no", ValueKind::Int)
            .evidential("speciality", speciality_domain())
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let s = schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.name(), "ra");
        assert_eq!(s.position("speciality").unwrap(), 3);
        assert_eq!(s.key_positions(), &[0]);
        assert!(s.attr(0).is_key());
        assert!(s.attr(3).ty().is_evidential());
        assert!(s.position("nope").is_err());
        assert_eq!(s.non_key_positions().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::builder("r")
            .key_str("a")
            .definite("a", ValueKind::Int)
            .build();
        assert!(matches!(err, Err(RelationError::DuplicateAttribute { .. })));
    }

    #[test]
    fn key_required() {
        let err = Schema::builder("r").definite("a", ValueKind::Int).build();
        assert!(matches!(err, Err(RelationError::NoKey)));
    }

    #[test]
    fn union_compatibility() {
        let a = schema();
        let b = schema().renamed("rb");
        assert!(a.check_union_compatible(&b).is_ok());

        let c = Schema::builder("rc")
            .key_str("rname")
            .definite("street", ValueKind::Str)
            .definite("bldg-no", ValueKind::Str) // differing kind
            .evidential("speciality", speciality_domain())
            .build()
            .unwrap();
        assert!(a.check_union_compatible(&c).is_err());

        let d = Schema::builder("rd").key_str("rname").build().unwrap();
        assert!(a.check_union_compatible(&d).is_err());

        let e = Schema::builder("re")
            .key_str("other")
            .definite("street", ValueKind::Str)
            .definite("bldg-no", ValueKind::Int)
            .evidential("speciality", speciality_domain())
            .build()
            .unwrap();
        assert!(a.check_union_compatible(&e).is_err());
    }

    #[test]
    fn key_ness_checked_for_compatibility() {
        let a = Schema::builder("x")
            .key_str("k")
            .definite("v", ValueKind::Int)
            .build()
            .unwrap();
        let b = Schema::builder("x").key_str("k").key_int("v").build();
        // b's "v" is a key of a different kind — both type and key-ness differ.
        let b = match b {
            Ok(s) => s,
            Err(e) => panic!("unexpected: {e}"),
        };
        assert!(a.check_union_compatible(&b).is_err());
    }

    #[test]
    fn display_marks_keys_and_evidence() {
        let s = schema();
        let text = s.to_string();
        assert!(text.contains("*rname"));
        assert!(text.contains("†speciality"));
        assert!(text.contains("†(sn,sp)"));
    }

    #[test]
    fn attr_type_helpers() {
        let ev = AttrType::Evidential(speciality_domain());
        let df = AttrType::Definite(ValueKind::Int);
        assert!(ev.is_evidential() && !df.is_evidential());
        assert!(ev.domain().is_some() && df.domain().is_none());
        assert!(ev.same_as(&AttrType::Evidential(speciality_domain())));
        assert!(!ev.same_as(&df));
        assert_eq!(df.to_string(), "int");
        assert_eq!(ev.to_string(), "evidence<speciality>");
    }
}
