//! The generalized closed-world assumption CWA_ER (§2.3).
//!
//! Traditional relations interpret absent facts as false (CWA). With
//! graded membership `(sn, sp)` that dichotomy no longer fits, and the
//! paper weighs two generalizations:
//!
//! 1. *absent ⇒ (0, 1)* — complete ignorance. Rejected: relations
//!    would have to store tuples known **not** to hold (membership
//!    `(0,0)`), e.g. closed restaurants, burdening storage and query
//!    processing.
//! 2. *absent ⇒ sn = 0* — no necessary support. **Chosen** (CWA_ER):
//!    a tuple is stored iff there is positive evidence for its
//!    membership, i.e. `sn > 0`; an absent tuple implicitly carries
//!    `(0, sp)` for some unknown `sp ≤ 1`. Standard CWA is the special
//!    case `sn = sp = 0`.
//!
//! Consequently every extended operation must guarantee the *closure*
//! property (results only contain `sn > 0` tuples) and the
//! *boundedness* property (evaluating over complements adds nothing),
//! which together keep query processing finite (§3.6). The verifiers
//! for those properties live in `evirel-algebra::properties`; this
//! module provides the storage-side enforcement and the membership
//! interpretation of absent tuples.

use crate::membership::SupportPair;
use crate::relation::ExtendedRelation;
use crate::value::Value;

/// Storage policy for tuple insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwaPolicy {
    /// Enforce CWA_ER: reject tuples with `sn = 0`. The default.
    Enforce,
    /// Admit zero-support tuples. Used only to materialize complement
    /// relations inside the boundedness-property verifier.
    AllowZero,
}

/// The membership the model ascribes to a key under CWA_ER: the stored
/// pair when present, and `(0, 1)` (no necessary support, unknown
/// possibility) when absent.
pub fn membership_under_cwa(relation: &ExtendedRelation, key: &[Value]) -> SupportPair {
    match relation.get_by_key(key) {
        Some(t) => t.membership(),
        None => SupportPair::unknown(),
    }
}

/// `true` if the relation satisfies CWA_ER (every stored tuple has
/// `sn > 0`).
pub fn satisfies_cwa(relation: &ExtendedRelation) -> bool {
    relation.iter().all(|t| t.membership().is_positive())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::AttrDomain;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::ValueKind;
    use evirel_evidence::MassFunction;
    use std::sync::Arc;

    fn relation_with(sn: f64, sp: f64, policy: CwaPolicy) -> ExtendedRelation {
        let domain = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .definite("n", ValueKind::Int)
                .evidential("d", Arc::clone(&domain))
                .build()
                .unwrap(),
        );
        let mut r = ExtendedRelation::new(Arc::clone(&schema));
        let t = Tuple::new(
            &schema,
            vec![
                Value::str("a").into(),
                Value::int(0).into(),
                MassFunction::<f64>::vacuous(Arc::clone(domain.frame()))
                    .unwrap()
                    .into(),
            ],
            SupportPair::new(sn, sp).unwrap(),
        )
        .unwrap();
        r.insert_with_policy(t, policy).unwrap();
        r
    }

    #[test]
    fn absent_tuples_have_unknown_membership() {
        let r = relation_with(1.0, 1.0, CwaPolicy::Enforce);
        let absent = membership_under_cwa(&r, &[Value::str("zz")]);
        assert!(absent.approx_eq(&SupportPair::unknown()));
        let present = membership_under_cwa(&r, &[Value::str("a")]);
        assert!(present.is_certain());
    }

    #[test]
    fn satisfies_cwa_checks_all_tuples() {
        assert!(satisfies_cwa(&relation_with(0.5, 0.6, CwaPolicy::Enforce)));
        assert!(!satisfies_cwa(&relation_with(
            0.0,
            0.6,
            CwaPolicy::AllowZero
        )));
    }
}
