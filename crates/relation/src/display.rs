//! ASCII rendering of extended relations in the paper's notation.
//!
//! Tables print one row per tuple with evidence sets in superscript
//! notation (`[si^0.5, hu^0.25, Ω^0.25]`) and the membership pair as a
//! final `(sn,sp)` column, mirroring Tables 1–5 of the paper.

use crate::relation::ExtendedRelation;
use crate::tuple::AttrValue;
use evirel_evidence::Weight;
use std::fmt;

/// Render an `f64` mass the way the paper prints them: up to three
/// decimals, trailing zeros trimmed (`0.5`, `0.655`, `1`).
pub fn format_mass(x: f64) -> String {
    if x.approx_eq(&1.0) {
        return "1".to_owned();
    }
    let s = format!("{x:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

/// Render one attribute value; evidence masses use [`format_mass`].
pub fn format_attr_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Definite(d) => d.to_string(),
        AttrValue::Evidential(m) => {
            let mut out = String::from("[");
            for (k, (set, w)) in m.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                if set.len() == 1 {
                    let i = set.min_index().expect("singleton");
                    out.push_str(m.frame().label(i).unwrap_or("?"));
                } else {
                    out.push_str(&m.frame().render(set));
                }
                out.push('^');
                out.push_str(&format_mass(*w));
            }
            out.push(']');
            out
        }
    }
}

/// Render the full relation as an aligned ASCII table.
pub fn render_table(rel: &ExtendedRelation) -> String {
    let schema = rel.schema();
    let mut headers: Vec<String> = schema
        .attrs()
        .iter()
        .map(|a| {
            if a.ty().is_evidential() {
                format!("†{}", a.name())
            } else {
                a.name().to_owned()
            }
        })
        .collect();
    headers.push("†(sn,sp)".to_owned());

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(rel.len());
    for t in rel.iter() {
        let mut row: Vec<String> = t.values().iter().map(format_attr_value).collect();
        row.push(t.membership().to_string());
        rows.push(row);
    }

    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };

    out.push_str(&format!("{}\n", schema.name()));
    rule(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(widths.iter()) {
        let pad = w - h.chars().count();
        out.push_str(&format!(" {h}{} |", " ".repeat(pad)));
    }
    out.push('\n');
    rule(&mut out);
    for row in &rows {
        out.push('|');
        for (cell, w) in row.iter().zip(widths.iter()) {
            let pad = w - cell.chars().count();
            out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

impl fmt::Display for ExtendedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_table(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::AttrDomain;
    use crate::membership::SupportPair;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::{Value, ValueKind};
    use evirel_evidence::MassFunction;
    use std::sync::Arc;

    #[test]
    fn format_mass_trims() {
        assert_eq!(format_mass(0.5), "0.5");
        assert_eq!(format_mass(1.0), "1");
        assert_eq!(format_mass(0.655172), "0.655");
        assert_eq!(format_mass(2.0 / 3.0), "0.667");
        assert_eq!(format_mass(0.0), "0");
    }

    #[test]
    fn renders_paper_style_table() {
        let domain = Arc::new(AttrDomain::categorical("speciality", ["si", "hu", "ca"]).unwrap());
        let schema = Arc::new(
            Schema::builder("RA")
                .key_str("rname")
                .definite("bldg-no", ValueKind::Int)
                .evidential("speciality", Arc::clone(&domain))
                .build()
                .unwrap(),
        );
        let mut rel = ExtendedRelation::new(Arc::clone(&schema));
        let ev = MassFunction::<f64>::builder(Arc::clone(domain.frame()))
            .add(["si"], 0.5)
            .unwrap()
            .add(["hu"], 0.25)
            .unwrap()
            .add_omega(0.25)
            .build()
            .unwrap();
        rel.insert(
            Tuple::new(
                &schema,
                vec![
                    Value::str("garden").into(),
                    Value::int(2011).into(),
                    ev.into(),
                ],
                SupportPair::certain(),
            )
            .unwrap(),
        )
        .unwrap();
        let text = render_table(&rel);
        assert!(text.contains("†speciality"), "{text}");
        assert!(text.contains("[si^0.5, hu^0.25, Ω^0.25]"), "{text}");
        assert!(text.contains("(1,1)"), "{text}");
        assert!(text.contains("garden"));
        // Display impl delegates.
        assert_eq!(rel.to_string(), text);
    }
}
