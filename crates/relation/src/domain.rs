//! Typed finite attribute domains.
//!
//! An [`AttrDomain`] pairs an evidence-layer [`Frame`] (which the mass
//! machinery operates on by element index) with the typed [`Value`]s
//! those indices denote. The *declaration order* of the values defines
//! the total order used by θ-predicates in the algebra layer: integer
//! domains built with [`AttrDomain::integers`] are in natural numeric
//! order, and categorical domains use the declared order (e.g.
//! `avg < gd < ex` for ratings).

use crate::error::RelationError;
use crate::value::{Value, ValueKind};
use evirel_evidence::{FocalSet, Frame};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A finite, ordered, typed attribute domain (the paper's `Ω_A`).
#[derive(Debug)]
pub struct AttrDomain {
    frame: Arc<Frame>,
    values: Vec<Value>,
    index: HashMap<Value, usize>,
    kind: ValueKind,
}

impl AttrDomain {
    /// Build a categorical (string) domain from labels, in the given
    /// order.
    ///
    /// # Errors
    /// [`RelationError::DuplicateAttribute`] if a label repeats.
    pub fn categorical<I, L>(name: &str, labels: I) -> Result<AttrDomain, RelationError>
    where
        I: IntoIterator<Item = L>,
        L: Into<Arc<str>>,
    {
        let labels: Vec<Arc<str>> = labels.into_iter().map(Into::into).collect();
        Self::from_values(name, labels.into_iter().map(Value::Str).collect::<Vec<_>>())
    }

    /// Build an integer domain over `lo..=hi` in numeric order.
    ///
    /// # Errors
    /// [`RelationError::DuplicateAttribute`] never occurs here but the
    /// signature matches the general constructor.
    pub fn integers(name: &str, lo: i64, hi: i64) -> Result<AttrDomain, RelationError> {
        Self::from_values(name, (lo..=hi).map(Value::Int).collect::<Vec<_>>())
    }

    /// Build from explicit values (all of one kind), in the given order.
    ///
    /// # Errors
    /// * [`RelationError::DuplicateAttribute`] on duplicate values;
    /// * [`RelationError::TypeMismatch`] on mixed value kinds.
    pub fn from_values(name: &str, values: Vec<Value>) -> Result<AttrDomain, RelationError> {
        let kind = values.first().map(Value::kind).unwrap_or(ValueKind::Str);
        let mut index = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if v.kind() != kind {
                return Err(RelationError::TypeMismatch {
                    attr: name.to_owned(),
                    expected: kind.to_string(),
                    got: v.kind().to_string(),
                });
            }
            if index.insert(v.clone(), i).is_some() {
                return Err(RelationError::DuplicateAttribute {
                    name: v.to_string(),
                });
            }
        }
        let frame = Arc::new(Frame::new(name, values.iter().map(|v| v.to_string())));
        Ok(AttrDomain {
            frame,
            values,
            index,
            kind,
        })
    }

    /// The evidence-layer frame over which mass functions are built.
    pub fn frame(&self) -> &Arc<Frame> {
        &self.frame
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        self.frame.name()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the domain has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Kind of the domain's values.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// The typed value at element index `i`.
    ///
    /// # Errors
    /// [`RelationError::Evidence`] wrapping an index error.
    pub fn value(&self, i: usize) -> Result<&Value, RelationError> {
        self.values.get(i).ok_or_else(|| {
            RelationError::Evidence(evirel_evidence::EvidenceError::IndexOutOfBounds {
                index: i,
                frame_size: self.len(),
            })
        })
    }

    /// Index of a typed value.
    ///
    /// # Errors
    /// [`RelationError::ValueNotInDomain`] for unknown values.
    pub fn index_of(&self, v: &Value) -> Result<usize, RelationError> {
        self.index
            .get(v)
            .copied()
            .ok_or_else(|| RelationError::ValueNotInDomain {
                attr: self.name().to_owned(),
                value: v.to_string(),
            })
    }

    /// Iterate over the typed values in element order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Build a focal set from typed values.
    ///
    /// # Errors
    /// [`RelationError::ValueNotInDomain`] for any unknown value.
    pub fn subset_of_values<'a, I>(&self, vals: I) -> Result<FocalSet, RelationError>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut indices = Vec::new();
        for v in vals {
            indices.push(self.index_of(v)?);
        }
        Ok(FocalSet::from_indices(indices))
    }

    /// Structural identity check used by schema validation: same name,
    /// same values in the same order.
    pub fn same_as(&self, other: &AttrDomain) -> bool {
        self.frame == other.frame && self.values == other.values
    }
}

impl PartialEq for AttrDomain {
    fn eq(&self, other: &AttrDomain) -> bool {
        self.same_as(other)
    }
}

impl Eq for AttrDomain {}

impl fmt::Display for AttrDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} {} values]", self.name(), self.len(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_domain() {
        let d = AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.kind(), ValueKind::Str);
        assert_eq!(d.index_of(&Value::str("gd")).unwrap(), 1);
        assert_eq!(d.value(2).unwrap(), &Value::str("ex"));
        assert!(d.index_of(&Value::str("bad")).is_err());
        assert!(d.value(9).is_err());
    }

    #[test]
    fn integer_domain_in_numeric_order() {
        let d = AttrDomain::integers("votes", 1, 6).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d.kind(), ValueKind::Int);
        assert_eq!(d.index_of(&Value::int(4)).unwrap(), 3);
        // Frame labels are the rendered values.
        assert_eq!(d.frame().label(3).unwrap(), "4");
    }

    #[test]
    fn duplicate_values_rejected() {
        assert!(AttrDomain::categorical("x", ["a", "a"]).is_err());
    }

    #[test]
    fn mixed_kinds_rejected() {
        let err = AttrDomain::from_values("x", vec![Value::int(1), Value::str("a")]);
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn subset_of_values() {
        let d = AttrDomain::categorical("s", ["am", "hu", "si"]).unwrap();
        let set = d
            .subset_of_values([&Value::str("hu"), &Value::str("si")])
            .unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(2));
        assert!(d.subset_of_values([&Value::str("nope")]).is_err());
    }

    #[test]
    fn identity() {
        let a = AttrDomain::categorical("s", ["x", "y"]).unwrap();
        let b = AttrDomain::categorical("s", ["x", "y"]).unwrap();
        let c = AttrDomain::categorical("s", ["y", "x"]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "s[2 string values]");
    }

    #[test]
    fn empty_domain() {
        let d = AttrDomain::from_values("none", vec![]).unwrap();
        assert!(d.is_empty());
    }
}
