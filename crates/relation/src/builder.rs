//! Ergonomic construction of tuples and relations.
//!
//! [`RelationBuilder`] drives [`TupleBuilder`] closures so call sites
//! read like the paper's tables:
//!
//! ```
//! # use evirel_relation::*;
//! # use std::sync::Arc;
//! let spec = Arc::new(AttrDomain::categorical("spec", ["si", "hu"]).unwrap());
//! let schema = Arc::new(Schema::builder("ra")
//!     .key_str("rname")
//!     .evidential("spec", Arc::clone(&spec))
//!     .build().unwrap());
//! let rel = RelationBuilder::new(schema)
//!     .tuple(|t| t
//!         .set_str("rname", "garden")
//!         .set_evidence_with_omega("spec", [(&["si"][..], 0.5), (&["hu"][..], 0.25)], 0.25)
//!         .membership_pair(1.0, 1.0))
//!     .unwrap()
//!     .build();
//! assert_eq!(rel.len(), 1);
//! ```

use crate::error::RelationError;
use crate::membership::SupportPair;
use crate::relation::ExtendedRelation;
use crate::schema::Schema;
use crate::tuple::{AttrValue, Tuple};
use crate::value::Value;
use evirel_evidence::MassFunction;
use std::sync::Arc;

/// Builder for a single tuple against a schema.
#[derive(Debug)]
pub struct TupleBuilder {
    schema: Arc<Schema>,
    values: Vec<Option<AttrValue>>,
    membership: SupportPair,
    error: Option<RelationError>,
}

impl TupleBuilder {
    /// Start a tuple for `schema` with certain membership.
    pub fn new(schema: Arc<Schema>) -> TupleBuilder {
        let arity = schema.arity();
        TupleBuilder {
            schema,
            values: vec![None; arity],
            membership: SupportPair::certain(),
            error: None,
        }
    }

    fn record<T>(mut self, r: Result<T, RelationError>, apply: impl FnOnce(&mut Self, T)) -> Self {
        if self.error.is_some() {
            return self;
        }
        match r {
            Ok(v) => {
                apply(&mut self, v);
                self
            }
            Err(e) => {
                self.error = Some(e);
                self
            }
        }
    }

    /// Set any attribute value by name.
    pub fn set(self, name: &str, value: AttrValue) -> Self {
        let pos = self.schema.position(name);
        self.record(pos, |b, p| b.values[p] = Some(value))
    }

    /// Set a definite string value.
    pub fn set_str(self, name: &str, v: impl Into<Arc<str>>) -> Self {
        self.set(name, AttrValue::Definite(Value::Str(v.into())))
    }

    /// Set a definite integer value.
    pub fn set_int(self, name: &str, v: i64) -> Self {
        self.set(name, AttrValue::Definite(Value::Int(v)))
    }

    /// Set a definite float value.
    pub fn set_float(self, name: &str, v: f64) -> Self {
        self.set(name, AttrValue::Definite(Value::Float(v)))
    }

    /// Set an evidential attribute from `(labels, mass)` pairs; masses
    /// must sum to 1.
    pub fn set_evidence<'a>(
        self,
        name: &str,
        entries: impl IntoIterator<Item = (&'a [&'a str], f64)>,
    ) -> Self {
        self.set_evidence_with_omega(name, entries, 0.0)
    }

    /// Set an evidential attribute from `(labels, mass)` pairs plus an
    /// explicit Ω (nonbelief) mass.
    pub fn set_evidence_with_omega<'a>(
        self,
        name: &str,
        entries: impl IntoIterator<Item = (&'a [&'a str], f64)>,
        omega: f64,
    ) -> Self {
        let built: Result<(usize, MassFunction<f64>), RelationError> = (|| {
            let pos = self.schema.position(name)?;
            let attr = self.schema.attr(pos);
            let domain = attr
                .ty()
                .domain()
                .ok_or_else(|| RelationError::TypeMismatch {
                    attr: name.to_owned(),
                    expected: "evidential attribute".to_owned(),
                    got: "definite attribute".to_owned(),
                })?;
            let mut b = MassFunction::<f64>::builder(Arc::clone(domain.frame()));
            for (labels, w) in entries {
                b = b.add(labels.iter().copied(), w)?;
            }
            if omega > 0.0 {
                b = b.add_omega(omega);
            }
            Ok((pos, b.build()?))
        })();
        self.record(built, |b, (pos, m)| {
            b.values[pos] = Some(AttrValue::Evidential(m))
        })
    }

    /// Set the membership support pair.
    pub fn membership(mut self, m: SupportPair) -> Self {
        self.membership = m;
        self
    }

    /// Set the membership support pair from raw `(sn, sp)`.
    pub fn membership_pair(self, sn: f64, sp: f64) -> Self {
        let pair = SupportPair::new(sn, sp);
        self.record(pair, |b, p| b.membership = p)
    }

    /// Validate and build the tuple.
    ///
    /// # Errors
    /// Any error recorded along the way, or
    /// [`RelationError::MissingAttribute`] for unset attributes, or a
    /// validation error from [`Tuple::new`].
    pub fn build(self) -> Result<Tuple, RelationError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut values = Vec::with_capacity(self.values.len());
        for (i, v) in self.values.into_iter().enumerate() {
            match v {
                Some(v) => values.push(v),
                None => {
                    return Err(RelationError::MissingAttribute {
                        name: self.schema.attr(i).name().to_owned(),
                    })
                }
            }
        }
        Tuple::new(&self.schema, values, self.membership)
    }
}

/// Builder for a whole relation.
#[derive(Debug)]
pub struct RelationBuilder {
    relation: ExtendedRelation,
}

impl RelationBuilder {
    /// Start a relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> RelationBuilder {
        RelationBuilder {
            relation: ExtendedRelation::new(schema),
        }
    }

    /// Add one tuple via a [`TupleBuilder`] closure.
    ///
    /// # Errors
    /// Tuple building/validation errors, CWA violations, duplicate keys.
    pub fn tuple(
        mut self,
        f: impl FnOnce(TupleBuilder) -> TupleBuilder,
    ) -> Result<RelationBuilder, RelationError> {
        let t = f(TupleBuilder::new(Arc::clone(self.relation.schema()))).build()?;
        self.relation.insert(t)?;
        Ok(self)
    }

    /// Finish and return the relation.
    pub fn build(self) -> ExtendedRelation {
        self.relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::AttrDomain;
    use crate::value::ValueKind;

    fn schema() -> Arc<Schema> {
        let spec = Arc::new(AttrDomain::categorical("spec", ["am", "hu", "si"]).unwrap());
        Arc::new(
            Schema::builder("r")
                .key_str("name")
                .definite("bldg", ValueKind::Int)
                .evidential("spec", spec)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn builds_relation() {
        let rel = RelationBuilder::new(schema())
            .tuple(|t| {
                t.set_str("name", "wok")
                    .set_int("bldg", 600)
                    .set_evidence("spec", [(&["si"][..], 1.0)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("name", "garden")
                    .set_int("bldg", 2011)
                    .set_evidence_with_omega(
                        "spec",
                        [(&["si"][..], 0.5), (&["hu"][..], 0.25)],
                        0.25,
                    )
                    .membership_pair(0.5, 0.75)
            })
            .unwrap()
            .build();
        assert_eq!(rel.len(), 2);
        let garden = rel.get_by_key(&[Value::str("garden")]).unwrap();
        assert!((garden.membership().sp() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn missing_attribute_reported() {
        let err =
            RelationBuilder::new(schema()).tuple(|t| t.set_str("name", "wok").set_int("bldg", 600));
        assert!(matches!(
            err,
            Err(RelationError::MissingAttribute { name }) if name == "spec"
        ));
    }

    #[test]
    fn unknown_attribute_reported() {
        let err = RelationBuilder::new(schema()).tuple(|t| t.set_str("oops", "x"));
        assert!(matches!(err, Err(RelationError::UnknownAttribute { .. })));
    }

    #[test]
    fn evidence_on_definite_attr_reported() {
        let err =
            RelationBuilder::new(schema()).tuple(|t| t.set_evidence("bldg", [(&["si"][..], 1.0)]));
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn first_error_wins() {
        // Both the unknown attribute and the missing values would
        // error; the first recorded error is reported.
        let err =
            RelationBuilder::new(schema()).tuple(|t| t.set_str("zzz", "x").set_str("name", "wok"));
        assert!(matches!(err, Err(RelationError::UnknownAttribute { .. })));
    }

    #[test]
    fn bad_membership_reported() {
        let err = RelationBuilder::new(schema()).tuple(|t| {
            t.set_str("name", "wok")
                .set_int("bldg", 600)
                .set_evidence("spec", [(&["si"][..], 1.0)])
                .membership_pair(0.9, 0.1)
        });
        assert!(matches!(err, Err(RelationError::InvalidSupportPair { .. })));
    }

    #[test]
    fn float_setter() {
        let spec = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .definite("f", ValueKind::Float)
                .evidential("d", spec)
                .build()
                .unwrap(),
        );
        let rel = RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", "a")
                    .set_float("f", 2.5)
                    .set_evidence("d", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .build();
        assert_eq!(rel.len(), 1);
    }
}
