//! Keyed extended relations.

use crate::cwa::CwaPolicy;
use crate::error::RelationError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// An extended relation: a schema, an extension (set of tuples keyed
/// by their definite key values), and the CWA_ER invariant that every
/// stored tuple has `sn > 0`.
///
/// Tuples are stored behind [`Arc`] so streaming operators can pass
/// unmodified tuples through whole pipelines — and into result
/// relations — without deep-copying attribute values (copy-on-write:
/// only an operator that actually revises a tuple pays for a copy).
#[derive(Debug, Clone)]
pub struct ExtendedRelation {
    schema: Arc<Schema>,
    tuples: Vec<Arc<Tuple>>,
    key_index: HashMap<Vec<Value>, usize>,
}

impl ExtendedRelation {
    /// An empty relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> ExtendedRelation {
        ExtendedRelation {
            schema,
            tuples: Vec::new(),
            key_index: HashMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the extension is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple, enforcing CWA_ER (`sn > 0`) and key uniqueness.
    ///
    /// # Errors
    /// * [`RelationError::CwaViolation`] if `sn == 0`;
    /// * [`RelationError::DuplicateKey`] if the key already exists;
    /// * validation errors from [`Tuple::new`] if the tuple was not
    ///   built against this relation's schema (call sites constructing
    ///   raw tuples should prefer [`crate::builder::RelationBuilder`]).
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), RelationError> {
        self.insert_with_policy(tuple, CwaPolicy::Enforce)
    }

    /// Insert an already-shared tuple without copying it — the
    /// zero-copy path streaming operators use for tuples that pass
    /// through a pipeline unmodified.
    ///
    /// # Errors
    /// As [`ExtendedRelation::insert`].
    pub fn insert_shared(&mut self, tuple: Arc<Tuple>) -> Result<(), RelationError> {
        self.insert_shared_with_policy(tuple, CwaPolicy::Enforce)
    }

    /// Insert with an explicit [`CwaPolicy`]. `CwaPolicy::AllowZero`
    /// exists solely for the boundedness-property verifier, which must
    /// materialize complement tuples with `sn = 0` (§3.6); production
    /// code uses [`ExtendedRelation::insert`].
    ///
    /// # Errors
    /// As [`ExtendedRelation::insert`], minus the CWA check when the
    /// policy allows zero-support tuples.
    pub fn insert_with_policy(
        &mut self,
        tuple: Tuple,
        policy: CwaPolicy,
    ) -> Result<(), RelationError> {
        self.insert_shared_with_policy(Arc::new(tuple), policy)
    }

    fn insert_shared_with_policy(
        &mut self,
        tuple: Arc<Tuple>,
        policy: CwaPolicy,
    ) -> Result<(), RelationError> {
        if policy == CwaPolicy::Enforce && !tuple.membership().is_positive() {
            return Err(RelationError::CwaViolation);
        }
        let key = tuple.key(&self.schema);
        if self.key_index.contains_key(&key) {
            return Err(RelationError::DuplicateKey {
                key: Value::render_key(&key),
            });
        }
        self.key_index.insert(key, self.tuples.len());
        self.tuples.push(tuple);
        Ok(())
    }

    /// Look up a tuple by its key values.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&Tuple> {
        self.key_index.get(key).map(|&i| self.tuples[i].as_ref())
    }

    /// The tuple at insertion position `idx`, if any — constant-time
    /// cursor access for streaming scan operators.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx).map(|t| t.as_ref())
    }

    /// Shared handle to the tuple at insertion position `idx` —
    /// lets scan operators emit without deep-copying.
    pub fn get_shared(&self, idx: usize) -> Option<Arc<Tuple>> {
        self.tuples.get(idx).cloned()
    }

    /// Shared handle to the tuple with the given key.
    pub fn get_shared_by_key(&self, key: &[Value]) -> Option<Arc<Tuple>> {
        self.key_index
            .get(key)
            .map(|&i| Arc::clone(&self.tuples[i]))
    }

    /// `true` if a tuple with this key is stored.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.key_index.contains_key(key)
    }

    /// Iterate over the stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().map(|t| t.as_ref())
    }

    /// Iterate over `(key, tuple)` pairs in insertion order.
    pub fn iter_keyed(&self) -> impl Iterator<Item = (Vec<Value>, &Tuple)> + '_ {
        self.tuples
            .iter()
            .map(|t| (t.key(&self.schema), t.as_ref()))
    }

    /// Iterate over `(key, shared handle)` pairs in insertion order —
    /// the zero-copy companion of [`ExtendedRelation::iter_keyed`] for
    /// operators that pass unmodified tuples through to an output
    /// relation (set operations, the sequential ∪̃).
    pub fn iter_keyed_shared(&self) -> impl Iterator<Item = (Vec<Value>, &Arc<Tuple>)> + '_ {
        self.tuples.iter().map(|t| (t.key(&self.schema), t))
    }

    /// The keys of all stored tuples, in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.tuples.iter().map(|t| t.key(&self.schema))
    }

    /// Validate every stored tuple against the schema and the CWA_ER
    /// invariant — a consistency audit used after bulk operations and
    /// in tests.
    ///
    /// # Errors
    /// The first violation found.
    pub fn validate(&self) -> Result<(), RelationError> {
        for t in &self.tuples {
            // Re-validate attribute typing.
            Tuple::new(&self.schema, t.values().to_vec(), t.membership())?;
            if !t.membership().is_positive() {
                return Err(RelationError::CwaViolation);
            }
        }
        Ok(())
    }

    /// Structural comparison up to `f64` tolerance and tuple order:
    /// same schema name/arity, same key set, approximately equal
    /// tuples per key.
    pub fn approx_eq(&self, other: &ExtendedRelation) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.iter_keyed()
            .all(|(key, t)| other.get_by_key(&key).is_some_and(|o| o.approx_eq(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::AttrDomain;
    use crate::membership::SupportPair;
    use crate::value::ValueKind;
    use evirel_evidence::MassFunction;

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("spec", ["am", "hu", "si"]).unwrap())
    }

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder("r")
                .key_str("name")
                .definite("bldg", ValueKind::Int)
                .evidential("spec", domain())
                .build()
                .unwrap(),
        )
    }

    fn tuple(name: &str, sn: f64, sp: f64) -> Tuple {
        Tuple::new(
            &schema(),
            vec![
                Value::str(name).into(),
                Value::int(1).into(),
                MassFunction::<f64>::vacuous(Arc::clone(domain().frame()))
                    .unwrap()
                    .into(),
            ],
            SupportPair::new(sn, sp).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = ExtendedRelation::new(schema());
        assert!(r.is_empty());
        r.insert(tuple("wok", 1.0, 1.0)).unwrap();
        r.insert(tuple("garden", 0.5, 0.75)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_key(&[Value::str("wok")]));
        let t = r.get_by_key(&[Value::str("garden")]).unwrap();
        assert!((t.membership().sn() - 0.5).abs() < 1e-12);
        assert!(r.get_by_key(&[Value::str("nope")]).is_none());
    }

    #[test]
    fn cwa_enforced() {
        let mut r = ExtendedRelation::new(schema());
        let err = r.insert(tuple("ghost", 0.0, 1.0));
        assert!(matches!(err, Err(RelationError::CwaViolation)));
        // …but the boundedness verifier can opt out.
        r.insert_with_policy(tuple("ghost", 0.0, 1.0), CwaPolicy::AllowZero)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.validate().is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut r = ExtendedRelation::new(schema());
        r.insert(tuple("wok", 1.0, 1.0)).unwrap();
        let err = r.insert(tuple("wok", 0.5, 0.5));
        assert!(matches!(err, Err(RelationError::DuplicateKey { .. })));
    }

    #[test]
    fn iteration() {
        let mut r = ExtendedRelation::new(schema());
        r.insert(tuple("a", 1.0, 1.0)).unwrap();
        r.insert(tuple("b", 1.0, 1.0)).unwrap();
        assert_eq!(r.iter().count(), 2);
        let keys: Vec<_> = r.keys().collect();
        assert_eq!(keys, vec![vec![Value::str("a")], vec![Value::str("b")]]);
        let keyed: Vec<_> = r.iter_keyed().map(|(k, _)| k).collect();
        assert_eq!(keyed.len(), 2);
    }

    #[test]
    fn validate_passes_for_good_relation() {
        let mut r = ExtendedRelation::new(schema());
        r.insert(tuple("a", 0.7, 0.9)).unwrap();
        assert!(r.validate().is_ok());
    }

    #[test]
    fn approx_eq_ignores_order() {
        let mut r1 = ExtendedRelation::new(schema());
        r1.insert(tuple("a", 1.0, 1.0)).unwrap();
        r1.insert(tuple("b", 0.5, 0.5)).unwrap();
        let mut r2 = ExtendedRelation::new(schema());
        r2.insert(tuple("b", 0.5, 0.5)).unwrap();
        r2.insert(tuple("a", 1.0, 1.0)).unwrap();
        assert!(r1.approx_eq(&r2));
        let mut r3 = ExtendedRelation::new(schema());
        r3.insert(tuple("a", 1.0, 1.0)).unwrap();
        assert!(!r1.approx_eq(&r3));
    }
}
