//! Tuple membership support pairs (§2.3 and §3 of the paper).
//!
//! The membership of a tuple in an extended relation is an evidence
//! set over Ψ = {true, false}. Mass may go to `{true}`, `{false}`, or
//! Ψ itself, so the evidence set is fully described by the pair
//!
//! ```text
//! sn = m({true})                 — necessary support
//! sp = m({true}) + m(Ψ)          — possible support  (= 1 − m({false}))
//! ```
//!
//! with the invariant `0 ≤ sn ≤ sp ≤ 1`.
//!
//! Two combination rules act on support pairs:
//!
//! * [`SupportPair::combine_dempster`] — the paper's `F` (§3.2): full
//!   Dempster combination over Ψ, used by the extended union to merge
//!   the membership evidence of matched tuples;
//! * [`SupportPair::and_independent`] — the paper's `F_TM` (§3.1.2):
//!   the multiplicative rule `(sn₁·sn₂, sp₁·sp₂)` for conjoining
//!   *independent* events (tuple membership × predicate satisfaction).

use crate::error::RelationError;
use evirel_evidence::{EvidenceError, Weight};
use std::fmt;

/// A `(sn, sp)` support pair: the paper's tuple-membership evidence
/// set over Ψ = {true, false}.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupportPair {
    sn: f64,
    sp: f64,
}

impl SupportPair {
    /// Construct a validated pair.
    ///
    /// # Errors
    /// [`RelationError::InvalidSupportPair`] unless `0 ≤ sn ≤ sp ≤ 1`.
    pub fn new(sn: f64, sp: f64) -> Result<SupportPair, RelationError> {
        // Tolerate float round-off from multiplicative chains.
        let eps = 1e-9;
        if !(sn.is_finite() && sp.is_finite()) || sn < -eps || sp > 1.0 + eps || sn > sp + eps {
            return Err(RelationError::InvalidSupportPair { sn, sp });
        }
        Ok(SupportPair {
            sn: sn.clamp(0.0, 1.0),
            sp: sp.clamp(0.0, 1.0),
        })
    }

    /// `(1, 1)` — the tuple certainly belongs (§2.3).
    pub const fn certain() -> SupportPair {
        SupportPair { sn: 1.0, sp: 1.0 }
    }

    /// `(0, 0)` — the tuple certainly does not belong.
    pub const fn impossible() -> SupportPair {
        SupportPair { sn: 0.0, sp: 0.0 }
    }

    /// `(0, 1)` — complete ignorance about membership.
    pub const fn unknown() -> SupportPair {
        SupportPair { sn: 0.0, sp: 1.0 }
    }

    /// Necessary support `sn = m({true})`.
    pub fn sn(&self) -> f64 {
        self.sn
    }

    /// Possible support `sp = 1 − m({false})`.
    pub fn sp(&self) -> f64 {
        self.sp
    }

    /// Mass on `{true}`.
    pub fn mass_true(&self) -> f64 {
        self.sn
    }

    /// Mass on `{false}`.
    pub fn mass_false(&self) -> f64 {
        1.0 - self.sp
    }

    /// Mass on Ψ (ignorance).
    pub fn mass_psi(&self) -> f64 {
        self.sp - self.sn
    }

    /// `sn > 0` — the CWA_ER storage criterion.
    pub fn is_positive(&self) -> bool {
        self.sn > 0.0
    }

    /// `(1, 1)` within tolerance.
    pub fn is_certain(&self) -> bool {
        self.sn.approx_eq(&1.0) && self.sp.approx_eq(&1.0)
    }

    /// The paper's `F` (§3.2): Dempster's rule over Ψ = {true, false},
    /// written in closed form. Used by the extended union to combine
    /// the membership evidence of key-matched tuples.
    ///
    /// # Errors
    /// [`RelationError::Evidence`] with
    /// [`EvidenceError::TotalConflict`] when one source is certain the
    /// tuple exists and the other is certain it does not (κ = 1).
    pub fn combine_dempster(&self, other: &SupportPair) -> Result<SupportPair, RelationError> {
        let (t1, f1, p1) = (self.mass_true(), self.mass_false(), self.mass_psi());
        let (t2, f2, p2) = (other.mass_true(), other.mass_false(), other.mass_psi());
        // κ: one source says true, the other false.
        let kappa = t1 * f2 + f1 * t2;
        let denom = 1.0 - kappa;
        if denom.abs() < 1e-12 {
            return Err(RelationError::Evidence(EvidenceError::TotalConflict));
        }
        let t = (t1 * t2 + t1 * p2 + p1 * t2) / denom;
        let f = (f1 * f2 + f1 * p2 + p1 * f2) / denom;
        SupportPair::new(t, 1.0 - f)
    }

    /// The paper's `F_TM` (§3.1.2): treat the two pairs as supports of
    /// *independent* events and conjoin multiplicatively:
    /// `(sn₁·sn₂, sp₁·sp₂)`. Used to derive the result-tuple
    /// membership from (original membership, predicate support), and by
    /// the extended cartesian product (§3.4).
    pub fn and_independent(&self, other: &SupportPair) -> SupportPair {
        // Products of values in [0,1] preserve the invariant.
        SupportPair {
            sn: self.sn * other.sn,
            sp: self.sp * other.sp,
        }
    }

    /// Structural comparison with `f64` tolerance.
    pub fn approx_eq(&self, other: &SupportPair) -> bool {
        self.sn.approx_eq(&other.sn) && self.sp.approx_eq(&other.sp)
    }
}

impl Default for SupportPair {
    /// Defaults to certain membership, matching ordinary relations.
    fn default() -> SupportPair {
        SupportPair::certain()
    }
}

impl fmt::Display for SupportPair {
    /// Renders like the paper's tables: `(1,1)`, `(0.5,0.75)`,
    /// `(0.32,0.32)` — trailing zeros trimmed, at most two decimals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn short(x: f64) -> String {
            let s = format!("{x:.2}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            if s.is_empty() {
                "0".to_owned()
            } else {
                s.to_owned()
            }
        }
        write!(f, "({},{})", short(self.sn), short(self.sp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(sn: f64, spv: f64) -> SupportPair {
        SupportPair::new(sn, spv).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SupportPair::new(0.2, 0.8).is_ok());
        assert!(SupportPair::new(0.9, 0.1).is_err());
        assert!(SupportPair::new(-0.1, 0.5).is_err());
        assert!(SupportPair::new(0.5, 1.2).is_err());
        assert!(SupportPair::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn named_constants() {
        assert_eq!(SupportPair::certain(), sp(1.0, 1.0));
        assert_eq!(SupportPair::impossible(), sp(0.0, 0.0));
        assert_eq!(SupportPair::unknown(), sp(0.0, 1.0));
        assert!(SupportPair::certain().is_certain());
        assert!(!SupportPair::unknown().is_positive());
        assert_eq!(SupportPair::default(), SupportPair::certain());
    }

    #[test]
    fn mass_decomposition() {
        let p = sp(0.3, 0.8);
        assert!((p.mass_true() - 0.3).abs() < 1e-12);
        assert!((p.mass_false() - 0.2).abs() < 1e-12);
        assert!((p.mass_psi() - 0.5).abs() < 1e-12);
        let total = p.mass_true() + p.mass_false() + p.mass_psi();
        assert!((total - 1.0).abs() < 1e-12);
    }

    /// The paper's Table 4, tuple `mehl`: (0.5, 0.5) ⊕ (0.8, 1) =
    /// (0.8333…, 0.8333…), printed as (0.83, 0.83).
    #[test]
    fn paper_mehl_membership_combination() {
        let a = sp(0.5, 0.5);
        let b = sp(0.8, 1.0);
        let c = a.combine_dempster(&b).unwrap();
        assert!((c.sn() - 5.0 / 6.0).abs() < 1e-12);
        assert!((c.sp() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.to_string(), "(0.83,0.83)");
    }

    #[test]
    fn combine_with_certain_is_certain() {
        // (1,1) ⊕ anything-with-sp>0 stays certain.
        let c = SupportPair::certain()
            .combine_dempster(&sp(0.2, 0.9))
            .unwrap();
        assert!(c.is_certain());
    }

    #[test]
    fn combine_with_unknown_is_identity() {
        let p = sp(0.4, 0.7);
        let c = p.combine_dempster(&SupportPair::unknown()).unwrap();
        assert!(c.approx_eq(&p));
    }

    #[test]
    fn total_conflict_is_error() {
        let a = SupportPair::certain();
        let b = SupportPair::impossible();
        assert!(matches!(
            a.combine_dempster(&b),
            Err(RelationError::Evidence(EvidenceError::TotalConflict))
        ));
    }

    #[test]
    fn combine_commutative() {
        let a = sp(0.3, 0.6);
        let b = sp(0.5, 0.9);
        let ab = a.combine_dempster(&b).unwrap();
        let ba = b.combine_dempster(&a).unwrap();
        assert!(ab.approx_eq(&ba));
    }

    #[test]
    fn ftm_multiplicative() {
        // Table 3, mehl: predicate support (0.64, 0.64) × membership
        // (0.5, 0.5) = (0.32, 0.32).
        let p = sp(0.64, 0.64).and_independent(&sp(0.5, 0.5));
        assert!(p.approx_eq(&sp(0.32, 0.32)));
        assert_eq!(p.to_string(), "(0.32,0.32)");
        // Identity under (1,1).
        let q = sp(0.4, 0.7).and_independent(&SupportPair::certain());
        assert!(q.approx_eq(&sp(0.4, 0.7)));
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(SupportPair::certain().to_string(), "(1,1)");
        assert_eq!(sp(0.5, 0.75).to_string(), "(0.5,0.75)");
        assert_eq!(sp(0.0, 1.0).to_string(), "(0,1)");
        assert_eq!(sp(0.9, 1.0).to_string(), "(0.9,1)");
    }
}
