//! Tuples of an extended relation.

use crate::domain::AttrDomain;
use crate::error::RelationError;
use crate::membership::SupportPair;
use crate::schema::{AttrType, Schema};
use crate::value::Value;
use evirel_evidence::MassFunction;
use std::fmt;
use std::sync::Arc;

/// The value stored in one attribute of a tuple: either a definite
/// [`Value`] or an evidence set (a mass function over the attribute's
/// domain).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A definite value.
    Definite(Value),
    /// An evidence set (the paper's uncertain attribute values).
    Evidential(MassFunction<f64>),
}

impl AttrValue {
    /// The definite value, if this is one.
    pub fn as_definite(&self) -> Option<&Value> {
        match self {
            AttrValue::Definite(v) => Some(v),
            AttrValue::Evidential(_) => None,
        }
    }

    /// The evidence set, if this is one.
    pub fn as_evidential(&self) -> Option<&MassFunction<f64>> {
        match self {
            AttrValue::Evidential(m) => Some(m),
            AttrValue::Definite(_) => None,
        }
    }

    /// Promote to an evidence set over `domain`: a definite value `v`
    /// becomes the certain mass `m({v}) = 1` (the paper's observation
    /// that definite values are evidence sets with one singleton focal
    /// element).
    ///
    /// # Errors
    /// [`RelationError::ValueNotInDomain`] if a definite value is not
    /// in `domain`.
    pub fn to_evidence(&self, domain: &AttrDomain) -> Result<MassFunction<f64>, RelationError> {
        match self {
            AttrValue::Evidential(m) => Ok(m.clone()),
            AttrValue::Definite(v) => {
                let idx = domain.index_of(v)?;
                Ok(MassFunction::from_entries(
                    Arc::clone(domain.frame()),
                    [(evirel_evidence::FocalSet::singleton(idx), 1.0)],
                )?)
            }
        }
    }

    /// Structural comparison with `f64` tolerance on evidence masses.
    pub fn approx_eq(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrValue::Definite(a), AttrValue::Definite(b)) => a == b,
            (AttrValue::Evidential(a), AttrValue::Evidential(b)) => a.approx_eq(b),
            _ => false,
        }
    }
}

impl From<Value> for AttrValue {
    fn from(v: Value) -> AttrValue {
        AttrValue::Definite(v)
    }
}

impl From<MassFunction<f64>> for AttrValue {
    fn from(m: MassFunction<f64>) -> AttrValue {
        AttrValue::Evidential(m)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Definite(v) => write!(f, "{v}"),
            AttrValue::Evidential(m) => write!(f, "{m}"),
        }
    }
}

/// One tuple: attribute values in schema order, plus the membership
/// support pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<AttrValue>,
    membership: SupportPair,
}

impl Tuple {
    /// Construct and validate against `schema`.
    ///
    /// Checks arity, that key attributes hold definite values of the
    /// right kind, that definite attributes hold matching kinds, and
    /// that evidential attribute values are built over the attribute's
    /// declared domain frame.
    ///
    /// # Errors
    /// The respective [`RelationError`] variant for each violated rule.
    pub fn new(
        schema: &Schema,
        values: Vec<AttrValue>,
        membership: SupportPair,
    ) -> Result<Tuple, RelationError> {
        if values.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                got: values.len(),
                expected: schema.arity(),
            });
        }
        for (attr, value) in schema.attrs().iter().zip(values.iter()) {
            match (attr.ty(), value) {
                (AttrType::Definite(kind), AttrValue::Definite(v)) => {
                    if v.kind() != *kind {
                        return Err(RelationError::TypeMismatch {
                            attr: attr.name().to_owned(),
                            expected: kind.to_string(),
                            got: v.kind().to_string(),
                        });
                    }
                }
                (AttrType::Definite(_), AttrValue::Evidential(_)) => {
                    // Keys must be definite (§2.3); so must declared
                    // definite attributes.
                    if attr.is_key() {
                        return Err(RelationError::UncertainKey {
                            attr: attr.name().to_owned(),
                        });
                    }
                    return Err(RelationError::TypeMismatch {
                        attr: attr.name().to_owned(),
                        expected: "definite value".to_owned(),
                        got: "evidence set".to_owned(),
                    });
                }
                (AttrType::Evidential(domain), AttrValue::Evidential(m)) => {
                    if m.frame() != domain.frame() {
                        return Err(RelationError::DomainMismatch {
                            attr: attr.name().to_owned(),
                            got: m.frame().name().to_owned(),
                        });
                    }
                }
                (AttrType::Evidential(domain), AttrValue::Definite(v)) => {
                    // Definite values in evidential attributes are
                    // legal (special-case evidence sets) but must lie
                    // in the domain.
                    domain.index_of(v)?;
                }
            }
        }
        Ok(Tuple { values, membership })
    }

    /// Attribute values in schema order.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }

    /// The value at position `pos`.
    pub fn value(&self, pos: usize) -> &AttrValue {
        &self.values[pos]
    }

    /// The membership support pair.
    pub fn membership(&self) -> SupportPair {
        self.membership
    }

    /// Replace the membership pair (used by the algebra when deriving
    /// result tuples).
    pub fn with_membership(&self, membership: SupportPair) -> Tuple {
        Tuple {
            values: self.values.clone(),
            membership,
        }
    }

    /// Consuming variant of [`Tuple::with_membership`] — streaming
    /// operators own their tuples, so revising the membership need not
    /// clone the attribute values.
    pub fn with_membership_owned(mut self, membership: SupportPair) -> Tuple {
        self.membership = membership;
        self
    }

    /// Extract the key values (definite by construction) given the
    /// schema that validated this tuple.
    pub fn key(&self, schema: &Schema) -> Vec<Value> {
        schema
            .key_positions()
            .iter()
            .map(|&i| {
                self.values[i]
                    .as_definite()
                    .expect("validated tuples have definite keys")
                    .clone()
            })
            .collect()
    }

    /// Project onto the given positions, keeping membership (§3.3).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&i| self.values[i].clone()).collect(),
            membership: self.membership,
        }
    }

    /// Structural comparison with `f64` tolerance.
    pub fn approx_eq(&self, other: &Tuple) -> bool {
        self.values.len() == other.values.len()
            && self.membership.approx_eq(&other.membership)
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(a, b)| a.approx_eq(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueKind;

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("spec", ["am", "hu", "si"]).unwrap())
    }

    fn schema() -> Schema {
        Schema::builder("r")
            .key_str("name")
            .definite("bldg", ValueKind::Int)
            .evidential("spec", domain())
            .build()
            .unwrap()
    }

    fn evidence(entries: &[(&[&str], f64)]) -> MassFunction<f64> {
        let mut b = MassFunction::<f64>::builder(Arc::clone(domain().frame()));
        for (labels, w) in entries {
            b = b.add(labels.iter().copied(), *w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn valid_tuple() {
        let t = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                Value::int(600).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::certain(),
        )
        .unwrap();
        assert_eq!(t.key(&schema()), vec![Value::str("wok")]);
        assert_eq!(t.values().len(), 3);
        assert!(t.membership().is_certain());
    }

    #[test]
    fn arity_checked() {
        let err = Tuple::new(
            &schema(),
            vec![Value::str("wok").into()],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::ArityMismatch { .. })));
    }

    #[test]
    fn key_kind_checked() {
        let err = Tuple::new(
            &schema(),
            vec![
                Value::int(1).into(),
                Value::int(600).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn uncertain_key_rejected() {
        let err = Tuple::new(
            &schema(),
            vec![
                evidence(&[(&["si"], 1.0)]).into(),
                Value::int(600).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::UncertainKey { .. })));
    }

    #[test]
    fn evidence_in_definite_attr_rejected() {
        let err = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                evidence(&[(&["si"], 1.0)]).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn wrong_frame_rejected() {
        let other = Arc::new(AttrDomain::categorical("other", ["x", "y"]).unwrap());
        let m = MassFunction::<f64>::vacuous(Arc::clone(other.frame())).unwrap();
        let err = Tuple::new(
            &schema(),
            vec![Value::str("wok").into(), Value::int(600).into(), m.into()],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::DomainMismatch { .. })));
    }

    #[test]
    fn definite_value_in_evidential_attr() {
        // Allowed when in-domain…
        let t = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                Value::int(600).into(),
                Value::str("si").into(),
            ],
            SupportPair::certain(),
        )
        .unwrap();
        // …and promotable to the certain evidence set.
        let ev = t.value(2).to_evidence(&domain()).unwrap();
        assert_eq!(ev.as_definite(), Some(2));
        // Out-of-domain definite rejected.
        let err = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                Value::int(600).into(),
                Value::str("french").into(),
            ],
            SupportPair::certain(),
        );
        assert!(matches!(err, Err(RelationError::ValueNotInDomain { .. })));
    }

    #[test]
    fn projection_keeps_membership() {
        let t = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                Value::int(600).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::new(0.5, 0.75).unwrap(),
        )
        .unwrap();
        let p = t.project(&[0, 2]);
        assert_eq!(p.values().len(), 2);
        assert!(p
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.75).unwrap()));
    }

    #[test]
    fn with_membership_replaces() {
        let t = Tuple::new(
            &schema(),
            vec![
                Value::str("wok").into(),
                Value::int(600).into(),
                evidence(&[(&["si"], 1.0)]).into(),
            ],
            SupportPair::certain(),
        )
        .unwrap();
        let t2 = t.with_membership(SupportPair::new(0.2, 0.4).unwrap());
        assert!(t2
            .membership()
            .approx_eq(&SupportPair::new(0.2, 0.4).unwrap()));
        assert_eq!(t2.values(), t.values());
    }

    #[test]
    fn attr_value_display() {
        let v: AttrValue = Value::str("wok").into();
        assert_eq!(v.to_string(), "wok");
        let e: AttrValue = evidence(&[(&["si"], 0.5), (&["hu"], 0.5)]).into();
        assert!(e.to_string().contains("si^0.5"));
    }
}
