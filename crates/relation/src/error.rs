//! Error types for the extended relational model.

use evirel_evidence::EvidenceError;
use std::fmt;

/// Errors produced by schema construction, tuple validation, and
/// relation maintenance.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// An underlying evidence-layer error.
    Evidence(EvidenceError),
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The attribute that was looked up.
        name: String,
        /// The schema (relation) name.
        schema: String,
    },
    /// A duplicate attribute name in a schema definition.
    DuplicateAttribute {
        /// The repeated name.
        name: String,
    },
    /// A schema must declare at least one key attribute (the paper
    /// assumes relations share a common definite key).
    NoKey,
    /// A tuple supplied the wrong number of attribute values.
    ArityMismatch {
        /// Values supplied.
        got: usize,
        /// Values expected by the schema.
        expected: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// What the schema expects.
        expected: String,
        /// What was supplied.
        got: String,
    },
    /// Key attributes must hold definite values (§2.3: "each extended
    /// relation has definite key values").
    UncertainKey {
        /// Offending key attribute.
        attr: String,
    },
    /// A definite value was not a member of the attribute's domain.
    ValueNotInDomain {
        /// Attribute name.
        attr: String,
        /// Rendering of the value.
        value: String,
    },
    /// An evidential value was built over a different frame than the
    /// attribute's domain.
    DomainMismatch {
        /// Attribute name.
        attr: String,
        /// Frame the value was built over.
        got: String,
    },
    /// Support pairs require `0 ≤ sn ≤ sp ≤ 1`.
    InvalidSupportPair {
        /// Offending sn.
        sn: f64,
        /// Offending sp.
        sp: f64,
    },
    /// CWA_ER violation: stored tuples require `sn > 0`.
    CwaViolation,
    /// Two tuples with the same key in one relation.
    DuplicateKey {
        /// Rendering of the key values.
        key: String,
    },
    /// An operation required union-compatible relations (§3.2) and the
    /// schemas differ.
    NotUnionCompatible {
        /// Human-readable reason.
        reason: String,
    },
    /// A tuple was missing a required attribute during building.
    MissingAttribute {
        /// The attribute never set.
        name: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Evidence(e) => write!(f, "evidence error: {e}"),
            Self::UnknownAttribute { name, schema } => {
                write!(f, "attribute {name:?} not in schema {schema:?}")
            }
            Self::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?} in schema")
            }
            Self::NoKey => write!(f, "schema declares no key attribute"),
            Self::ArityMismatch { got, expected } => {
                write!(f, "tuple has {got} values, schema expects {expected}")
            }
            Self::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute {attr:?} expects {expected}, got {got}")
            }
            Self::UncertainKey { attr } => {
                write!(f, "key attribute {attr:?} must hold a definite value")
            }
            Self::ValueNotInDomain { attr, value } => {
                write!(
                    f,
                    "value {value} is outside the domain of attribute {attr:?}"
                )
            }
            Self::DomainMismatch { attr, got } => {
                write!(
                    f,
                    "evidence for attribute {attr:?} was built over frame {got:?}"
                )
            }
            Self::InvalidSupportPair { sn, sp } => {
                write!(
                    f,
                    "support pair requires 0 <= sn <= sp <= 1, got ({sn}, {sp})"
                )
            }
            Self::CwaViolation => {
                write!(f, "CWA_ER violation: stored tuples require sn > 0")
            }
            Self::DuplicateKey { key } => {
                write!(f, "duplicate key {key} in relation")
            }
            Self::NotUnionCompatible { reason } => {
                write!(f, "relations are not union-compatible: {reason}")
            }
            Self::MissingAttribute { name } => {
                write!(f, "tuple is missing a value for attribute {name:?}")
            }
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Evidence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvidenceError> for RelationError {
    fn from(e: EvidenceError) -> Self {
        RelationError::Evidence(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_facts() {
        let e = RelationError::TypeMismatch {
            attr: "phone".into(),
            expected: "string".into(),
            got: "int".into(),
        };
        assert!(e.to_string().contains("phone"));
        let e = RelationError::InvalidSupportPair { sn: 0.9, sp: 0.1 };
        assert!(e.to_string().contains("0.9"));
    }

    #[test]
    fn evidence_errors_convert() {
        let e: RelationError = EvidenceError::TotalConflict.into();
        assert!(matches!(
            e,
            RelationError::Evidence(EvidenceError::TotalConflict)
        ));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
