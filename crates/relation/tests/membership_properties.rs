//! Property-based tests for the support-pair algebra — the paper's
//! `F` (Dempster over Ψ) and `F_TM` (multiplicative conjunction).

use evirel_evidence::EvidenceError;
use evirel_relation::{RelationError, SupportPair};
use proptest::prelude::*;

fn pair_strategy() -> impl Strategy<Value = SupportPair> {
    (0u32..=1000, 0u32..=1000).prop_map(|(a, b)| {
        let (sn, sp) = if a <= b { (a, b) } else { (b, a) };
        SupportPair::new(sn as f64 / 1000.0, sp as f64 / 1000.0).expect("ordered in [0,1]")
    })
}

proptest! {
    // Bounded so `cargo test -q` stays fast; support-pair cases are
    // cheap, so this suite affords more cases than the relational ones.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Masses on {true}, {false}, Ψ always total 1.
    #[test]
    fn mass_decomposition_is_total(p in pair_strategy()) {
        let total = p.mass_true() + p.mass_false() + p.mass_psi();
        prop_assert!((total - 1.0).abs() < 1e-12);
        prop_assert!(p.mass_true() >= -1e-12);
        prop_assert!(p.mass_false() >= -1e-12);
        prop_assert!(p.mass_psi() >= -1e-12);
    }

    /// F (Dempster over Ψ) is commutative and keeps the invariant.
    #[test]
    fn combine_commutative_and_valid(a in pair_strategy(), b in pair_strategy()) {
        match (a.combine_dempster(&b), b.combine_dempster(&a)) {
            (Ok(x), Ok(y)) => {
                prop_assert!(x.approx_eq(&y));
                prop_assert!(x.sn() >= -1e-12);
                prop_assert!(x.sn() <= x.sp() + 1e-9);
                prop_assert!(x.sp() <= 1.0 + 1e-12);
            }
            (Err(RelationError::Evidence(EvidenceError::TotalConflict)),
             Err(RelationError::Evidence(EvidenceError::TotalConflict))) => {}
            other => prop_assert!(false, "asymmetric outcome: {other:?}"),
        }
    }

    /// F is associative (up to f64 tolerance).
    #[test]
    fn combine_associative(a in pair_strategy(), b in pair_strategy(), c in pair_strategy()) {
        let left = a.combine_dempster(&b).and_then(|ab| ab.combine_dempster(&c));
        let right = b.combine_dempster(&c).and_then(|bc| a.combine_dempster(&bc));
        if let (Ok(l), Ok(r)) = (left, right) {
            prop_assert!((l.sn() - r.sn()).abs() < 1e-6, "{l:?} vs {r:?}");
            prop_assert!((l.sp() - r.sp()).abs() < 1e-6);
        }
    }

    /// Unknown (0,1) is the neutral element of F.
    #[test]
    fn unknown_is_neutral(p in pair_strategy()) {
        let c = p.combine_dempster(&SupportPair::unknown()).unwrap();
        prop_assert!(c.approx_eq(&p));
    }

    /// Combining with more positive evidence never lowers sn.
    #[test]
    fn positive_evidence_is_monotone(p in pair_strategy(), t in 0u32..=1000) {
        // Evidence purely in favour: (t, 1).
        let favour = SupportPair::new(t as f64 / 1000.0, 1.0).unwrap();
        if let Ok(c) = p.combine_dempster(&favour) {
            prop_assert!(c.sn() + 1e-9 >= p.sn(), "{c:?} vs {p:?}");
        }
    }

    /// F_TM is commutative, associative, monotone-shrinking, and
    /// (1,1) is neutral.
    #[test]
    fn ftm_laws(a in pair_strategy(), b in pair_strategy(), c in pair_strategy()) {
        let ab = a.and_independent(&b);
        let ba = b.and_independent(&a);
        prop_assert!(ab.approx_eq(&ba));
        let left = ab.and_independent(&c);
        let right = a.and_independent(&b.and_independent(&c));
        prop_assert!(left.approx_eq(&right));
        prop_assert!(ab.sn() <= a.sn() + 1e-12);
        prop_assert!(ab.sp() <= a.sp() + 1e-12);
        let neutral = a.and_independent(&SupportPair::certain());
        prop_assert!(neutral.approx_eq(&a));
    }

    /// The display form parses back (via the storage crate's notation)
    /// only approximately — but stays within the printable range.
    #[test]
    fn display_is_wellformed(p in pair_strategy()) {
        let text = p.to_string();
        prop_assert!(text.starts_with('('));
        prop_assert!(text.ends_with(')'));
        prop_assert!(text.contains(','));
    }
}
