//! Property tests for the metrics layer: histogram bucket boundaries
//! and METRICS exposition re-parsing (names unique, values finite,
//! monotone counters never decrease across scrapes).

use std::collections::{BTreeMap, HashSet};

use evirel_obs::{Histogram, MetricsRegistry, LATENCY_BOUNDS_US};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observation lands in exactly one bucket, and the
    /// cumulative count at each upper bound equals the number of
    /// observations ≤ that bound (Prometheus `le` semantics —
    /// boundary values are *included* in their bucket).
    #[test]
    fn histogram_bucket_boundaries(
        obs in proptest::collection::vec(0u64..20_000_000, 0..200),
        boundary_hits in proptest::collection::vec(0usize..16, 0..32),
    ) {
        let h = Histogram::default();
        let mut all: Vec<u64> = obs.clone();
        // Mix in observations that sit exactly on bucket bounds —
        // the off-by-one cases a range-only generator rarely hits.
        for i in &boundary_hits {
            all.push(LATENCY_BOUNDS_US[*i % LATENCY_BOUNDS_US.len()]);
        }
        for &us in &all {
            h.observe_us(us);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, all.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), all.len() as u64);
        prop_assert_eq!(snap.sum_us, all.iter().sum::<u64>());
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += snap.buckets[i];
            let expected = all.iter().filter(|&&us| us <= bound).count() as u64;
            prop_assert_eq!(cumulative, expected, "le={}", bound);
        }
    }

    /// The rendered exposition re-parses: unique series names, finite
    /// parseable values, `# TYPE` for every family, and counter
    /// values that never decrease from one scrape to the next.
    #[test]
    fn exposition_reparses_and_counters_are_monotone(
        counts in proptest::collection::vec(0u64..1000, 1..6),
        extra in proptest::collection::vec(0u64..1000, 1..6),
        gauge_vals in proptest::collection::vec(0u64..1000, 1..4),
        hist_obs in proptest::collection::vec(0u64..5_000_000, 0..50),
    ) {
        let reg = MetricsRegistry::new();
        let verbs = ["query", "merge", "ping", "stats", "explain"];
        let counters: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let c = reg.counter(
                    "evirel_prop_requests_total",
                    "prop",
                    &[("verb", verbs[i % verbs.len()])],
                );
                c.add(n);
                c
            })
            .collect();
        for (i, &v) in gauge_vals.iter().enumerate() {
            let names = ["evirel_prop_queue_depth", "evirel_prop_workers_busy", "evirel_prop_lag"];
            reg.gauge(names[i % names.len()], "prop", &[]).set(v);
        }
        let h = reg.histogram("evirel_prop_seconds", "prop", &[]);
        for &us in &hist_obs {
            h.observe_us(us);
        }

        let first = parse_exposition(&reg.render());
        // Mutate between scrapes: counters only go up, gauges anywhere.
        for (c, &n) in counters.iter().zip(extra.iter().cycle()) {
            c.add(n);
        }
        reg.gauge("evirel_prop_queue_depth", "prop", &[]).set(0);
        let second = parse_exposition(&reg.render());

        for (series, (kind, v1)) in &first {
            let (kind2, v2) = &second[series];
            prop_assert_eq!(kind, kind2);
            let monotone = kind == "counter"
                || series.contains("_bucket")
                || series.ends_with("_count")
                || series.ends_with("_sum");
            if monotone {
                prop_assert!(v2 >= v1, "{} went {} -> {}", series, v1, v2);
            }
        }
    }
}

/// Parse exposition text into series → (family kind, value), panicking
/// on any violated invariant: every series has a `# TYPE`, every
/// series line appears once, every value parses finite.
fn parse_exposition(text: &str) -> BTreeMap<String, (String, f64)> {
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut out = BTreeMap::new();
    let mut seen = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_owned();
            let kind = parts.next().unwrap_or_default().to_owned();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            assert!(
                kinds.insert(name, kind).is_none(),
                "duplicate TYPE: {line:?}"
            );
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let split_at = line
            .rfind(' ')
            .unwrap_or_else(|| panic!("no value in {line:?}"));
        let (series, value) = line.split_at(split_at);
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
        assert!(value.is_finite(), "non-finite value in {line:?}");
        assert!(
            seen.insert(series.to_owned()),
            "duplicate series {series:?}"
        );
        // The series' family must have a TYPE line. Histogram
        // sub-series (_bucket/_sum/_count) belong to the base family.
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| kinds.get(*base).is_some_and(|k| k == "histogram"))
            .unwrap_or(name);
        let kind = kinds
            .get(family)
            .unwrap_or_else(|| panic!("series {series:?} has no TYPE"))
            .clone();
        out.insert(series.to_owned(), (kind, value));
    }
    out
}
